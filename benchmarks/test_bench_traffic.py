"""Benchmark: off-chip traffic per scheme (extension experiment)."""

from repro.experiments import traffic
from repro.sim.config import ExperimentScale

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=40_000)


def test_bench_offchip_traffic(benchmark):
    result = benchmark.pedantic(
        lambda: traffic.run(
            benchmarks=("omnetpp", "mcf", "soplex"),
            scale=SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("Off-chip lines per kilo-instruction (fetch + writeback):")
    for name in result.benchmarks:
        cells = "  ".join(
            f"{scheme}={result.total_pki(name, scheme):.1f}"
            for scheme in result.schemes
        )
        print(f"  {name:>10s}: {cells}")
    # STEM's retention cuts omnetpp traffic well below LRU's.
    assert result.total_pki("omnetpp", "STEM") < 0.7 * result.total_pki(
        "omnetpp", "LRU"
    )
    # Nothing can cut soplex's compulsory stream much.
    assert result.total_pki("soplex", "STEM") > 0.85 * result.total_pki(
        "soplex", "LRU"
    )
