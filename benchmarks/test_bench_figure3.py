"""Benchmark: regenerate Figure 3 (MPKI vs associativity, no STEM)."""

from repro.experiments import figure3
from repro.sim.results import format_series

ASSOCIATIVITIES = (2, 4, 8, 12, 16, 24, 32)


def _print_sweep(result, title):
    print()
    print(format_series(
        result.mpki,
        result.associativities,
        x_label="scheme\\assoc",
        title=title,
        precision=2,
    ))


def test_bench_figure3_omnetpp(benchmark, sweep_scale):
    result = benchmark.pedantic(
        lambda: figure3.run(
            "omnetpp", associativities=ASSOCIATIVITIES, scale=sweep_scale
        ),
        rounds=1,
        iterations=1,
    )
    _print_sweep(result, "Figure 3(a) omnetpp MPKI")
    # Low associativity: temporal (DIP) ahead of spatial (SBC).
    assert result.mpki["DIP"][0] < result.mpki["SBC"][0]
    # Convergence at 32 ways.
    top = result.mpki["LRU"][-1]
    for scheme in ("DIP", "SBC"):
        assert abs(result.mpki[scheme][-1] - top) < max(0.5, 0.3 * top)


def test_bench_figure3_ammp(benchmark, sweep_scale):
    result = benchmark.pedantic(
        lambda: figure3.run(
            "ammp", associativities=ASSOCIATIVITIES, scale=sweep_scale
        ),
        rounds=1,
        iterations=1,
    )
    _print_sweep(result, "Figure 3(b) ammp MPKI")
    # The spatial window: SBC beats LRU somewhere low-to-mid range.
    gains = [
        lru - sbc
        for lru, sbc in zip(result.mpki["LRU"][:5], result.mpki["SBC"][:5])
    ]
    assert max(gains) > 0
