"""Benchmark: regenerate Figure 2 (synthetic two-set miss rates)."""

import pytest

from repro.experiments import figure2


def test_bench_figure2_all_examples(benchmark):
    results = benchmark.pedantic(
        lambda: [figure2.run(example, rounds=4096) for example in (1, 2, 3)],
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 2 miss rates — measured (paper):")
    for result in results:
        cells = "  ".join(
            f"{scheme}={result.measured[scheme]:.3f}"
            f"({result.expected.get(scheme, float('nan')):.3f})"
            for scheme in ("LRU", "DIP", "SBC")
        )
        print(f"  example {result.example} ws={result.working_sets}: "
              f"{cells}  STEM={result.measured['STEM']:.3f}")
    ex1, ex2, ex3 = results
    assert ex1.measured["LRU"] == pytest.approx(0.5, abs=0.02)
    assert ex1.measured["SBC"] == pytest.approx(0.0, abs=0.02)
    assert ex2.measured["SBC"] == pytest.approx(1 / 3, abs=0.08)
    assert ex3.measured["LRU"] == pytest.approx(1.0, abs=0.01)
    # The extensional example: STEM below SBC's 1/3 on example #2.
    assert ex2.measured["STEM"] < ex2.measured["SBC"]
