"""Benchmark: regenerate Figure 9 (normalized CPI, 15 benchmarks)."""

from repro.experiments import figure9
from repro.sim.config import PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def test_bench_figure9_normalized_cpi(benchmark, bench_scale):
    table = benchmark.pedantic(
        lambda: figure9.run(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    ordered = {n: table[n] for n in benchmark_names() if n in table}
    ordered["Geomean"] = table["Geomean"]
    print()
    print(format_table(
        ordered, columns=list(PAPER_SCHEMES),
        title="Figure 9: CPI normalized to LRU "
              "(paper: STEM 6.3% better than LRU)",
    ))
    geomeans = table["Geomean"]
    assert geomeans["STEM"] < 1.0
    # CPI compresses the AMAT gaps further (fixed base CPI), but STEM
    # still leads the non-V-Way field.
    for scheme in ("LRU", "DIP", "PeLIFO", "SBC"):
        assert geomeans["STEM"] <= geomeans[scheme] * 1.02
