"""Benchmark: regenerate Figure 7 (normalized MPKI, 15 benchmarks).

This is the headline experiment; the evaluation matrix it builds is
memoised, so the Figure 8/9 benches that share it cost almost nothing
when run in the same session.
"""

from repro.experiments import evaluation, figure7
from repro.sim.config import PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def test_bench_figure7_normalized_mpki(benchmark, bench_scale):
    table = benchmark.pedantic(
        lambda: figure7.run(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    ordered = {n: table[n] for n in benchmark_names() if n in table}
    ordered["Geomean"] = table["Geomean"]
    print()
    print(format_table(
        ordered, columns=list(PAPER_SCHEMES),
        title="Figure 7: MPKI normalized to LRU "
              "(paper geomeans: STEM 0.786, best of all)",
    ))
    geomeans = table["Geomean"]
    # Paper shape: STEM posts the best geomean of the non-V-Way schemes
    # and clearly beats LRU overall.
    for scheme in ("LRU", "DIP", "PeLIFO", "SBC"):
        assert geomeans["STEM"] <= geomeans[scheme]
    assert geomeans["STEM"] < 0.9
    # STEM never materially degrades any single benchmark.
    for name in benchmark_names():
        assert table[name]["STEM"] <= 1.1
