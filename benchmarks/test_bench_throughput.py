"""Microbenchmarks: simulation throughput of each LLC scheme.

Two surfaces share this module:

* ``test_bench_scheme_throughput`` — true pytest-benchmark measurements
  (multiple rounds) of accesses/second per scheme, for interactive
  profiling (``pytest benchmarks/ --benchmark-only``).
* The ``BENCH_throughput.json`` recorder/guard pair.  The committed
  artefact at the repo root pins each scheme's accesses/sec (plus the
  measured wall-clock and run-manifest hash for provenance) at a fixed
  reference workload.  ``BENCH_RECORD=1`` re-measures and rewrites it;
  ``BENCH_GUARD=1`` re-measures and fails if throughput fell below
  ``BENCH_GUARD_RATIO`` (default 0.8, i.e. a >20 % regression) of the
  committed numbers.  Keys starting with ``_`` are metadata and are
  never guarded.

Every ``BENCH_RECORD=1`` run additionally appends one entry to the
``BENCH_HISTORY.jsonl`` ledger (rates + manifest hashes + machine
params), and the guard prints the per-scheme trajectory report from
that ledger — drift across recordings that individual guard runs
cannot see.  Recording covers **every** scheme in the factory registry
(aliases deduplicated), not just the paper's headline four.
"""

import gc
import json
import os
from pathlib import Path

import pytest

from repro.common.io import atomic_write_text
from repro.obs.benchhistory import (
    append_history,
    detect_regressions,
    load_history,
    make_entry,
)
from repro.sim.columnar import numpy_available
from repro.sim.config import (
    ExperimentScale,
    make_scheme,
    registry_scheme_keys,
)
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16)
TRACE = make_benchmark_trace("omnetpp", num_sets=64, length=20_000)

#: Reference workload for the recorded/guarded numbers: long enough
#: that per-run noise stays within a few percent on a quiet machine.
#: Every distinct scheme in the registry is recorded, so the history
#: ledger covers the full comparison space.
RECORD_SCHEMES = tuple(registry_scheme_keys())
RECORD_LENGTH = 200_000
ARTEFACT = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
HISTORY = Path(__file__).resolve().parent.parent / "BENCH_HISTORY.jsonl"

#: Schemes with an exact columnar kernel (repro.sim.columnar).  Each is
#: additionally recorded under a ``<scheme>@numpy`` key so the artefact
#: pins both paths: the plain keys stay scalar (``backend="python"``) —
#: comparable in any environment, numpy or not — and the ``@numpy``
#: keys pin the kernel's speedup, guarded only where numpy exists.
COLUMNAR_SCHEMES = ("lru",)


@pytest.mark.parametrize(
    "scheme", ["LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM"]
)
def test_bench_scheme_throughput(benchmark, scheme):
    addresses = TRACE.addresses

    def simulate():
        cache = make_scheme(scheme, SCALE.geometry())
        access = cache.access
        for address in addresses:
            access(address)
        return cache.stats.misses

    misses = benchmark(simulate)
    assert misses > 0


#: Throughput repetitions: wall-clock noise on a loaded host easily
#: reaches tens of percent, so record/guard use the best of N runs.
MEASURE_REPS = 3


def _measure(scheme: str, backend: str = "python") -> dict:
    """Best-of-``MEASURE_REPS`` run of ``scheme`` on the reference load.

    ``backend`` is explicit (never "auto") so a recorded rate always
    measures one named execution path; plan construction for the
    columnar path happens outside the timed phases (like the geometry
    precompute), so rep 1 and rep 3 measure the same work.
    """
    trace = make_benchmark_trace(
        "omnetpp", num_sets=SCALE.num_sets, length=RECORD_LENGTH
    )
    best = None
    # Collector pauses from earlier runs' garbage can swallow tens of
    # percent of a later scheme's measured phase; isolate each rep.
    gc.collect()
    gc.disable()
    try:
        for _ in range(MEASURE_REPS):
            cache = make_scheme(scheme, SCALE.geometry())
            manifest = run_trace(cache, trace, backend=backend).manifest
            rate = manifest.measured_accesses / manifest.measured_seconds
            if best is None or rate > best[0]:
                best = (rate, manifest)
            gc.collect()
    finally:
        gc.enable()
    rate, manifest = best
    return {
        "accesses_per_sec": round(rate, 1),
        "wall_seconds": round(
            manifest.measured_seconds + manifest.warmup_seconds, 4
        ),
        "manifest_hash": manifest.content_hash,
    }


@pytest.mark.skipif(
    os.environ.get("BENCH_RECORD") != "1",
    reason="recorder runs only with BENCH_RECORD=1",
)
def test_bench_record_throughput():
    # Metadata is rewritten fresh on every recording — a recorded rate
    # describes *this* measurement, so a stale note (or an inline copy
    # of some past recording's rates) would misframe it.  Trajectory
    # across recordings lives in the BENCH_HISTORY.jsonl ledger, which
    # _meta.history points at.
    document = {
        "_meta": {
            "note": (
                "Re-record with BENCH_RECORD=1 pytest "
                "benchmarks/test_bench_throughput.py -k record; guard "
                "with BENCH_GUARD=1 (ratio via BENCH_GUARD_RATIO, "
                "default 0.8). Plain keys measure the scalar backend "
                "(backend='python'); '<scheme>@numpy' keys measure the "
                "columnar kernel and are skipped by the guard when "
                "numpy is not installed."
            ),
            "workload": (
                f"omnetpp, {SCALE.num_sets} sets x "
                f"{SCALE.associativity} ways, {RECORD_LENGTH} accesses, "
                f"warmup 0.25, best of repeated runs"
            ),
            "history": "BENCH_HISTORY.jsonl",
        },
    }
    for scheme in RECORD_SCHEMES:
        document[scheme] = _measure(scheme, backend="python")
    if numpy_available():
        for scheme in COLUMNAR_SCHEMES:
            document[f"{scheme}@numpy"] = _measure(scheme, backend="numpy")
    atomic_write_text(
        ARTEFACT, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    # Ledger append: the same measurement becomes one trajectory point.
    append_history(HISTORY, make_entry({
        key: value for key, value in document.items()
        if not key.startswith("_")
    }))
    assert all(document[s]["accesses_per_sec"] > 0 for s in RECORD_SCHEMES)


@pytest.mark.skipif(
    os.environ.get("BENCH_GUARD") != "1",
    reason="guard runs only with BENCH_GUARD=1",
)
def test_bench_throughput_guard():
    assert ARTEFACT.is_file(), f"missing committed artefact {ARTEFACT}"
    document = json.loads(ARTEFACT.read_text(encoding="utf-8"))
    ratio = float(os.environ.get("BENCH_GUARD_RATIO", "0.8"))
    # Trajectory report from the ledger: drift across recordings that a
    # single guard run cannot see.  Informational — the hard floor below
    # stays the committed-artefact comparison.
    history = load_history(HISTORY)
    if history:
        print(f"\nbench-history trajectory ({len(history)} recordings):")
        for verdict in detect_regressions(history):
            print(f"  {verdict}")
    failures = []
    for key, recorded in document.items():
        if key.startswith("_"):
            continue
        scheme, _, backend = key.partition("@")
        if backend == "numpy" and not numpy_available():
            continue  # columnar entries only guard where numpy exists
        measured = _measure(
            scheme, backend=backend or "python"
        )["accesses_per_sec"]
        floor = recorded["accesses_per_sec"] * ratio
        if measured < floor:
            failures.append(
                f"{key}: {measured:,.0f} acc/s < floor {floor:,.0f} "
                f"(recorded {recorded['accesses_per_sec']:,.0f})"
            )
    assert not failures, "; ".join(failures)
