"""Microbenchmarks: simulation throughput of each LLC scheme.

These are true pytest-benchmark measurements (multiple rounds) of the
simulator's accesses/second per scheme — useful for tracking the cost
of STEM's extra machinery (shadow probes, heap traffic) relative to
the plain LRU access path.
"""

import pytest

from repro.sim.config import ExperimentScale, make_scheme
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16)
TRACE = make_benchmark_trace("omnetpp", num_sets=64, length=20_000)


@pytest.mark.parametrize(
    "scheme", ["LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM"]
)
def test_bench_scheme_throughput(benchmark, scheme):
    addresses = TRACE.addresses

    def simulate():
        cache = make_scheme(scheme, SCALE.geometry())
        access = cache.access
        for address in addresses:
            access(address)
        return cache.stats.misses

    misses = benchmark(simulate)
    assert misses > 0
