"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (DESIGN.md §3) at a reduced scale, printing the same
rows/series the paper plots.  Run them with::

    pytest benchmarks/ --benchmark-only -s

Scales are kept modest so the full harness completes in minutes of
pure-Python simulation; raise ``BENCH_SCALE`` for higher fidelity.
"""

from __future__ import annotations

import pytest

from repro.sim.config import ExperimentScale

#: The scale every benchmark target runs at.
BENCH_SCALE = ExperimentScale(
    num_sets=64, associativity=16, trace_length=60_000
)

#: A finer scale for the two single-benchmark sweeps.
SWEEP_SCALE = ExperimentScale(
    num_sets=64, associativity=16, trace_length=40_000
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Session-wide experiment scale for benchmark targets."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def sweep_scale() -> ExperimentScale:
    """Scale for the associativity sweeps (Figures 3 and 10)."""
    return SWEEP_SCALE
