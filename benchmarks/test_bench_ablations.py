"""Benchmark: STEM design-choice ablations (DESIGN.md §6)."""

from dataclasses import replace

from repro.core.config import StemConfig
from repro.experiments import ablations
from repro.sim.config import ExperimentScale

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=40_000)


def test_bench_receiving_control_ablation(benchmark):
    base = StemConfig()
    result = benchmark.pedantic(
        lambda: ablations.run(
            benchmarks=("astar", "omnetpp"),
            scale=SCALE,
            variants={
                "baseline": base,
                "no-receiving-control": replace(
                    base, receiving_control=False
                ),
            },
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("Ablation: receiving control (MPKI, lower is better)")
    for bench_name, row in result.mpki.items():
        print(f"  {bench_name:>10s}: baseline={row['baseline']:.3f}  "
              f"ungated={row['no-receiving-control']:.3f}")
    # On the giver-fragile workload the gate must not hurt, and it
    # should help where SBC-style pollution bites (astar).
    astar = result.mpki["astar"]
    assert astar["baseline"] <= astar["no-receiving-control"] * 1.02


def test_bench_shadow_inversion_ablation(benchmark):
    base = StemConfig()
    result = benchmark.pedantic(
        lambda: ablations.run(
            benchmarks=("mcf",),
            scale=SCALE,
            variants={
                "baseline": base,
                "mirrored-shadow": replace(
                    base, invert_shadow_policy=False
                ),
            },
        ),
        rounds=1,
        iterations=1,
    )
    print()
    row = result.mpki["mcf"]
    print(f"Ablation: shadow-policy inversion on mcf — "
          f"inverted={row['baseline']:.3f}  mirrored={row['mirrored-shadow']:.3f}")
    # Without the opposite-policy shadow, the SC_T duel goes blind on a
    # thrashing workload: the inverted design must win.
    assert row["baseline"] < row["mirrored-shadow"]


def test_bench_spatial_ratio_sensitivity(benchmark):
    base = StemConfig()
    result = benchmark.pedantic(
        lambda: ablations.run(
            benchmarks=("omnetpp",),
            scale=SCALE,
            variants={
                f"n={n}": replace(base, spatial_ratio_bits=n)
                for n in (1, 3, 5)
            },
        ),
        rounds=1,
        iterations=1,
    )
    print()
    row = result.mpki["omnetpp"]
    print("Ablation: spatial decrement ratio n on omnetpp (MPKI): "
          + "  ".join(f"{k}={v:.3f}" for k, v in row.items()))
    # All settings must stay well below LRU-level thrash; Table 3's
    # n=3 should be competitive with the extremes.
    assert row["n=3"] <= min(row.values()) * 1.3
