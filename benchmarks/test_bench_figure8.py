"""Benchmark: regenerate Figure 8 (normalized AMAT, 15 benchmarks)."""

from repro.experiments import figure8
from repro.sim.config import PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def test_bench_figure8_normalized_amat(benchmark, bench_scale):
    table = benchmark.pedantic(
        lambda: figure8.run(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    ordered = {n: table[n] for n in benchmark_names() if n in table}
    ordered["Geomean"] = table["Geomean"]
    print()
    print(format_table(
        ordered, columns=list(PAPER_SCHEMES),
        title="Figure 8: AMAT normalized to LRU "
              "(paper: STEM 13.5% better than LRU)",
    ))
    geomeans = table["Geomean"]
    assert geomeans["STEM"] < 1.0
    # AMAT gains are smaller than MPKI gains (hits still cost cycles,
    # and cooperative probes add latency) but the ordering holds.
    for scheme in ("LRU", "DIP", "PeLIFO", "SBC"):
        assert geomeans["STEM"] <= geomeans[scheme] * 1.02
