"""Benchmark: regenerate Table 2 (classes and LRU MPKI)."""

from repro.experiments import table2


def test_bench_table2_lru_mpki(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: table2.run(scale=bench_scale, classify=False),
        rounds=1,
        iterations=1,
    )
    print()
    print("Table 2: MPKI under LRU — measured (paper)")
    for row in rows:
        print(f"  {row.benchmark:>12s} [{row.paper_class}] "
              f"{row.measured_mpki:8.3f} ({row.paper_mpki:.3f})")
    # Calibration contract: measured LRU MPKI within 2x of Table 2 for
    # every benchmark (the generators target these numbers).
    for row in rows:
        assert 0.4 * row.paper_mpki < row.measured_mpki < 2.5 * row.paper_mpki
    # Ordering sanity: mcf is the thrash king, gromacs the lightest.
    by_name = {row.benchmark: row.measured_mpki for row in rows}
    assert by_name["mcf"] == max(by_name.values())
    assert by_name["gromacs"] == min(by_name.values())
