"""Benchmark: regenerate Figure 1 (set-level capacity demand bands)."""

from repro.experiments import figure1


def test_bench_figure1_omnetpp(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: figure1.run(
            "omnetpp",
            scale=bench_scale,
            num_intervals=5,
            interval_length=10_000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Figure 1(a) omnetpp: <=16-way demand share "
          f"{result.fraction_le_16:.1%} (paper: ~50%)")
    for band, fraction in result.mean_bands.items():
        if fraction > 0.01:
            print(f"  band {band}: {fraction:6.1%}")
    assert 0.2 < result.fraction_le_16 < 0.9


def test_bench_figure1_ammp(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: figure1.run(
            "ammp",
            scale=bench_scale,
            num_intervals=5,
            interval_length=10_000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Figure 1(b) ammp: <=4-way demand share "
          f"{result.fraction_le_4:.1%} (paper: ~50%), "
          f"streaming band {result.mean_bands[(0, 0)]:.1%}")
    assert result.fraction_le_4 > 0.3
    assert result.mean_bands[(0, 0)] > 0.05
