"""Benchmark: regenerate Figure 10 (sensitivity sweep with STEM)."""

from repro.experiments import figure10
from repro.sim.results import format_series

ASSOCIATIVITIES = (2, 4, 8, 12, 16, 24, 32)


def test_bench_figure10_omnetpp(benchmark, sweep_scale):
    result = benchmark.pedantic(
        lambda: figure10.run(
            "omnetpp", associativities=ASSOCIATIVITIES, scale=sweep_scale
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series(
        result.mpki, result.associativities,
        x_label="scheme\\assoc",
        title="Figure 10(a) omnetpp MPKI (with STEM)", precision=2,
    ))
    # STEM tracks (or beats) the best existing scheme across the sweep
    # (the paper concedes V-Way can edge it out at high associativity,
    # so V-Way is excluded from the tracking bar).
    for index in range(len(ASSOCIATIVITIES)):
        best_other = min(
            curve[index]
            for scheme, curve in result.mpki.items()
            if scheme not in ("STEM", "V-Way")
        )
        assert result.mpki["STEM"][index] <= best_other * 1.35 + 0.5


def test_bench_figure10_ammp(benchmark, sweep_scale):
    result = benchmark.pedantic(
        lambda: figure10.run(
            "ammp", associativities=ASSOCIATIVITIES, scale=sweep_scale
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series(
        result.mpki, result.associativities,
        x_label="scheme\\assoc",
        title="Figure 10(b) ammp MPKI (with STEM)", precision=2,
    ))
    # STEM never materially worse than LRU anywhere in the range.
    for stem, lru in zip(result.mpki["STEM"], result.mpki["LRU"]):
        assert stem <= lru * 1.1 + 0.1
