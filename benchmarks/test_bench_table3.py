"""Benchmark: regenerate Table 3 (hardware storage overhead)."""

import pytest

from repro.experiments import table3


def test_bench_table3_overheads(benchmark):
    reports = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    print()
    print("Table 3: storage overhead over the LRU baseline")
    for name, report in reports.items():
        print(f"  {name:>8s}: {report.overhead_percent:6.2f}% "
              f"({report.extra_bits:,} bits)")
    assert reports["STEM"].overhead_percent == pytest.approx(3.1, abs=0.1)
    assert reports["DIP"].overhead_percent < 0.01
    assert reports["SBC"].overhead_percent < 1.0
