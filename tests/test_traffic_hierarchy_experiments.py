"""Tests for the traffic and hierarchy-mode extension experiments."""

import pytest

from repro.experiments import hierarchy_mode, traffic
from repro.sim.config import ExperimentScale

SMALL = ExperimentScale(num_sets=32, associativity=16, trace_length=12_000)


class TestTraffic:
    def test_traffic_structure(self):
        result = traffic.run(
            benchmarks=("vpr",), schemes=("LRU", "STEM"), scale=SMALL
        )
        assert result.benchmarks == ["vpr"]
        assert set(result.fetches_pki["vpr"]) == {"LRU", "STEM"}
        assert result.total_pki("vpr", "LRU") >= 0

    def test_writebacks_appear_with_writes(self):
        result = traffic.run(
            benchmarks=("mcf",), schemes=("LRU",), scale=SMALL,
            write_fraction=0.5,
        )
        assert result.writebacks_pki["mcf"]["LRU"] > 0

    def test_no_writebacks_without_writes(self):
        result = traffic.run(
            benchmarks=("mcf",), schemes=("LRU",), scale=SMALL,
            write_fraction=0.0,
        )
        assert result.writebacks_pki["mcf"]["LRU"] == 0.0

    def test_stem_cuts_traffic_on_class_one(self):
        result = traffic.run(
            benchmarks=("omnetpp",), schemes=("LRU", "STEM"),
            scale=ExperimentScale(num_sets=64, trace_length=30_000),
        )
        assert result.total_pki("omnetpp", "STEM") < result.total_pki(
            "omnetpp", "LRU"
        )

    def test_main_renders(self, capsys):
        traffic.main(scale=SMALL, benchmarks=("vpr",))
        assert "Off-chip traffic" in capsys.readouterr().out


class TestHierarchyMode:
    def test_structure_and_l1_filtering(self):
        result = hierarchy_mode.run(
            "vpr", schemes=("LRU", "STEM"), scale=SMALL
        )
        assert 0.0 < result.l1_miss_rate <= 1.0
        assert set(result.llc_miss_rate) == {"LRU", "STEM"}
        assert all(amat > 0 for amat in result.amat_cycles.values())

    def test_stem_advantage_survives_l1(self):
        result = hierarchy_mode.run(
            "omnetpp",
            schemes=("LRU", "STEM"),
            scale=ExperimentScale(num_sets=64, trace_length=30_000),
        )
        assert result.amat_cycles["STEM"] < result.amat_cycles["LRU"]

    def test_amat_tracks_llc_miss_rate(self):
        result = hierarchy_mode.run(
            "mcf", schemes=("LRU", "DIP"), scale=SMALL
        )
        better = min(result.llc_miss_rate, key=result.llc_miss_rate.get)
        worse = max(result.llc_miss_rate, key=result.llc_miss_rate.get)
        if result.llc_miss_rate[better] < result.llc_miss_rate[worse]:
            assert result.amat_cycles[better] <= result.amat_cycles[worse]

    def test_main_renders(self, capsys):
        hierarchy_mode.main(scale=SMALL)
        assert "Hierarchy mode" in capsys.readouterr().out
