"""Tests for the SQLite artifact index (DESIGN.md §15).

The load-bearing properties: ingestion is idempotent (re-ingesting the
same artifacts changes zero rows), every artifact family lands in its
table (save_run files, campaign directories, bench ledgers), torn
journal tails are tolerated, and the query surface returns
deterministic sorted documents suitable for byte-stable JSON.
"""

import json

import pytest

from repro.cli import main
from repro.obs.benchhistory import append_history, make_entry
from repro.obs.index import ArtifactIndex
from repro.sim.cache import save_run
from repro.sim.campaign import run_campaign
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=12_000)


def run(scheme, benchmark="mcf", window=2_000, seed=7):
    trace = make_benchmark_trace(
        benchmark, num_sets=SCALE.num_sets, length=SCALE.trace_length
    )
    cache = make_scheme(scheme, SCALE.geometry(), seed=seed)
    return run_trace(cache, trace, metrics_window=window)


@pytest.fixture(scope="module")
def run_pair():
    return run("lru"), run("stem")


def history_entry(rates, recorded_at):
    return make_entry(
        {
            name: {"accesses_per_sec": rate, "manifest_hash": f"h-{name}"}
            for name, rate in rates.items()
        },
        recorded_at=recorded_at,
    )


CAMPAIGN_SPEC = {
    "name": "small",
    "schemes": ["lru", "stem"],
    "benchmarks": ["mcf"],
    "geometries": [{"sets": 64, "assoc": 8}],
    "trace_length": 6_000,
}


def write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(CAMPAIGN_SPEC), encoding="utf-8")
    return path


class TestRunIngestion:
    def test_save_run_file_lands_in_runs_table(self, tmp_path, run_pair):
        a, _ = run_pair
        path = tmp_path / "a.json"
        save_run(path, a)
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(path)
            assert report.runs_added == 1
            assert report.changed == 1
            (record,) = index.runs()
        assert record["scheme"] == "LRU"
        assert record["benchmark"] == "mcf"
        assert record["mpki"] == pytest.approx(a.mpki)
        assert record["manifest_hash"] == a.manifest.content_hash
        assert record["source"] == str(path)

    def test_reingest_changes_zero_rows(self, tmp_path, run_pair):
        a, b = run_pair
        save_run(tmp_path / "a.json", a)
        save_run(tmp_path / "b.json", b)
        with ArtifactIndex(":memory:") as index:
            assert index.ingest(tmp_path).changed == 2
            again = index.ingest(tmp_path)
            assert again.changed == 0
            assert again.runs_unchanged == 2
            assert len(index.runs()) == 2

    def test_directory_scan_skips_non_run_json(self, tmp_path, run_pair):
        a, _ = run_pair
        save_run(tmp_path / "a.json", a)
        (tmp_path / "status.json").write_text("{}", encoding="utf-8")
        (tmp_path / "junk.json").write_text("not json", encoding="utf-8")
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(tmp_path)
            assert report.runs_added == 1
            # Scanned children fail silently; nothing is reported.
            assert report.skipped == []

    def test_explicit_bad_path_is_reported_not_raised(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(bogus, tmp_path / "absent.json")
            assert report.changed == 0
            assert len(report.skipped) == 2

    def test_persistent_index_file(self, tmp_path, run_pair):
        a, _ = run_pair
        save_run(tmp_path / "a.json", a)
        db = tmp_path / "state" / "index.sqlite"
        with ArtifactIndex(db) as index:
            index.ingest(tmp_path / "a.json")
        with ArtifactIndex(db) as index:
            assert len(index.runs()) == 1


class TestCampaignIngestion:
    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("campaign")
        spec = write_spec(tmp_path)
        directory = tmp_path / "camp"
        run_campaign(spec, directory=directory)
        return directory

    def test_campaign_and_cells_indexed(self, campaign_dir):
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(campaign_dir)
            (campaign,) = index.campaigns()
            runs = index.runs()
        assert campaign["name"] == "small"
        assert campaign["total_cells"] == 2
        assert campaign["completed"] == 2
        assert campaign["quarantined"] == 0
        assert not campaign["truncated_journal"]
        assert report.cells_added == 2
        # Completed cells are digest-verified from the run cache.
        assert report.runs_added == 2
        assert {r["scheme"] for r in runs} == {"LRU", "STEM"}

    def test_campaign_reingest_is_idempotent(self, campaign_dir):
        with ArtifactIndex(":memory:") as index:
            index.ingest(campaign_dir)
            assert index.ingest(campaign_dir).changed == 0

    def test_torn_journal_tail_is_tolerated(self, campaign_dir, tmp_path):
        import shutil

        torn = tmp_path / "torn"
        shutil.copytree(campaign_dir, torn)
        with (torn / "campaign.jsonl").open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "cell_start", "cel')
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(torn)
            assert report.skipped == []
            (campaign,) = index.campaigns()
            assert len(index.runs()) == 2
        # The summary reflects the finished campaign; the torn tail is
        # journal-level damage, surfaced by the journal flag alone.
        assert campaign["completed"] == 2

    def test_run_campaign_index_db_hook(self, tmp_path):
        spec = write_spec(tmp_path)
        db = tmp_path / "obs.sqlite"
        run_campaign(spec, directory=tmp_path / "camp", index_db=db)
        with ArtifactIndex(db) as index:
            assert len(index.campaigns()) == 1
            assert len(index.runs()) == 2


class TestHistoryIngestion:
    def _ledger(self, tmp_path):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(path, history_entry(
            {"lru": 100.0, "stem": 100.0}, "2026-01-01T00:00:00+00:00"
        ))
        append_history(path, history_entry(
            {"lru": 101.0, "stem": 50.0}, "2026-01-02T00:00:00+00:00"
        ))
        return path

    def test_samples_and_regressions(self, tmp_path):
        path = self._ledger(tmp_path)
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(path)
            assert report.samples_added == 4
            assert index.ingest(path).changed == 0
            verdicts = index.regressions()
        assert [v["scheme"] for v in verdicts] == ["lru", "stem"]
        assert [v["regressed"] for v in verdicts] == [False, True]

    def test_bench_history_rebuilds_entry_shape(self, tmp_path):
        path = self._ledger(tmp_path)
        with ArtifactIndex(":memory:") as index:
            index.ingest(path)
            entries = index.bench_history()
        assert [e["recorded_at"] for e in entries] == [
            "2026-01-01T00:00:00+00:00", "2026-01-02T00:00:00+00:00",
        ]
        assert entries[1]["schemes"]["stem"]["accesses_per_sec"] == 50.0

    def test_non_ledger_jsonl_is_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            '{"kind": "grid_start", "span_id": "x"}\n', encoding="utf-8"
        )
        with ArtifactIndex(":memory:") as index:
            report = index.ingest(path)
            assert report.changed == 0
            assert len(report.skipped) == 1


class TestQueries:
    @pytest.fixture()
    def populated(self, tmp_path, run_pair):
        a, b = run_pair
        save_run(tmp_path / "a.json", a)
        save_run(tmp_path / "b.json", b)
        index = ArtifactIndex(":memory:")
        index.ingest(tmp_path)
        yield index
        index.close()

    def test_filters(self, populated):
        assert len(populated.runs()) == 2
        assert len(populated.runs(scheme="stem")) == 1
        assert len(populated.runs(scheme="STEM")) == 1
        assert len(populated.runs(benchmark="mcf")) == 2
        assert len(populated.runs(benchmark="art")) == 0
        assert populated.runs(since="2020-01-01T00:00:00+00:00")
        assert not populated.runs(since="2999-01-01T00:00:00+00:00")

    def test_runs_sorted_by_scheme_then_benchmark(self, populated):
        schemes = [r["scheme"] for r in populated.runs()]
        assert schemes == sorted(schemes)

    def test_run_lookup_and_prefix(self, populated):
        (first, _) = populated.runs()
        digest = first["hash"]
        assert populated.run(digest)["hash"] == digest
        assert populated.run(digest[:10])["hash"] == digest
        assert populated.run("0" * 64) is None

    def test_trajectory_in_ingestion_order(self, populated):
        rows = populated.trajectory("STEM", "mcf")
        assert len(rows) == 1
        assert rows[0]["scheme"] == "STEM"

    def test_stats(self, populated):
        stats = populated.stats()
        assert stats["runs"] == 2
        assert stats["campaigns"] == 0


class TestIndexCli:
    def test_ingest_query_round_trip(self, tmp_path, run_pair, capsys):
        a, _ = run_pair
        save_run(tmp_path / "a.json", a)
        db = tmp_path / "index.sqlite"
        assert main([
            "index", "ingest", str(tmp_path / "a.json"), "--db", str(db)
        ]) == 0
        assert "runs: 1 added" in capsys.readouterr().out
        assert main(["index", "query", "--db", str(db)]) == 0
        first = capsys.readouterr().out
        document = json.loads(first)
        assert document[0]["scheme"] == "LRU"
        # Deterministic: the same query prints the same bytes.
        assert main(["index", "query", "--db", str(db)]) == 0
        assert capsys.readouterr().out == first

    def test_regressions_cli(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(ledger, history_entry(
            {"stem": 100.0}, "2026-01-01T00:00:00+00:00"
        ))
        append_history(ledger, history_entry(
            {"stem": 10.0}, "2026-01-02T00:00:00+00:00"
        ))
        db = tmp_path / "index.sqlite"
        assert main([
            "index", "ingest", str(ledger), "--db", str(db)
        ]) == 0
        capsys.readouterr()
        assert main(["index", "regressions", "--db", str(db)]) == 0
        (verdict,) = json.loads(capsys.readouterr().out)
        assert verdict == {
            "scheme": "stem", "latest": 10.0, "reference": 100.0,
            "ratio": 0.1, "regressed": True,
        }
