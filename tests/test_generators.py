"""Tests for the parametric workload generators."""

import pytest

from repro.analysis.stack_distance import COLD, StackDistanceProfiler
from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.workloads.generators import (
    SetGroupSpec,
    WorkloadSpec,
    generate_trace,
)


def single_group_spec(kind="cyclic", **kwargs):
    return WorkloadSpec(
        name="test",
        groups=(SetGroupSpec(fraction=1.0, weight=1.0, kind=kind, **kwargs),),
    )


class TestSpecValidation:
    def test_group_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SetGroupSpec(fraction=0.0, weight=1.0, kind="cyclic")

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            SetGroupSpec(fraction=1.0, weight=1.0, kind="mystery")

    def test_bad_working_set_range(self):
        with pytest.raises(ConfigError):
            SetGroupSpec(
                fraction=1.0, weight=1.0, kind="cyclic", ws_min=4, ws_max=2
            )

    def test_bad_stream_fraction(self):
        with pytest.raises(ConfigError):
            SetGroupSpec(
                fraction=1.0, weight=1.0, kind="zipf", stream_fraction=1.0
            )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigError, match="sum to 1"):
            WorkloadSpec(
                name="x",
                groups=(
                    SetGroupSpec(fraction=0.5, weight=1.0, kind="cyclic"),
                    SetGroupSpec(fraction=0.4, weight=1.0, kind="cyclic"),
                ),
            )

    def test_needs_groups(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", groups=())


class TestGeneration:
    def test_deterministic_per_seed(self):
        spec = single_group_spec(ws_min=4, ws_max=8)
        a = generate_trace(spec, num_sets=8, length=500, seed=3)
        b = generate_trace(spec, num_sets=8, length=500, seed=3)
        c = generate_trace(spec, num_sets=8, length=500, seed=4)
        assert a.addresses == b.addresses
        assert a.addresses != c.addresses

    def test_length_and_instructions(self):
        spec = single_group_spec()
        trace = generate_trace(spec, num_sets=8, length=1000)
        assert len(trace) == 1000
        assert trace.accesses_per_kilo_instruction == pytest.approx(
            20.0, rel=0.01
        )

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigError):
            generate_trace(single_group_spec(), num_sets=8, length=0)

    def test_addresses_block_aligned_and_in_range(self):
        spec = single_group_spec(ws_min=2, ws_max=6)
        trace = generate_trace(spec, num_sets=16, length=800)
        mapper = AddressMapper(num_sets=16, line_size=64)
        for address in trace.addresses:
            assert address % 64 == 0
            assert 0 <= mapper.set_index(address) < 16

    def test_write_fraction_produces_mask(self):
        spec = WorkloadSpec(
            name="w",
            groups=(SetGroupSpec(fraction=1.0, weight=1.0, kind="cyclic"),),
            write_fraction=0.3,
        )
        trace = generate_trace(spec, num_sets=8, length=2000)
        assert trace.writes is not None
        rate = sum(trace.writes) / len(trace.writes)
        assert rate == pytest.approx(0.3, abs=0.05)


class TestStreamShapes:
    def _per_set_streams(self, spec, num_sets=8, length=4000):
        trace = generate_trace(spec, num_sets=num_sets, length=length)
        mapper = AddressMapper(num_sets=num_sets, line_size=64)
        streams = {}
        for address in trace.addresses:
            set_index, tag = mapper.split(address)
            streams.setdefault(set_index, []).append(tag)
        return streams

    def test_cyclic_sets_have_bounded_tag_population(self):
        spec = single_group_spec(ws_min=5, ws_max=5)
        for stream in self._per_set_streams(spec).values():
            assert len(set(stream)) == 5

    def test_streaming_sets_never_reuse(self):
        spec = single_group_spec(kind="streaming")
        for stream in self._per_set_streams(spec).values():
            assert len(set(stream)) == len(stream)

    def test_zipf_sets_are_skewed(self):
        spec = single_group_spec(kind="zipf", ws_min=16, ws_max=16,
                                 zipf_alpha=1.0)
        for stream in self._per_set_streams(spec).values():
            if len(stream) < 100:
                continue
            top = max(stream.count(tag) for tag in set(stream))
            assert top / len(stream) > 1.5 / 16  # hotter than uniform

    def test_recency_sets_have_short_reuse_distances(self):
        spec = single_group_spec(
            kind="recency", reuse_mean=4.0, new_fraction=0.2
        )
        for stream in self._per_set_streams(spec).values():
            if len(stream) < 200:
                continue
            profiler = StackDistanceProfiler(max_depth=64)
            shallow = 0
            rereferences = 0
            for tag in stream:
                distance = profiler.record(tag)
                if distance == COLD:
                    continue
                rereferences += 1
                shallow += distance < 8
            assert rereferences > 0
            assert shallow / rereferences > 0.6

    def test_stream_fraction_injects_compulsory_misses(self):
        spec = single_group_spec(
            kind="cyclic", ws_min=4, ws_max=4, stream_fraction=0.4
        )
        for stream in self._per_set_streams(spec).values():
            if len(stream) < 50:
                continue
            singles = sum(
                1 for tag in set(stream) if stream.count(tag) == 1
            )
            assert singles / len(stream) == pytest.approx(0.4, abs=0.12)
