"""Integration tests for the two-level cache hierarchy."""

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, default_l1_geometry
from repro.core.stem_cache import StemCache
from repro.policies.lru import LruPolicy

from tests.conftest import random_addresses


def make_hierarchy(llc=None):
    if llc is None:
        llc_geometry = CacheGeometry(num_sets=64, associativity=4)
        llc = SetAssociativeCache(llc_geometry, LruPolicy())
    return CacheHierarchy(llc)


class TestL1Filtering:
    def test_default_l1_matches_table1(self):
        geometry = default_l1_geometry()
        assert geometry.capacity_bytes == 32 * 1024
        assert geometry.associativity == 2

    def test_l1_hit_short_circuits_llc(self):
        hierarchy = make_hierarchy()
        address = 0x8000
        assert hierarchy.access(address) == "memory"
        assert hierarchy.access(address) == "l1"
        assert hierarchy.llc.stats.accesses == 1

    def test_l1_miss_llc_hit(self):
        hierarchy = make_hierarchy()
        address = 0x8000
        hierarchy.access(address)
        # Evict the block from the tiny direct path by thrashing L1's
        # set with conflicting addresses that share the L1 index.
        l1 = hierarchy.l1
        set_index = l1.mapper.set_index(address)
        conflicts = [
            l1.mapper.compose(tag, set_index) for tag in (100, 101, 102)
        ]
        for conflict in conflicts:
            hierarchy.access(conflict)
        assert not l1.contains(address)
        level = hierarchy.access(address)
        assert level in ("llc", "memory")

    def test_levels_accounted_in_cycles(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x8000)
        miss_cycles = hierarchy.total_cycles
        assert miss_cycles >= hierarchy.latency.miss_cycles
        hierarchy.access(0x8000)
        assert hierarchy.total_cycles == miss_cycles + hierarchy.l1_hit_cycles


class TestWritebackPath:
    def test_dirty_l1_victim_reaches_llc_write_buffer(self):
        hierarchy = make_hierarchy()
        l1 = hierarchy.l1
        victim = l1.mapper.compose(7, 3)
        hierarchy.access(victim, is_write=True)
        # Force the dirty block out of L1.
        for tag in (200, 201):
            hierarchy.access(l1.mapper.compose(tag, 3))
        assert hierarchy.l1_wb.enqueued >= 1

    def test_drain_flushes_buffers_to_memory(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, is_write=True)
        hierarchy.l1_wb.push(0x40)
        writes_before = hierarchy.memory.writes
        hierarchy.drain()
        assert hierarchy.memory.writes >= writes_before + 1


class TestWithStemLlc:
    def test_stem_behind_l1(self):
        llc = StemCache(CacheGeometry(num_sets=64, associativity=4))
        hierarchy = CacheHierarchy(llc)
        for address in random_addresses(llc.geometry, 3000, tag_space=40):
            hierarchy.access(address)
        llc.check_invariants()
        assert llc.stats.accesses > 0
        assert hierarchy.amat_cycles > 0

    def test_instruction_retirement_accounting(self):
        hierarchy = make_hierarchy()
        hierarchy.retire_instructions(1000)
        assert hierarchy.instructions == 1000

    def test_mshr_merging_counted(self):
        hierarchy = make_hierarchy()
        # Two accesses to the same block with the block forced out of
        # L1 between them but inside the LLC-MSHR latency window.
        address = 0x2000
        hierarchy.access(address)
        l1 = hierarchy.l1
        set_index = l1.mapper.set_index(address)
        for tag in (50, 51):
            hierarchy.access(l1.mapper.compose(tag, set_index))
        hierarchy.llc.invalidate(address)
        hierarchy.access(address)
        assert hierarchy.llc_mshr.secondary_misses >= 1
