"""Tests for DIP's set dueling."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.policies.dip import DipPolicy

from tests.conftest import cyclic_addresses


class TestLeaderLayout:
    def test_roles_assigned(self):
        policy = DipPolicy()
        policy.attach(num_sets=256, associativity=8, rng=Lfsr())
        roles = {policy.role_of(s) for s in range(256)}
        assert roles == {"lru-leader", "bip-leader", "follower"}

    def test_leader_population_is_sparse(self):
        policy = DipPolicy()
        policy.attach(num_sets=2048, associativity=16, rng=Lfsr())
        leaders = sum(
            1 for s in range(2048) if policy.role_of(s) != "follower"
        )
        # DIP dedicates 32 sets per policy at this scale.
        assert leaders == 64

    def test_tiny_cache_has_both_leader_kinds(self):
        policy = DipPolicy()
        policy.attach(num_sets=4, associativity=2, rng=Lfsr())
        roles = [policy.role_of(s) for s in range(4)]
        assert "lru-leader" in roles
        assert "bip-leader" in roles

    def test_rejects_bad_leader_count(self):
        with pytest.raises(ConfigError):
            DipPolicy(leaders_per_policy=0)


class TestDueling:
    def test_psel_moves_on_leader_misses_only(self):
        policy = DipPolicy()
        policy.attach(num_sets=64, associativity=4, rng=Lfsr())
        follower = next(
            s for s in range(64) if policy.role_of(s) == "follower"
        )
        before = policy.psel.value
        policy.on_miss(follower)
        assert policy.psel.value == before

        lru_leader = next(
            s for s in range(64) if policy.role_of(s) == "lru-leader"
        )
        policy.on_miss(lru_leader)
        assert policy.psel.value == before + 1

    def test_followers_adopt_bip_under_thrash(self):
        # A uniformly thrashing cache: BIP leaders miss less, PSEL picks
        # BIP and the overall miss rate lands well below LRU's 100%.
        geometry = CacheGeometry(num_sets=64, associativity=4)
        cache = SetAssociativeCache(geometry, DipPolicy(), rng=Lfsr())
        streams = [
            cyclic_addresses(geometry, s, working_set=8, length=400)
            for s in range(64)
        ]
        interleaved = [
            address for accesses in zip(*streams) for address in accesses
        ]
        warm = len(interleaved) // 2
        for address in interleaved[:warm]:
            cache.access(address)
        cache.reset_stats()
        for address in interleaved[warm:]:
            cache.access(address)
        # LRU would be 1.0; BIP's analytic value is 1 - 3/8 = 0.625.
        assert cache.stats.miss_rate < 0.80

    def test_followers_keep_lru_on_friendly_load(self):
        geometry = CacheGeometry(num_sets=64, associativity=4)
        cache = SetAssociativeCache(geometry, DipPolicy(), rng=Lfsr())
        streams = [
            cyclic_addresses(geometry, s, working_set=4, length=200)
            for s in range(64)
        ]
        interleaved = [
            address for accesses in zip(*streams) for address in accesses
        ]
        for address in interleaved:
            cache.access(address)
        cache.reset_stats()
        for address in interleaved:
            cache.access(address)
        assert cache.stats.miss_rate == 0.0
