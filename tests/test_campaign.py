"""Tests for the crash-recoverable campaign layer (DESIGN.md §12).

Covers spec preflight validation (errors name file, key path and the
offending value), deterministic cell expansion, the append-only journal
and its torn-tail tolerance, quarantine semantics, byte-stable output
artefacts, the corrupt-run-cache quarantine path, and the clean
``ReproError`` wrapping of environmental write failures.
"""

import json
import sys

import pytest

from repro.cli import main
from repro.common.errors import (
    CampaignError,
    CampaignSpecError,
    ConfigError,
    ReproError,
)
from repro.common.io import atomic_write, atomic_write_text
from repro.obs.profile import RunProfiler
from repro.sim.cache import RunCache
from repro.sim.campaign import (
    CampaignJournal,
    build_cells,
    campaign_status,
    load_campaign_spec,
    load_journal,
    replay_journal,
    run_campaign,
)
from repro.sim.parallel import CellSpec, ParallelRunner, cell_cache_key
from repro.workloads.spec_like import make_benchmark_trace


def write_spec(tmp_path, document, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


SMALL = {
    "name": "small",
    "schemes": ["lru", "stem"],
    "benchmarks": ["mcf", "art"],
    "geometries": [{"sets": 64, "assoc": 8}],
    "trace_length": 6_000,
}


# ----------------------------------------------------------------------
# Spec preflight validation
# ----------------------------------------------------------------------

class TestSpecValidation:
    def test_defaults(self, tmp_path):
        path = write_spec(
            tmp_path, {"schemes": ["lru"], "benchmarks": ["mcf"]}
        )
        spec = load_campaign_spec(path)
        assert spec.name == "spec"  # from the file stem
        assert spec.geometries[0].sets == 256
        assert spec.geometries[0].assoc == 16
        assert spec.seeds == (0xACE1,)
        assert spec.fault_plans == (None,)
        assert spec.retry is None

    def test_error_names_file_and_keypath_for_unknown_scheme(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, schemes=["lru", "clock"]))
        with pytest.raises(CampaignSpecError) as excinfo:
            load_campaign_spec(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "schemes[1]" in message
        assert "clock" in message

    def test_unknown_benchmark_set_names_keypath(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, benchmarks=["integer"]))
        with pytest.raises(
            CampaignSpecError, match=r"benchmarks\[0\].*'integer'"
        ):
            load_campaign_spec(path)

    def test_unknown_geometry_key_names_keypath(self, tmp_path):
        path = write_spec(
            tmp_path, dict(SMALL, geometries=[{"sets": 64, "ways": 8}])
        )
        with pytest.raises(
            CampaignSpecError, match=r"geometries\[0\]\.ways"
        ):
            load_campaign_spec(path)

    def test_invalid_geometry_value(self, tmp_path):
        path = write_spec(
            tmp_path, dict(SMALL, geometries=[{"sets": 63, "assoc": 8}])
        )
        with pytest.raises(CampaignSpecError, match=r"geometries\[0\]"):
            load_campaign_spec(path)

    def test_unknown_top_level_key(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, benchmark=["mcf"]))
        with pytest.raises(CampaignSpecError, match="benchmark"):
            load_campaign_spec(path)

    def test_duplicate_scheme_spelling_rejected(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, schemes=["vway", "v-way"]))
        with pytest.raises(CampaignSpecError, match=r"schemes\[1\]"):
            load_campaign_spec(path)

    def test_bool_seed_rejected(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, seeds=[True]))
        with pytest.raises(CampaignSpecError, match=r"seeds\[0\]"):
            load_campaign_spec(path)

    def test_warmup_fraction_range(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, warmup_fraction=1.5))
        with pytest.raises(CampaignSpecError, match="warmup_fraction"):
            load_campaign_spec(path)

    def test_retry_unknown_key(self, tmp_path):
        path = write_spec(tmp_path, dict(SMALL, retry={"attempts": 3}))
        with pytest.raises(CampaignSpecError, match=r"retry\.attempts"):
            load_campaign_spec(path)

    def test_invalid_fault_plan_names_keypath(self, tmp_path):
        path = write_spec(
            tmp_path, dict(SMALL, fault_plans=["warp_core:2"])
        )
        with pytest.raises(CampaignSpecError, match=r"fault_plans\[0\]"):
            load_campaign_spec(path)

    def test_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CampaignSpecError, match="invalid JSON"):
            load_campaign_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="cannot read"):
            load_campaign_spec(tmp_path / "absent.json")

    def test_toml_spec(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "t"\nschemes = ["lru"]\nbenchmarks = ["mcf"]\n'
            'fault_plans = ["", "sc_s:2"]\n',
            encoding="utf-8",
        )
        if sys.version_info >= (3, 11):
            spec = load_campaign_spec(path)
            # TOML has no null: "" spells the fault-free plan.
            assert spec.fault_plans == (None, "sc_s:2")
        else:
            with pytest.raises(CampaignSpecError, match="tomllib"):
                load_campaign_spec(path)

    def test_digest_ignores_spelling(self, tmp_path):
        a = load_campaign_spec(write_spec(tmp_path, SMALL, "a.json"))
        b = load_campaign_spec(write_spec(
            tmp_path,
            dict(SMALL, schemes=["LRU", "STEM"], benchmarks=["art", "mcf"]),
            "b.json",
        ))
        assert a.digest() == b.digest()

    def test_digest_tracks_semantics(self, tmp_path):
        a = load_campaign_spec(write_spec(tmp_path, SMALL, "a.json"))
        b = load_campaign_spec(write_spec(
            tmp_path, dict(SMALL, trace_length=7_000), "b.json"
        ))
        assert a.digest() != b.digest()


# ----------------------------------------------------------------------
# Deterministic cell expansion
# ----------------------------------------------------------------------

class TestBuildCells:
    def test_order_and_indices(self, tmp_path):
        spec = load_campaign_spec(write_spec(tmp_path, SMALL))
        cells = build_cells(spec)
        assert [cell.spec.index for cell in cells] == list(range(4))
        # Benchmark-major (sorted), scheme-minor.
        assert [cell.cell_id for cell in cells] == [
            "art/lru/g64x8/s44257",
            "art/stem/g64x8/s44257",
            "mcf/lru/g64x8/s44257",
            "mcf/stem/g64x8/s44257",
        ]

    def test_single_axis_labels_are_plain(self, tmp_path):
        spec = load_campaign_spec(write_spec(tmp_path, SMALL))
        labels = {cell.spec.label for cell in build_cells(spec)}
        assert labels == {"LRU", "STEM"}

    def test_multi_axis_labels(self, tmp_path):
        document = dict(
            SMALL,
            geometries=[{"sets": 64, "assoc": 8}, {"sets": 64, "assoc": 16}],
            seeds=[1, 2],
            fault_plans=[None, "sc_s:2"],
        )
        spec = load_campaign_spec(write_spec(tmp_path, document))
        cells = build_cells(spec)
        assert len(cells) == 2 * 2 * 2 * 2 * 2
        labels = [cell.spec.label for cell in cells]
        assert "LRU@64x8#s1" in labels
        assert "STEM@64x16#s2!sc_s:2" in labels
        # Labels are unique per workload: no two cells of one benchmark
        # collide in the result matrix.
        per_bench = {}
        for cell in cells:
            per_bench.setdefault(cell.spec.trace.name, []).append(
                cell.spec.label
            )
        for bench_labels in per_bench.values():
            assert len(bench_labels) == len(set(bench_labels))

    def test_fault_plan_reaches_cell_spec(self, tmp_path):
        document = dict(SMALL, fault_plans=["sc_s:2"])
        spec = load_campaign_spec(write_spec(tmp_path, document))
        cells = build_cells(spec)
        assert all(cell.spec.fault_plan == "sc_s:2" for cell in cells)
        assert all(
            cell.cell_id.endswith("/f=sc_s:2") for cell in cells
        )


# ----------------------------------------------------------------------
# Journal durability and replay
# ----------------------------------------------------------------------

class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.append("campaign_start", total_cells=2)
            journal.append("cell_start", cell=0, id="a")
            journal.append("cell_done", cell=0, id="a", digest="d", key="k")
        records, truncated = load_journal(path)
        assert not truncated
        assert [record["kind"] for record in records] == [
            "campaign_start", "cell_start", "cell_done",
        ]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") == ([], False)

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.append("cell_start", cell=0, id="a")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell_done", "cel')
        records, truncated = load_journal(path)
        assert truncated
        assert len(records) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text(
            'garbage\n{"kind": "cell_start", "cell": 0}\n',
            encoding="utf-8",
        )
        with pytest.raises(CampaignError, match="line 1"):
            load_journal(path)

    def test_replay_last_terminal_record_wins(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.append("cell_start", cell=0, id="a")
            journal.append(
                "cell_failed", cell=0, id="a",
                failure={"workload": "a", "scheme": "LRU",
                         "error_type": "Boom", "message": "x"},
            )
            journal.append("cell_start", cell=0, id="a")
            journal.append("cell_done", cell=0, id="a", digest="d", key="k")
        state = replay_journal(path)
        assert 0 in state.completed
        assert not state.failed
        assert state.in_flight == []

    def test_in_flight_detection(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.append("cell_start", cell=3, id="c")
        assert replay_journal(path).in_flight == [3]


# ----------------------------------------------------------------------
# run_campaign: resume, quarantine, byte-stable artefacts
# ----------------------------------------------------------------------

def output_bytes(directory):
    return {
        name: (directory / name).read_bytes()
        for name in ("matrix.txt", "summary.json", "report.html")
    }


class TestRunCampaign:
    def test_fresh_run_emits_artifacts(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        outcome = run_campaign(spec_path, directory=tmp_path / "camp")
        assert outcome.ok
        assert outcome.executed == 4 and outcome.resumed == 0
        assert (tmp_path / "camp" / "campaign.jsonl").exists()
        matrix_text = (tmp_path / "camp" / "matrix.txt").read_text()
        assert "MPKI normalized to LRU" in matrix_text
        summary = json.loads(
            (tmp_path / "camp" / "summary.json").read_text()
        )
        assert summary["total_cells"] == 4
        assert summary["quarantined"] == []
        assert summary["normalized_mpki"]["Geomean"]["LRU"] == 1.0

    def test_resume_is_a_no_op_and_byte_identical(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        directory = tmp_path / "camp"
        run_campaign(spec_path, directory=directory)
        before = output_bytes(directory)
        outcome = run_campaign(spec_path, directory=directory)
        assert outcome.executed == 0
        assert outcome.resumed == 4
        assert output_bytes(directory) == before

    def test_torn_journal_resumes_byte_identical(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        directory = tmp_path / "camp"
        run_campaign(spec_path, directory=directory)
        before = output_bytes(directory)
        journal_path = directory / "campaign.jsonl"
        # Keep campaign_start + the first cell's records, then a torn
        # line — the on-disk state an uncooperative SIGKILL leaves.
        lines = journal_path.read_text().splitlines()[:3]
        journal_path.write_text(
            "\n".join(lines) + '\n{"kind": "cell_done", "cel',
            encoding="utf-8",
        )
        outcome = run_campaign(spec_path, directory=directory)
        assert outcome.executed == 3
        assert output_bytes(directory) == before
        # The repaired journal replays cleanly end to end.
        records, truncated = load_journal(journal_path)
        assert not truncated

    def test_two_directories_byte_identical(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        run_campaign(spec_path, directory=tmp_path / "a")
        run_campaign(spec_path, directory=tmp_path / "b")
        assert output_bytes(tmp_path / "a") == output_bytes(tmp_path / "b")

    def test_spec_change_is_refused_without_fresh(self, tmp_path):
        directory = tmp_path / "camp"
        run_campaign(write_spec(tmp_path, SMALL), directory=directory)
        changed = write_spec(
            tmp_path, dict(SMALL, trace_length=7_000), "changed.json"
        )
        with pytest.raises(CampaignError, match="--fresh"):
            run_campaign(changed, directory=directory)
        outcome = run_campaign(changed, directory=directory, fresh=True)
        assert outcome.executed == 4

    def test_quarantine_contract(self, tmp_path):
        document = dict(
            SMALL,
            benchmarks=["mcf"],
            watchdog_seconds=1e-9,
            retry={"max_attempts": 2, "reseed_step": 10},
        )
        spec_path = write_spec(tmp_path, document)
        directory = tmp_path / "camp"
        outcome = run_campaign(spec_path, directory=directory)
        assert not outcome.ok
        assert len(outcome.quarantined) == 2
        entry = outcome.quarantined[0]
        assert entry.failure.error_type == "WatchdogTimeout"
        assert entry.failure.attempts == 2
        quarantine_files = sorted(
            (directory / "quarantine").glob("cell-*.json")
        )
        assert [path.name for path in quarantine_files] == [
            "cell-00000.json", "cell-00001.json",
        ]
        report = json.loads(quarantine_files[0].read_text())
        assert report["error_type"] == "WatchdogTimeout"
        assert "elapsed_seconds" not in report
        html = (directory / "report.html").read_text()
        assert "degraded: 2 cell(s) quarantined" in html
        assert "WatchdogTimeout" in html
        assert "quarantined cells:" in (
            directory / "matrix.txt"
        ).read_text()

    def test_quarantined_cells_are_not_rerun_on_resume(self, tmp_path):
        document = dict(
            SMALL, benchmarks=["mcf"], watchdog_seconds=1e-9
        )
        spec_path = write_spec(tmp_path, document)
        directory = tmp_path / "camp"
        run_campaign(spec_path, directory=directory)
        before = output_bytes(directory)
        outcome = run_campaign(spec_path, directory=directory)
        assert outcome.executed == 0
        assert len(outcome.quarantined) == 2
        assert output_bytes(directory) == before

    def test_lost_cache_entry_triggers_re_run(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        directory = tmp_path / "camp"
        run_campaign(spec_path, directory=directory)
        before = output_bytes(directory)
        for shard in (directory / "runcache").glob("*/*.json"):
            shard.unlink()
        outcome = run_campaign(spec_path, directory=directory)
        # Journal says done, but the cache cannot prove it: re-run.
        assert outcome.executed == 4
        assert output_bytes(directory) == before

    def test_status_rendering(self, tmp_path):
        spec_path = write_spec(tmp_path, SMALL)
        directory = tmp_path / "camp"
        run_campaign(spec_path, directory=directory)
        status = campaign_status(directory)
        assert "4 cells" in status and "4 done" in status
        with pytest.raises(CampaignError, match="no campaign journal"):
            campaign_status(tmp_path / "nowhere")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCampaignCli:
    def test_run_and_status(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, SMALL)
        directory = tmp_path / "camp"
        assert main([
            "campaign", "run", str(spec_path), "--dir", str(directory)
        ]) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out
        assert main(["campaign", "status", str(directory)]) == 0
        assert "4 done" in capsys.readouterr().out
        # resume is an alias of run
        assert main([
            "campaign", "resume", str(spec_path), "--dir", str(directory)
        ]) == 0
        assert "4 resumed" in capsys.readouterr().out

    def test_quarantine_exit_code(self, tmp_path, capsys):
        document = dict(SMALL, benchmarks=["mcf"], watchdog_seconds=1e-9)
        spec_path = write_spec(tmp_path, document)
        code = main([
            "campaign", "run", str(spec_path),
            "--dir", str(tmp_path / "camp"),
        ])
        assert code == 1
        assert "QUARANTINED" in capsys.readouterr().out

    def test_spec_error_exits_2(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, dict(SMALL, schemes=["clock"]))
        assert main(["campaign", "run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "schemes[0]" in err


# ----------------------------------------------------------------------
# Satellite: corrupt run-cache entries are quarantined, not silent
# ----------------------------------------------------------------------

class TestRunCacheCorruption:
    def _one_cell(self, tmp_path):
        trace = make_benchmark_trace("mcf", num_sets=64, length=4_000)
        from repro.cache.geometry import CacheGeometry
        return CellSpec(
            index=0, scheme="lru", label="LRU", trace=trace,
            geometry=CacheGeometry(
                num_sets=64, associativity=8, line_size=64
            ),
            seed=0xACE1,
        )

    def test_corrupt_entry_renamed_and_counted(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = self._one_cell(tmp_path)
        runner = ParallelRunner(run_cache=cache)
        runner.run([spec])
        key = cell_cache_key(spec)
        path = cache.path_for(key)
        path.write_text("{definitely not json", encoding="utf-8")
        with pytest.warns(UserWarning, match="corrupt"):
            assert cache.get(key) is None
        assert cache.corrupt_entries == 1
        assert path.with_suffix(".corrupt").exists()
        assert not path.exists()
        # Quarantined once: the next lookup is a plain, warning-free miss.
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1

    def test_profiler_surfaces_corrupt_entries(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = self._one_cell(tmp_path)
        ParallelRunner(run_cache=cache).run([spec])
        key = cell_cache_key(spec)
        cache.path_for(key).write_text("{broken", encoding="utf-8")
        profiler = RunProfiler()
        with pytest.warns(UserWarning, match="corrupt"):
            ParallelRunner(run_cache=cache, profiler=profiler).run([spec])
        assert profiler.run_cache_corrupt == 1
        assert "1 corrupt entry quarantined" in profiler.render()
        assert profiler.to_bench_json()["run_cache"]["corrupt"] == 1

    def test_profiler_render_unchanged_without_corruption(self):
        profiler = RunProfiler()
        profiler.note_run_cache(0, 4)
        assert profiler.render().endswith("0 hit(s), 4 miss(es)")
        assert "corrupt" not in profiler.to_bench_json().get(
            "run_cache", {}
        )


# ----------------------------------------------------------------------
# Satellite: environmental write failures become clean ReproErrors
# ----------------------------------------------------------------------

class TestAtomicWriteErrors:
    def test_missing_directory_is_a_repro_error(self, tmp_path):
        target = tmp_path / "absent" / "file.txt"
        with pytest.raises(ReproError, match="cannot write") as excinfo:
            atomic_write_text(target, "content")
        assert str(target) in str(excinfo.value)
        assert not isinstance(excinfo.value, OSError)

    def test_enospc_mid_stream_is_wrapped_and_cleaned_up(self, tmp_path):
        target = tmp_path / "file.txt"
        with pytest.raises(ReproError, match="No space left"):
            with atomic_write(target) as handle:
                handle.write("partial")
                raise OSError(28, "No space left on device")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp file removed

    def test_caller_exceptions_propagate_unwrapped(self, tmp_path):
        target = tmp_path / "file.txt"
        with pytest.raises(ValueError, match="caller bug"):
            with atomic_write(target) as handle:
                handle.write("partial")
                raise ValueError("caller bug")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_cli_maps_write_failure_to_exit_2(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, SMALL)
        missing = tmp_path / "gone"
        code = main([
            "campaign", "run", str(spec_path),
            "--dir", str(tmp_path / "camp"),
            "--profile-json", str(missing / "profile.json"),
        ])
        assert code == 2
        assert "repro: error: cannot write" in capsys.readouterr().err
