"""Tests for the static (fixed-pairing) Set Balancing Cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.spatial.sbc_static import StaticSbcCache

from tests.conftest import cyclic_addresses


def interleave(*streams):
    return [address for accesses in zip(*streams) for address in accesses]


class TestConstruction:
    def test_needs_two_sets(self):
        with pytest.raises(ConfigError):
            StaticSbcCache(CacheGeometry(num_sets=1, associativity=4))

    def test_partner_is_msb_complement(self):
        cache = StaticSbcCache(CacheGeometry(num_sets=8, associativity=2))
        assert cache.partner_of(0) == 4
        assert cache.partner_of(5) == 1
        assert cache.partner_of(cache.partner_of(3)) == 3


class TestBalancing:
    def test_overflow_spills_into_partner(self):
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = StaticSbcCache(geometry)
        thrash = cyclic_addresses(geometry, 0, 6, 2000)
        quiet = cyclic_addresses(geometry, 1, 2, 2000)
        stream = interleave(thrash, quiet)
        for address in stream[:1000]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[1000:]:
            cache.access(address)
        assert cache.stats.spills > 0 or cache.stats.cooperative_hits > 0
        # The Figure 2 Example #1 situation: everything fits pairwise.
        assert cache.stats.miss_rate < 0.1
        cache.check_invariants()

    def test_no_spill_when_partner_equally_saturated(self):
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = StaticSbcCache(geometry)
        thrash0 = cyclic_addresses(geometry, 0, 16, 1500)
        thrash1 = cyclic_addresses(geometry, 1, 16, 1500)
        for address in interleave(thrash0, thrash1):
            cache.access(address)
        # Both sides saturate equally: at most transient spills.
        assert cache.stats.miss_rate > 0.9
        cache.check_invariants()

    def test_coop_hit_reported_with_double_probe_miss_kind(self):
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = StaticSbcCache(geometry)
        thrash = cyclic_addresses(geometry, 0, 6, 2000)
        quiet = cyclic_addresses(geometry, 1, 2, 2000)
        kinds = {cache.access(a) for a in interleave(thrash, quiet)}
        assert AccessKind.COOP_HIT in kinds


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=23),
                st.booleans(),
            ),
            min_size=1,
            max_size=400,
        )
    )
    def test_random_load(self, stream):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        cache = StaticSbcCache(geometry)
        for set_index, tag, is_write in stream:
            cache.access(
                geometry.mapper.compose(tag, set_index), is_write=is_write
            )
        cache.check_invariants()
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.local_hits + stats.cooperative_hits == stats.hits
