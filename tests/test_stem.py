"""Unit and behavioural tests for the STEM LLC."""

import pytest

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.core.config import StemConfig
from repro.core.stem_cache import StemCache
from repro.sim.simulator import run_trace
from repro.workloads.synthetic import figure2_trace

from tests.conftest import cyclic_addresses, random_addresses


def make_stem(num_sets=8, associativity=4, **config_kwargs):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    config = StemConfig(**config_kwargs) if config_kwargs else None
    return StemCache(geometry, config=config)


def interleave(*streams):
    return [address for accesses in zip(*streams) for address in accesses]


class TestConstruction:
    def test_needs_two_sets(self):
        with pytest.raises(ConfigError):
            StemCache(CacheGeometry(num_sets=1, associativity=4))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            StemConfig(counter_bits=0)
        with pytest.raises(ConfigError):
            StemConfig(shadow_tag_bits=0)
        with pytest.raises(ConfigError):
            StemConfig(heap_capacity=0)
        with pytest.raises(ConfigError):
            StemConfig(spatial_ratio_bits=-1)

    def test_all_sets_start_as_lru(self):
        cache = make_stem()
        assert all(
            cache.policy_mode_of(s) == "LRU"
            for s in range(cache.geometry.num_sets)
        )


class TestBasicAccessPath:
    def test_miss_then_hit(self):
        cache = make_stem()
        assert cache.access(0x1000) == AccessKind.MISS
        assert cache.access(0x1000) == AccessKind.LOCAL_HIT

    def test_stats_partition_under_random_load(self):
        cache = make_stem(num_sets=16, associativity=4)
        for address in random_addresses(cache.geometry, 5000, tag_space=48):
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.local_hits + stats.cooperative_hits == stats.hits
        assert (
            stats.misses_single_probe + stats.misses_double_probe
            == stats.misses
        )
        cache.check_invariants()

    def test_shadow_captures_victims(self):
        cache = make_stem(num_sets=2, associativity=2)
        mapper = cache.geometry.mapper
        for tag in (1, 2, 3):  # overflow the 2-way set
            cache.access(mapper.compose(tag, 0))
        assert len(cache.shadow_entries(0)) >= 1

    def test_shadow_hit_counted_and_exclusive(self):
        cache = make_stem(num_sets=2, associativity=2)
        mapper = cache.geometry.mapper
        for tag in (1, 2, 3):
            cache.access(mapper.compose(tag, 0))
        # Tag 1 was evicted; re-touching it is a shadow hit...
        cache.access(mapper.compose(1, 0))
        assert cache.stats.shadow_hits == 1
        signatures = {e.hashed_tag for e in cache.shadow_entries(0)}
        assert cache._hash(1) not in signatures  # invalidated on hit


class TestTemporalManagement:
    def test_thrashing_set_triggers_policy_swaps(self):
        # A loop of 2x the associativity saturates SC_T and forces the
        # set out of pure LRU.  (The SC_T duel re-arms after each swap,
        # so the set legitimately oscillates between BIP-heavy phases;
        # what matters is that swaps fire and misses drop below LRU's
        # 100% thrash.)
        cache = make_stem(num_sets=2, associativity=4)
        stream = cyclic_addresses(cache.geometry, 0, 8, 3000)
        for address in stream:
            cache.access(address)
        assert cache.stats.policy_swaps >= 1
        assert cache.stats.miss_rate < 0.8

    def test_friendly_set_stays_lru(self):
        cache = make_stem(num_sets=2, associativity=4)
        stream = cyclic_addresses(cache.geometry, 0, 4, 2000)
        for address in stream:
            cache.access(address)
        assert cache.policy_mode_of(0) == "LRU"
        assert cache.stats.policy_swaps == 0

    def test_swap_cuts_miss_rate_on_solo_thrash(self):
        # One thrashing set with no partner available (the other set is
        # idle but never posted): per-set BIP should still kick in.
        cache = make_stem(num_sets=2, associativity=4)
        stream = cyclic_addresses(cache.geometry, 0, 8, 6000)
        for address in stream[:3000]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[3000:]:
            cache.access(address)
        # LRU would thrash at 1.0; BIP's analytic rate is 1 - 3/8.
        assert cache.stats.miss_rate < 0.8

    def test_mirrored_shadow_ablation_disables_swap_signal(self):
        # With the shadow running the *same* policy, a thrashing LRU
        # set's shadow also thrashes: far weaker SC_T signal.
        inverted = make_stem(num_sets=2, associativity=4)
        mirrored = make_stem(
            num_sets=2, associativity=4, invert_shadow_policy=False
        )
        stream = cyclic_addresses(inverted.geometry, 0, 8, 4000)
        for address in stream:
            inverted.access(address)
            mirrored.access(address)
        assert inverted.stats.policy_swaps >= mirrored.stats.policy_swaps


class TestSpatialManagement:
    def test_figure2_example1_couples_and_balances(self):
        cache = StemCache(CacheGeometry(num_sets=2, associativity=4))
        result = run_trace(cache, figure2_trace(1, rounds=2048),
                           warmup_fraction=0.5)
        # Coupling happens during warm-up, so read the association
        # table's own counter rather than the (reset) run statistics.
        assert cache.association.couplings >= 1
        assert cache.stats.cooperative_hits > 0
        assert result.miss_rate < 0.05

    def test_roles_reported(self):
        cache = StemCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(1, rounds=1024).addresses:
            cache.access(address)
        assert cache.role_of(0) == "taker"
        assert cache.role_of(1) == "giver"
        cache.check_invariants()

    def test_no_coupling_when_no_givers(self):
        # Figure 2 Example #3: both sets overutilized -> heap empty.
        cache = StemCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(3, rounds=1024).addresses:
            cache.access(address)
        assert cache.stats.couplings == 0

    def test_coop_hits_use_double_tag_probes(self):
        cache = StemCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(1, rounds=1024).addresses:
            cache.access(address)
        assert cache.stats.cooperative_hits > 0
        assert cache.stats.misses_double_probe >= 0
        # Every cooperative block in the giver carries CC = 1.
        coop = [b for b in cache.resident_blocks(1) if b.cooperative]
        assert coop

    def test_receiving_control_protects_giver(self):
        # A giver bombarded by a streaming taker must start refusing
        # spills once its own monitor stops reading "giver".
        geometry = CacheGeometry(num_sets=2, associativity=4)
        gated = StemCache(geometry)
        ungated = StemCache(
            geometry, config=StemConfig(receiving_control=False)
        )
        thrash = cyclic_addresses(geometry, 0, 64, 4000)
        friendly = cyclic_addresses(geometry, 1, 4, 4000)
        stream = interleave(thrash, friendly)
        for address in stream:
            gated.access(address)
            ungated.access(address)
        assert gated.stats.spill_rejects > 0
        # Unconditional receiving never rejects; gating cannot do worse.
        assert ungated.stats.spill_rejects == 0
        assert gated.stats.misses <= ungated.stats.misses

    def test_decoupling_on_cc_drain(self):
        # Couple a pair, then let the giver's own demand evict every
        # cooperative block: the pair must dissolve (Section 4.7).
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = StemCache(geometry)
        for address in figure2_trace(1, rounds=1024).addresses:
            cache.access(address)
        assert cache.role_of(1) == "giver"
        # Phase change: set 1 suddenly needs all of its capacity.
        for address in cyclic_addresses(geometry, 1, 4, 400):
            cache.access(address)
        for address in cyclic_addresses(geometry, 1, 6, 2000):
            cache.access(address)
        assert cache.stats.decouplings >= 1
        assert cache.role_of(1) == "uncoupled"
        cache.check_invariants()


class TestHalfAblations:
    def test_temporal_only_never_couples(self):
        cache = make_stem(num_sets=2, associativity=4, enable_spatial=False)
        for address in figure2_trace(1, rounds=1024).addresses:
            cache.access(address)
        assert cache.stats.couplings == 0
        assert cache.stats.spills == 0

    def test_spatial_only_never_swaps(self):
        cache = make_stem(num_sets=2, associativity=4, enable_temporal=False)
        stream = cyclic_addresses(cache.geometry, 0, 8, 3000)
        for address in stream:
            cache.access(address)
        assert cache.stats.policy_swaps == 0
        assert cache.policy_mode_of(0) == "LRU"

    def test_spatial_only_still_balances_figure2_example1(self):
        cache = make_stem(num_sets=2, associativity=4, enable_temporal=False)
        result = run_trace(cache, figure2_trace(1, rounds=2048),
                           warmup_fraction=0.5)
        assert result.miss_rate < 0.05

    def test_full_stem_at_least_as_good_as_either_half(self):
        # The paper's thesis in one assertion: Example #2 needs both
        # dimensions, and the combination dominates each half.
        trace = figure2_trace(2, rounds=2048)
        rates = {}
        for label, kwargs in (
            ("full", {}),
            ("spatial", {"enable_temporal": False}),
            ("temporal", {"enable_spatial": False}),
        ):
            cache = make_stem(num_sets=2, associativity=4, **kwargs)
            rates[label] = run_trace(
                cache, trace, warmup_fraction=0.5
            ).miss_rate
        assert rates["full"] <= rates["spatial"] + 0.02
        assert rates["full"] <= rates["temporal"] + 0.02


class TestInspection:
    def test_resident_blocks_views(self):
        cache = make_stem()
        cache.access(0x2000, is_write=True)
        set_index = cache.mapper.set_index(0x2000)
        views = cache.resident_blocks(set_index)
        assert len(views) == 1
        assert views[0].dirty
        assert not views[0].cooperative

    def test_reset_stats_preserves_contents(self):
        cache = make_stem()
        cache.access(0x2000)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0x2000) == AccessKind.LOCAL_HIT
