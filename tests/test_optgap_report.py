"""Tests for the optimality-gap experiment and the workload report."""

import pytest

from repro.analysis.report import build_report, render_report
from repro.cli import main as cli_main
from repro.experiments import optgap
from repro.sim.config import ExperimentScale

SMALL = ExperimentScale(num_sets=32, associativity=16, trace_length=10_000)


class TestOptGap:
    def test_gaps_at_least_one(self):
        result = optgap.run(
            benchmarks=("vpr",), schemes=("LRU", "STEM"), scale=SMALL
        )
        assert result.gap("vpr", "LRU") >= 1.0
        assert result.gap("vpr", "STEM") >= 1.0

    def test_stem_gap_not_worse_than_lru_on_thrash(self):
        result = optgap.run(
            benchmarks=("mcf",), schemes=("LRU", "STEM"), scale=SMALL
        )
        assert result.gap("mcf", "STEM") <= result.gap("mcf", "LRU") * 1.02

    def test_main_renders(self, capsys):
        optgap.main(scale=SMALL)
        assert "Optimality gap" in capsys.readouterr().out


class TestWorkloadReport:
    def test_report_structure(self):
        report = build_report("vpr", schemes=("LRU", "STEM"), scale=SMALL)
        assert report.trace_name == "vpr"
        assert set(report.scheme_results) == {"LRU", "STEM"}
        assert report.best_scheme() in ("LRU", "STEM")
        assert sum(report.demand_bands.values()) == pytest.approx(1.0)
        assert report.miss_curve[2] >= report.miss_curve[32]

    def test_render_contains_sections(self):
        report = build_report("mcf", schemes=("LRU",), scale=SMALL)
        text = render_report(report)
        assert "classification:" in text
        assert "LRU miss curve:" in text
        assert "best scheme by MPKI" in text

    def test_cli_report_command(self, capsys):
        code = cli_main([
            "report", "vpr", "--sets", "32", "--length", "8000"
        ])
        assert code == 0
        assert "Workload report: vpr" in capsys.readouterr().out
