"""Tests for the HTTP observatory (DESIGN.md §15).

The server runs in-process on an ephemeral port; requests go through
``urllib``.  The load-bearing properties: every endpoint answers, the
static bodies (``/metrics``, ``/api/runs``, run pages) are
byte-identical across requests, unknown resources 404, untrusted
scheme/benchmark names never reach HTML pages unescaped, and the
exposition carries HELP/TYPE lines plus run/scheme/benchmark labels.
"""

import dataclasses
import json
import threading
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs.htmlreport import render_campaign_html, render_run_html
from repro.obs.server import create_server
from repro.sim.cache import save_run
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=12_000)

NASTY = '<script>alert("x")</script>'


def run(scheme, benchmark="mcf", window=2_000, seed=7):
    trace = make_benchmark_trace(
        benchmark, num_sets=SCALE.num_sets, length=SCALE.trace_length
    )
    cache = make_scheme(scheme, SCALE.geometry(), seed=seed)
    return run_trace(cache, trace, metrics_window=window)


@pytest.fixture(scope="module")
def observatory(tmp_path_factory):
    """A server over a static run dir: two runs, one hostile name."""
    run_dir = tmp_path_factory.mktemp("observatory")
    a = run("lru")
    b = run("stem")
    hostile = dataclasses.replace(
        a, scheme=NASTY, manifest=None, ledger=None
    )
    save_run(run_dir / "a.json", a)
    save_run(run_dir / "b.json", b)
    save_run(run_dir / "hostile.json", hostile)
    server = create_server(run_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        server.index.close()
        thread.join(timeout=5)


def get(base, path):
    with urlopen(base + path) as response:
        return response.status, response.read()


class TestEndpoints:
    def test_healthz(self, observatory):
        status, body = get(observatory, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_404(self, observatory):
        with pytest.raises(HTTPError) as err:
            get(observatory, "/nope")
        assert err.value.code == 404

    def test_api_runs_lists_all(self, observatory):
        _, body = get(observatory, "/api/runs")
        runs = json.loads(body)
        assert len(runs) == 3
        assert {r["scheme"] for r in runs} == {"LRU", "STEM", NASTY}

    def test_api_run_by_hash_and_prefix(self, observatory):
        _, body = get(observatory, "/api/runs")
        digest = json.loads(body)[0]["hash"]
        status, one = get(observatory, f"/api/runs/{digest[:12]}")
        assert status == 200
        assert json.loads(one)["hash"] == digest

    def test_api_run_unknown_hash_404(self, observatory):
        with pytest.raises(HTTPError) as err:
            get(observatory, "/api/runs/" + "0" * 64)
        assert err.value.code == 404

    def test_api_status_is_fleet_schema(self, observatory):
        _, body = get(observatory, "/api/status")
        status = json.loads(body)
        assert set(status) >= {
            "run_dir", "counts", "cells", "finished", "total_cells",
        }

    def test_api_regressions_document(self, observatory):
        _, body = get(observatory, "/api/regressions")
        document = json.loads(body)
        assert document["regressed"] == []
        assert document["entries"] == 0

    def test_metrics_exposition(self, observatory):
        _, body = get(observatory, "/metrics")
        text = body.decode("utf-8")
        assert "# HELP repro_misses" in text
        assert "# TYPE repro_misses counter" in text
        assert 'benchmark="mcf"' in text
        assert 'scheme="STEM"' in text
        # Every sample is tied to its originating run.
        assert 'run="' in text

    def test_run_page_matches_cli_renderer(self, observatory):
        _, body = get(observatory, "/api/runs")
        runs = json.loads(body)
        stem = next(r for r in runs if r["scheme"] == "STEM")
        _, page = get(observatory, f"/runs/{stem['hash']}")
        assert page.decode("utf-8") == render_run_html(run("stem"))

    def test_front_and_fleet_pages(self, observatory):
        for path in ("/", "/fleet"):
            status, body = get(observatory, path)
            assert status == 200
            assert body.decode("utf-8").startswith("<!DOCTYPE html>")


class TestDeterminism:
    @pytest.mark.parametrize(
        "path", ["/healthz", "/metrics", "/api/runs", "/", "/fleet",
                 "/api/regressions", "/api/campaigns"]
    )
    def test_static_bodies_are_byte_identical(self, observatory, path):
        _, first = get(observatory, path)
        _, second = get(observatory, path)
        assert first == second

    def test_run_page_is_byte_identical(self, observatory):
        _, body = get(observatory, "/api/runs")
        digest = json.loads(body)[0]["hash"]
        _, first = get(observatory, f"/runs/{digest}")
        _, second = get(observatory, f"/runs/{digest}")
        assert first == second


class TestEscaping:
    """Untrusted names must never reach markup unescaped."""

    def test_front_page_escapes_scheme_names(self, observatory):
        _, body = get(observatory, "/")
        text = body.decode("utf-8")
        assert NASTY not in text
        assert "&lt;script&gt;" in text

    def test_run_page_escapes_scheme_names(self, observatory):
        _, body = get(observatory, "/api/runs")
        hostile = next(
            r for r in json.loads(body) if r["scheme"] == NASTY
        )
        _, page = get(observatory, f"/runs/{hostile['hash']}")
        text = page.decode("utf-8")
        assert NASTY not in text
        assert "&lt;script&gt;" in text

    def test_render_run_html_escapes_names(self):
        hostile = dataclasses.replace(
            run("lru"), scheme=NASTY, manifest=None, ledger=None
        )
        text = render_run_html(hostile)
        assert NASTY not in text
        assert "&lt;script&gt;" in text

    def test_render_campaign_html_escapes_names(self):
        text = render_campaign_html(
            name=NASTY,
            total_cells=1,
            mpki={NASTY: {NASTY: 1.0}},
            schemes=[NASTY],
            quarantined=[{
                "cell": 0, "id": NASTY, "error_type": NASTY,
                "message": NASTY, "attempts": 1,
            }],
        )
        assert NASTY not in text
        assert "&lt;script&gt;" in text
