"""Tests for the association table and the candidate-giver heap."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.spatial.association import AssociationTable
from repro.spatial.heap import GiverHeap


class TestAssociationTable:
    def test_initially_everyone_uncoupled(self):
        table = AssociationTable(8)
        for index in range(8):
            assert not table.is_coupled(index)
            assert table.partner_of(index) is None

    def test_couple_decouple_cycle(self):
        table = AssociationTable(8)
        table.couple(1, 5)
        assert table.partner_of(1) == 5
        assert table.partner_of(5) == 1
        assert table.couplings == 1
        table.decouple(1, 5)
        assert not table.is_coupled(1)
        assert not table.is_coupled(5)
        assert table.decouplings == 1

    def test_self_coupling_rejected(self):
        table = AssociationTable(4)
        with pytest.raises(SimulationError):
            table.couple(2, 2)

    def test_double_coupling_rejected(self):
        table = AssociationTable(4)
        table.couple(0, 1)
        with pytest.raises(SimulationError):
            table.couple(1, 2)

    def test_decouple_of_uncoupled_rejected(self):
        table = AssociationTable(4)
        with pytest.raises(SimulationError):
            table.decouple(0, 1)

    def test_invariants_hold(self):
        table = AssociationTable(16)
        table.couple(0, 3)
        table.couple(7, 9)
        table.check_invariants()

    def test_storage_bits_table3(self):
        # Table 3: 2048 entries x 11 bits.
        assert AssociationTable(2048).storage_bits() == 2048 * 11

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            AssociationTable(0)


class TestGiverHeap:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            GiverHeap(0)

    def test_offer_and_pop_least_saturated(self):
        heap = GiverHeap(4)
        heap.offer(10, saturation=5)
        heap.offer(11, saturation=2)
        heap.offer(12, saturation=7)
        assert heap.pop_best(lambda s: True) == 11
        assert heap.pop_best(lambda s: True) == 10

    def test_full_heap_replaces_most_saturated(self):
        heap = GiverHeap(2)
        heap.offer(1, saturation=5)
        heap.offer(2, saturation=6)
        assert heap.offer(3, saturation=1)  # kicks out set 2
        assert 2 not in heap
        assert 3 in heap
        assert heap.replacements == 1

    def test_full_heap_rejects_more_saturated(self):
        heap = GiverHeap(2)
        heap.offer(1, saturation=1)
        heap.offer(2, saturation=2)
        assert not heap.offer(3, saturation=9)
        assert 3 not in heap

    def test_reoffer_updates_saturation(self):
        heap = GiverHeap(4)
        heap.offer(1, saturation=5)
        heap.offer(2, saturation=3)
        heap.offer(1, saturation=0)
        assert heap.pop_best(lambda s: True) == 1

    def test_stale_entries_discarded_by_validator(self):
        heap = GiverHeap(4)
        heap.offer(1, saturation=0)
        heap.offer(2, saturation=5)
        assert heap.pop_best(lambda s: s != 1) == 2
        assert 1 not in heap  # discarded as stale

    def test_pop_empty_returns_none(self):
        heap = GiverHeap(4)
        assert heap.pop_best(lambda s: True) is None

    def test_remove_is_idempotent(self):
        heap = GiverHeap(4)
        heap.offer(1, saturation=0)
        heap.remove(1)
        heap.remove(1)
        assert len(heap) == 0
