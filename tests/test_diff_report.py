"""Tests for run differencing and the HTML report.

The load-bearing properties: ``diff_results`` output is byte-stable and
degrades gracefully (missing series, mismatched windows), the top-k
divergence ranking is deterministic, and ``render_run_html`` produces a
self-contained page — non-empty, no network references, byte-identical
across invocations.
"""

import json

import pytest

from repro.obs.diff import diff_results, sparkline
from repro.obs.htmlreport import diff_to_html, render_run_html
from repro.sim.cache import load_run, save_run
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=12_000)


def run(scheme, benchmark="mcf", window=2_000, seed=7):
    trace = make_benchmark_trace(
        benchmark, num_sets=SCALE.num_sets, length=SCALE.trace_length
    )
    cache = make_scheme(scheme, SCALE.geometry(), seed=seed)
    return run_trace(cache, trace, metrics_window=window)


@pytest.fixture(scope="module")
def run_pair():
    return run("lru"), run("stem")


class TestDiff:
    def test_scalars_cover_counters_and_paper_metrics(self, run_pair):
        a, b = run_pair
        diff = diff_results(a, b)
        names = {d.name for d in diff.scalars}
        assert {"misses", "mpki", "amat", "cpi", "miss_rate"} <= names
        by_name = {d.name: d for d in diff.scalars}
        assert by_name["misses"].delta == \
            b.stats.misses - a.stats.misses
        assert by_name["accesses"].delta == 0

    def test_render_is_byte_stable(self, run_pair):
        a, b = run_pair
        first = diff_results(a, b).render()
        second = diff_results(a, b).render()
        assert first == second
        assert first.endswith("\n")
        assert "run diff: A = LRU on mcf" in first

    def test_series_window_aligned(self, run_pair):
        a, b = run_pair
        diff = diff_results(a, b)
        assert diff.window_length == 2_000
        assert diff.num_windows == min(
            a.series.num_windows, b.series.num_windows
        )
        for series_a, series_b in diff.series.values():
            assert len(series_a) == len(series_b) == diff.num_windows

    def test_top_k_sets_ranked_by_divergence(self, run_pair):
        a, b = run_pair
        diff = diff_results(a, b, top_k=5)
        assert len(diff.top_sets) == 5
        deltas = [abs(s.delta) for s in diff.top_sets]
        assert deltas == sorted(deltas, reverse=True)
        assert len({s.set_index for s in diff.top_sets}) == 5

    def test_missing_series_degrades_to_note(self):
        bare_a = run_trace(
            make_scheme("lru", SCALE.geometry(), seed=7),
            make_benchmark_trace("mcf", num_sets=64, length=6_000),
        )
        windowed_b = run("stem")
        diff = diff_results(bare_a, windowed_b)
        assert diff.series == {}
        assert "A" in diff.series_note
        assert diff.sets_note is not None
        # Scalars still diff, and render still works.
        assert "scalar metrics" in diff.render()

    def test_mismatched_windows_degrade_to_note(self):
        diff = diff_results(run("lru", window=1_000), run("stem"))
        assert diff.series == {}
        assert "window lengths differ" in diff.series_note

    def test_as_dict_json_serialisable(self, run_pair):
        a, b = run_pair
        payload = diff_results(a, b).as_dict()
        round_tripped = json.loads(json.dumps(payload, sort_keys=True))
        assert round_tripped["label_b"] == "STEM on mcf"
        assert round_tripped["top_sets"]

    def test_file_based_diff_matches_in_process(self, tmp_path, run_pair):
        a, b = run_pair
        save_run(tmp_path / "a.json", a)
        save_run(tmp_path / "b.json", b)
        from_files = diff_results(
            load_run(tmp_path / "a.json"), load_run(tmp_path / "b.json")
        )
        assert from_files.render() == diff_results(a, b).render()

    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        strip = sparkline([0.0, 0.5, 1.0])
        assert len(strip) == 3
        assert strip[0] == "▁" and strip[-1] == "█"


class TestHtmlReport:
    def test_single_run_page(self, run_pair):
        _, b = run_pair
        html = render_run_html(b)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "STEM on mcf" in html
        assert "<svg" in html          # sparklines
        assert "<rect" in html         # heatmap
        assert "Per-set occupancy" in html

    def test_self_contained_no_network(self, run_pair):
        a, b = run_pair
        for html in (render_run_html(a), diff_to_html(a, b)):
            lowered = html.lower()
            assert "http" not in lowered
            assert "<script" not in lowered
            assert "<link" not in lowered
            assert "@import" not in lowered
            assert 'src="' not in lowered

    def test_byte_stable(self, run_pair):
        a, b = run_pair
        assert render_run_html(a, b) == render_run_html(a, b)
        assert diff_to_html(a, b) == diff_to_html(a, b)

    def test_ab_page_has_both_runs(self, run_pair):
        a, b = run_pair
        html = diff_to_html(a, b)
        assert "LRU on mcf" in html and "STEM on mcf" in html
        # Two heatmaps (A and B) and the text-diff appendix.
        assert html.count("Per-set occupancy") == 2
        assert "Text diff" in html
        assert html.count("</html>") == 1

    def test_run_without_series_still_renders(self):
        bare = run_trace(
            make_scheme("lru", SCALE.geometry(), seed=7),
            make_benchmark_trace("mcf", num_sets=64, length=6_000),
        )
        html = render_run_html(bare)
        assert "no windowed series" in html
        assert "<rect" not in html

    def test_large_geometry_heatmap_is_bucketed(self):
        trace = make_benchmark_trace("mcf", num_sets=256, length=12_000)
        scale = ExperimentScale(
            num_sets=256, associativity=16, trace_length=12_000
        )
        cache = make_scheme("stem", scale.geometry(), seed=7)
        result = run_trace(cache, trace, metrics_window=500)
        html = render_run_html(result)
        # 256 sets x 18 windows bucket down to <= 64 rows.
        assert html.count("<rect") <= 64 * 128
