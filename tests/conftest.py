"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.addressing import AddressMapper
from repro.common.rng import SplitMix


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 16-set, 4-way cache: big enough for every scheme's machinery."""
    return CacheGeometry(num_sets=16, associativity=4, line_size=64)


@pytest.fixture
def paper_geometry() -> CacheGeometry:
    """The paper's 2 MB / 16-way / 2048-set configuration."""
    return CacheGeometry(num_sets=2048, associativity=16, line_size=64)


@pytest.fixture
def two_set_geometry() -> CacheGeometry:
    """The Figure 2 toy: 2 sets, 4 ways."""
    return CacheGeometry(num_sets=2, associativity=4, line_size=64)


def compose_address(
    geometry: CacheGeometry, tag: int, set_index: int
) -> int:
    """Block-aligned address with the given tag and set."""
    return geometry.mapper.compose(tag, set_index)


def cyclic_addresses(
    geometry: CacheGeometry, set_index: int, working_set: int, length: int
) -> "list[int]":
    """A cyclic reference stream confined to one set."""
    mapper = geometry.mapper
    return [
        mapper.compose(i % working_set, set_index) for i in range(length)
    ]


def random_addresses(
    geometry: CacheGeometry,
    length: int,
    tag_space: int = 64,
    seed: int = 7,
) -> "list[int]":
    """Uniformly random block addresses over a bounded tag space."""
    rng = SplitMix(seed=seed)
    mapper = geometry.mapper
    return [
        mapper.compose(
            rng.randint(0, tag_space - 1),
            rng.randint(0, geometry.num_sets - 1),
        )
        for _ in range(length)
    ]


class ReferenceLru:
    """A deliberately naive LRU cache used as a differential oracle."""

    def __init__(self, mapper: AddressMapper, associativity: int) -> None:
        self.mapper = mapper
        self.associativity = associativity
        self.sets: dict = {}

    def access(self, address: int) -> bool:
        """True on hit; maintains per-set python-list LRU order."""
        set_index, tag = self.mapper.split(address)
        entries = self.sets.setdefault(set_index, [])
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            return True
        if len(entries) >= self.associativity:
            entries.pop(0)
        entries.append(tag)
        return False
