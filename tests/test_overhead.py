"""Tests for the Table 3 storage-overhead arithmetic."""

import pytest

from repro.analysis.overhead import (
    dip_overhead,
    index_bits,
    lru_baseline_bits,
    paper_table3_geometry,
    pelifo_overhead,
    rank_bits,
    sbc_overhead,
    stem_overhead,
    vway_overhead,
)
from repro.core.config import StemConfig


class TestFieldWidths:
    def test_rank_bits(self):
        assert rank_bits(16) == 4  # Table 3's replacement rank field
        assert rank_bits(32) == 5
        assert rank_bits(1) == 1

    def test_index_bits(self):
        assert index_bits(2048) == 11  # Table 3's association entry


class TestBaseline:
    def test_baseline_per_line_bits(self):
        geometry = paper_table3_geometry()
        total = lru_baseline_bits(geometry)
        # 512 data + 27 tag + valid + dirty + 4 rank = 545 bits/line.
        assert total == 545 * 32768


class TestStemBudget:
    def test_paper_overhead_is_3_1_percent(self):
        report = stem_overhead(paper_table3_geometry())
        assert report.overhead_percent == pytest.approx(3.1, abs=0.1)

    def test_component_arithmetic(self):
        report = stem_overhead(paper_table3_geometry())
        components = dict(report.rows())
        assert components["cc_bits"] == 32768
        # Shadow entry: 10-bit hash + valid + 4-bit rank = 15 bits/line.
        assert components["shadow_sets"] == 32768 * 15
        assert components["saturating_counters"] == 2048 * 8
        assert components["association_table"] == 2048 * 11
        assert report.extra_bits == sum(components.values())

    def test_wider_shadow_tags_cost_more(self):
        geometry = paper_table3_geometry()
        slim = stem_overhead(geometry, StemConfig(shadow_tag_bits=8))
        wide = stem_overhead(geometry, StemConfig(shadow_tag_bits=16))
        assert wide.extra_bits > slim.extra_bits


class TestOtherSchemes:
    def test_dip_is_nearly_free(self):
        report = dip_overhead(paper_table3_geometry())
        assert report.extra_bits == 10
        assert report.overhead_percent < 0.001

    def test_sbc_cheaper_than_stem(self):
        geometry = paper_table3_geometry()
        assert (
            sbc_overhead(geometry).extra_bits
            < stem_overhead(geometry).extra_bits
        )

    def test_vway_dominated_by_extra_tags(self):
        report = vway_overhead(paper_table3_geometry())
        components = dict(report.rows())
        assert components["extra_tag_entries"] > components["reuse_counters"]
        assert report.overhead_percent > 10  # the paper notes V-Way's cost

    def test_pelifo_modest(self):
        report = pelifo_overhead(paper_table3_geometry())
        assert 0 < report.overhead_percent < 1.0
