"""Tests for MSHRs, write buffers, memory and bus models."""

import pytest

from repro.cache.memory import Bus, MainMemory
from repro.cache.mshr import MshrFile
from repro.cache.writebuffer import WriteBuffer
from repro.common.errors import ConfigError


class TestMshr:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            MshrFile(0)
        with pytest.raises(ConfigError):
            MshrFile(4, miss_latency=0)

    def test_primary_then_secondary_merge(self):
        mshr = MshrFile(capacity=4, miss_latency=10)
        assert not mshr.register_miss(0x100)  # primary
        assert mshr.register_miss(0x100)      # merged while in flight
        assert mshr.primary_misses == 1
        assert mshr.secondary_misses == 1

    def test_entry_retires_after_latency(self):
        mshr = MshrFile(capacity=4, miss_latency=3)
        mshr.register_miss(0x100)
        for _ in range(4):
            mshr.tick()
        assert not mshr.register_miss(0x100)  # primary again
        assert mshr.primary_misses == 2

    def test_full_file_counts_stall(self):
        mshr = MshrFile(capacity=2, miss_latency=100)
        mshr.register_miss(0x1)
        mshr.register_miss(0x2)
        mshr.register_miss(0x3)
        assert mshr.stalls == 1

    def test_outstanding_tracks_live_entries(self):
        mshr = MshrFile(capacity=8, miss_latency=5)
        mshr.register_miss(0x1)
        mshr.register_miss(0x2)
        assert mshr.outstanding == 2


class TestWriteBuffer:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            WriteBuffer(0)
        with pytest.raises(ConfigError):
            WriteBuffer(4, drain_interval=0)

    def test_drains_on_interval(self):
        buffer = WriteBuffer(capacity=4, drain_interval=2)
        buffer.push(0x1)
        buffer.tick()
        assert buffer.occupancy == 1
        buffer.tick()
        assert buffer.occupancy == 0
        assert buffer.drained == 1

    def test_full_buffer_stalls(self):
        buffer = WriteBuffer(capacity=2, drain_interval=100)
        assert buffer.push(0x1)
        assert buffer.push(0x2)
        assert not buffer.push(0x3)
        assert buffer.full_stalls == 1
        assert buffer.occupancy == 2

    def test_flush_empties(self):
        buffer = WriteBuffer(capacity=4)
        buffer.push(0x1)
        buffer.push(0x2)
        assert buffer.flush() == 2
        assert buffer.occupancy == 0


class TestBusAndMemory:
    def test_bus_transfer_cycles_table1(self):
        # 64-byte line over a 16 B/cycle bus at 2:1 with 1-cycle arb.
        bus = Bus(bytes_per_cycle=16, speed_ratio=2, arbitration_cycles=1)
        assert bus.transfer_cycles(64) == 1 + 4 * 2

    def test_bus_validation(self):
        with pytest.raises(ConfigError):
            Bus(bytes_per_cycle=0)
        with pytest.raises(ConfigError):
            Bus(speed_ratio=0)
        with pytest.raises(ConfigError):
            Bus(arbitration_cycles=-1)

    def test_memory_flat_latency(self):
        memory = MainMemory(latency_cycles=300)
        assert memory.read_line() == 300
        assert memory.write_line() == 300
        assert memory.reads == 1
        assert memory.writes == 1
        assert memory.traffic_lines == 2

    def test_memory_with_bus(self):
        memory = MainMemory(latency_cycles=300, bus=Bus())
        assert memory.read_line() == 300 + 9

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MainMemory(latency_cycles=0)
