"""Unit tests for the LFSR, SplitMix and the H3 hash family."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.hashing import H3Hash, fold_xor, parity
from repro.common.rng import Lfsr, SplitMix


class TestLfsr:
    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigError):
            Lfsr(seed=0)

    def test_deterministic_for_same_seed(self):
        a = Lfsr(seed=0x1234)
        b = Lfsr(seed=0x1234)
        assert [a.next_bits(8) for _ in range(32)] == [
            b.next_bits(8) for _ in range(32)
        ]

    def test_full_period(self):
        # A maximal-length 16-bit LFSR revisits its seed after 2^16 - 1.
        lfsr = Lfsr(seed=0xACE1)
        seen_seed_again = 0
        for step in range(1, (1 << 16)):
            lfsr.next_bit()
            if lfsr.state == 0xACE1:
                seen_seed_again = step
                break
        assert seen_seed_again == (1 << 16) - 1

    def test_one_in_zero_power_is_always_true(self):
        lfsr = Lfsr()
        assert all(lfsr.one_in(0) for _ in range(10))

    def test_one_in_rate_approximates_probability(self):
        lfsr = Lfsr(seed=0xBEEF)
        trials = 20_000
        hits = sum(1 for _ in range(trials) if lfsr.one_in(3))
        assert abs(hits / trials - 1 / 8) < 0.02

    def test_next_bits_rejects_nonpositive_width(self):
        with pytest.raises(ConfigError):
            Lfsr().next_bits(0)


class TestSplitMix:
    def test_deterministic(self):
        assert [SplitMix(1).next_u64() for _ in range(4)] == [
            SplitMix(1).next_u64() for _ in range(4)
        ]

    def test_random_in_unit_interval(self):
        rng = SplitMix(5)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds_inclusive(self):
        rng = SplitMix(9)
        values = {rng.randint(3, 6) for _ in range(500)}
        assert values == {3, 4, 5, 6}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ConfigError):
            SplitMix().randint(5, 4)

    def test_choice_uniformish(self):
        rng = SplitMix(11)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[rng.choice(["a", "b"])] += 1
        assert abs(counts["a"] - counts["b"]) < 300

    def test_choice_rejects_empty(self):
        with pytest.raises(ConfigError):
            SplitMix().choice([])

    def test_shuffle_is_permutation(self):
        rng = SplitMix(13)
        items = list(range(50))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # vanishingly unlikely to be identity


class TestParityAndFold:
    def test_parity_known_values(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(0b1011) == 1
        assert parity(0b1111) == 0

    @given(value=st.integers(min_value=0, max_value=(1 << 60) - 1))
    def test_parity_matches_bit_count(self, value):
        assert parity(value) == bin(value).count("1") % 2

    def test_fold_xor_width(self):
        for value in range(0, 1 << 12, 37):
            assert 0 <= fold_xor(value, 5) < 32

    def test_fold_xor_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            fold_xor(10, 0)


class TestH3Hash:
    def test_output_width(self):
        h = H3Hash(in_bits=27, out_bits=10)
        for value in range(0, 1 << 16, 97):
            assert 0 <= h(value) < 1024

    def test_deterministic_per_seed(self):
        a = H3Hash(27, 10, seed=3)
        b = H3Hash(27, 10, seed=3)
        assert all(a(v) == b(v) for v in range(200))

    def test_different_seeds_differ(self):
        a = H3Hash(27, 10, seed=3)
        b = H3Hash(27, 10, seed=4)
        assert any(a(v) != b(v) for v in range(200))

    @given(
        x=st.integers(min_value=0, max_value=(1 << 27) - 1),
        y=st.integers(min_value=0, max_value=(1 << 27) - 1),
    )
    def test_h3_is_gf2_linear(self, x, y):
        # The defining property of the H3 family (Ramakrishna et al.):
        # each output bit is a GF(2) inner product, so h(x^y)=h(x)^h(y).
        h = H3Hash(27, 10, seed=0xACE1)
        assert h(x ^ y) == h(x) ^ h(y)

    def test_collision_rate_close_to_ideal(self):
        h = H3Hash(27, 12)
        seen = {}
        collisions = 0
        for value in range(4096):
            signature = h(value)
            collisions += signature in seen
            seen[signature] = value
        # Birthday regime: expect ~ n^2 / 2m collisions; allow slack.
        assert collisions < 4096 * 4096 / (2 * 4096) * 3

    def test_better_distribution_than_fold_xor_on_mirrored_tags(self):
        # Mirrored-byte patterns collapse under XOR folding (the two
        # byte lanes cancel); the H3 family keeps them spread.
        h = H3Hash(20, 8)
        tags = [x | (x << 8) for x in range(256)]
        h3_values = {h(tag) for tag in tags}
        fold_values = {fold_xor(tag, 8) for tag in tags}
        assert len(fold_values) == 1  # total collapse: x ^ x == 0
        assert len(h3_values) > 100

    def test_rejects_bad_widths(self):
        with pytest.raises(ConfigError):
            H3Hash(0, 4)
        with pytest.raises(ConfigError):
            H3Hash(8, 0)

    def test_collision_probability(self):
        assert H3Hash(27, 10).collision_probability() == pytest.approx(
            1 / 1024
        )
