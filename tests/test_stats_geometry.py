"""Unit tests for CacheStats and CacheGeometry."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.stats import CacheStats


class TestCacheStats:
    def test_zero_initialised(self):
        stats = CacheStats()
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0
        assert stats.amat_cycles == 0.0

    def test_rates(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.miss_rate == pytest.approx(0.3)
        assert stats.hit_rate == pytest.approx(0.7)

    def test_bump_accumulates_named_counters(self):
        stats = CacheStats()
        stats.bump("tag_probes")
        stats.bump("tag_probes", 4)
        assert stats.extra["tag_probes"] == 5

    def test_merge_sums_all_fields(self):
        a = CacheStats(accesses=5, hits=3, misses=2, spills=1)
        a.bump("x", 2)
        b = CacheStats(accesses=7, hits=4, misses=3, spills=2)
        b.bump("x", 3)
        a.merge(b)
        assert a.accesses == 12
        assert a.hits == 7
        assert a.misses == 5
        assert a.spills == 3
        assert a.extra["x"] == 5

    def test_as_dict_contains_core_and_extra(self):
        stats = CacheStats(accesses=4, hits=2, misses=2)
        stats.bump("custom", 9)
        table = stats.as_dict()
        assert table["accesses"] == 4
        assert table["miss_rate"] == pytest.approx(0.5)
        assert table["custom"] == 9


class TestCacheGeometry:
    def test_paper_llc(self):
        geometry = CacheGeometry(num_sets=2048, associativity=16)
        assert geometry.capacity_bytes == 2 * 1024 * 1024
        assert geometry.num_lines == 32768
        assert geometry.tag_bits == 27

    def test_from_capacity(self):
        geometry = CacheGeometry.from_capacity(
            capacity_bytes=2 * 1024 * 1024, associativity=16
        )
        assert geometry.num_sets == 2048

    def test_from_capacity_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            CacheGeometry.from_capacity(capacity_bytes=1000, associativity=3)

    def test_with_associativity_preserves_sets(self):
        geometry = CacheGeometry(num_sets=64, associativity=16)
        wider = geometry.with_associativity(32)
        assert wider.num_sets == 64
        assert wider.associativity == 32
        assert wider.mapper.index_bits == geometry.mapper.index_bits

    def test_rejects_nonpositive_associativity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(num_sets=4, associativity=0)

    def test_l1_geometry_of_table1(self):
        geometry = CacheGeometry.from_capacity(
            capacity_bytes=32 * 1024, associativity=2
        )
        assert geometry.num_sets == 256
