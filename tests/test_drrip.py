"""Tests for the DRRIP extension policy."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.policies.drrip import DrripPolicy

from tests.conftest import cyclic_addresses


def drive_uniform_cyclic(working_set, num_sets=64, assoc=4, rounds=300):
    geometry = CacheGeometry(num_sets=num_sets, associativity=assoc)
    cache = SetAssociativeCache(geometry, DrripPolicy(), rng=Lfsr())
    streams = [
        cyclic_addresses(geometry, s, working_set, rounds)
        for s in range(num_sets)
    ]
    interleaved = [a for accesses in zip(*streams) for a in accesses]
    warm = len(interleaved) // 2
    for address in interleaved[:warm]:
        cache.access(address)
    cache.reset_stats()
    for address in interleaved[warm:]:
        cache.access(address)
    return cache


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DrripPolicy(rrpv_bits=0)
        with pytest.raises(ConfigError):
            DrripPolicy(leaders_per_policy=0)

    def test_leader_roles_assigned(self):
        policy = DrripPolicy()
        policy.attach(num_sets=256, associativity=8, rng=Lfsr())
        roles = {policy.role_of(s) for s in range(256)}
        assert roles == {"srrip-leader", "brrip-leader", "follower"}


class TestInsertion:
    def test_srrip_leader_inserts_long(self):
        policy = DrripPolicy()
        policy.attach(num_sets=64, associativity=4, rng=Lfsr())
        leader = next(
            s for s in range(64) if policy.role_of(s) == "srrip-leader"
        )
        policy.on_fill(leader, 0)
        assert policy._rrpv[leader][0] == policy.max_rrpv - 1

    def test_brrip_leader_mostly_inserts_distant(self):
        policy = DrripPolicy()
        policy.attach(num_sets=64, associativity=4, rng=Lfsr())
        leader = next(
            s for s in range(64) if policy.role_of(s) == "brrip-leader"
        )
        distant = 0
        for _ in range(128):
            policy.on_fill(leader, 0)
            distant += policy._rrpv[leader][0] == policy.max_rrpv
        assert distant > 100  # 31/32 of fills are "distant"

    def test_hit_promotes(self):
        policy = DrripPolicy()
        policy.attach(num_sets=4, associativity=2, rng=Lfsr())
        policy.on_fill(0, 1)
        policy.on_hit(0, 1)
        assert policy._rrpv[0][1] == 0


class TestAdaptivity:
    def test_resists_thrash_better_than_plain_srrip_floor(self):
        cache = drive_uniform_cyclic(working_set=8)
        # Pure LRU-like behaviour would thrash at 1.0; the BRRIP side
        # must rescue a substantial fraction of hits.
        assert cache.stats.miss_rate < 0.95

    def test_perfect_on_fitting_working_set(self):
        cache = drive_uniform_cyclic(working_set=4)
        assert cache.stats.miss_rate < 0.05

    def test_psel_trains_on_leaders_only(self):
        policy = DrripPolicy()
        policy.attach(num_sets=64, associativity=4, rng=Lfsr())
        follower = next(
            s for s in range(64) if policy.role_of(s) == "follower"
        )
        before = policy.psel.value
        policy.on_miss(follower)
        assert policy.psel.value == before
