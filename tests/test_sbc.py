"""Tests for the Set Balancing Cache."""

import pytest

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.sim.simulator import run_trace
from repro.spatial.sbc import SbcCache
from repro.workloads.synthetic import figure2_trace

from tests.conftest import cyclic_addresses, random_addresses


def make_sbc(num_sets=8, associativity=4, **kwargs):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    return SbcCache(geometry, **kwargs)


def interleave(*streams):
    return [address for accesses in zip(*streams) for address in accesses]


class TestConstruction:
    def test_needs_two_sets(self):
        with pytest.raises(ConfigError):
            SbcCache(CacheGeometry(num_sets=1, associativity=4))

    def test_default_thresholds(self):
        cache = make_sbc(associativity=4)
        assert cache.saturation_limit == 8
        assert cache.couple_threshold == 4

    def test_rejects_bad_saturation_limit(self):
        with pytest.raises(ConfigError):
            make_sbc(saturation_limit=0)


class TestSaturationTracking:
    def test_misses_raise_saturation(self):
        cache = make_sbc()
        for address in cyclic_addresses(cache.geometry, 0, 12, 8):
            cache.access(address)
        assert cache.saturation_of(0) == 8  # clamped at the limit

    def test_hits_lower_saturation(self):
        cache = make_sbc()
        block = cache.geometry.mapper.compose(1, 0)
        cache.access(block)
        assert cache.saturation_of(0) == 1
        cache.access(block)
        assert cache.saturation_of(0) == 0


class TestCooperation:
    def test_figure2_example1_perfect_balance(self):
        # ws (6, 2) on 2 sets x 4 ways: SBC retains everything.
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        result = run_trace(cache, figure2_trace(1, rounds=2048),
                           warmup_fraction=0.5)
        assert result.miss_rate == 0.0
        assert cache.stats.cooperative_hits > 0

    def test_figure2_example3_no_givers_no_gain(self):
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        result = run_trace(cache, figure2_trace(3, rounds=2048),
                           warmup_fraction=0.5)
        assert result.miss_rate == 1.0

    def test_roles_assigned_on_coupling(self):
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(1, rounds=512).addresses:
            cache.access(address)
        assert cache.role_of(0) == "source"
        assert cache.role_of(1) == "dest"
        cache.check_invariants()

    def test_coop_blocks_carry_cc_bit(self):
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(1, rounds=512).addresses:
            cache.access(address)
        coop = [b for b in cache.resident_blocks(1) if b.cooperative]
        assert len(coop) == 2  # blocks E and F live in set 1
        assert all(b.cc_bit == 1 for b in coop)

    def test_coop_miss_counts_double_probe(self):
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        for address in figure2_trace(2, rounds=1024).addresses:
            cache.access(address)
        assert cache.stats.misses_double_probe > 0

    def test_unconditional_receiving_pollutes(self):
        # The STEM paper's critique (Section 4.6): a destination keeps
        # receiving even as spills displace its own useful blocks.
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = SbcCache(geometry)
        thrash = cyclic_addresses(geometry, 0, 16, 3000)   # saturated
        friendly = cyclic_addresses(geometry, 1, 4, 3000)  # fits exactly
        for address in interleave(thrash, friendly):
            cache.access(address)
        assert cache.stats.spills > 0
        # The friendly set's own blocks get evicted by received spills.
        own = [b for b in cache.resident_blocks(1) if not b.cooperative]
        assert len(own) < 4


class TestInvariantsUnderRandomLoad:
    def test_random_stream_consistency(self):
        cache = make_sbc(num_sets=16, associativity=4)
        for address in random_addresses(cache.geometry, 4000, tag_space=48):
            cache.access(address)
        cache.check_invariants()
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.local_hits + stats.cooperative_hits == stats.hits
        assert (
            stats.misses_single_probe + stats.misses_double_probe
            == stats.misses
        )

    def test_writes_propagate_dirty_to_coop_blocks(self):
        cache = SbcCache(CacheGeometry(num_sets=2, associativity=4))
        trace = figure2_trace(1, rounds=512)
        for address in trace.addresses:
            cache.access(address, is_write=True)
        assert cache.stats.writebacks >= 0  # exercised without error
        coop = [b for b in cache.resident_blocks(1) if b.cooperative]
        assert coop  # cooperative placement happened under writes
