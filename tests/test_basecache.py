"""Unit tests for the conventional set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.access import AccessKind
from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.policies.lru import LruPolicy

from tests.conftest import ReferenceLru, cyclic_addresses, random_addresses


def make_cache(num_sets=16, associativity=4):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    return SetAssociativeCache(geometry, LruPolicy())


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        address = 0x1000
        assert cache.access(address) == AccessKind.MISS
        assert cache.access(address) == AccessKind.LOCAL_HIT

    def test_same_block_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1037) == AccessKind.LOCAL_HIT

    def test_stats_partition(self):
        cache = make_cache()
        for address in random_addresses(cache.geometry, 500):
            cache.access(address)
        stats = cache.stats
        assert stats.accesses == 500
        assert stats.hits + stats.misses == stats.accesses
        assert stats.local_hits == stats.hits
        assert stats.misses_single_probe == stats.misses

    def test_lru_eviction_order_within_set(self):
        cache = make_cache(num_sets=2, associativity=2)
        mapper = cache.geometry.mapper
        a, b, c = (mapper.compose(t, 0) for t in (1, 2, 3))
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert cache.contains(c)
        assert not cache.contains(b)

    def test_working_set_within_assoc_never_misses_after_warmup(self):
        cache = make_cache(num_sets=4, associativity=4)
        stream = cyclic_addresses(cache.geometry, 1, working_set=4, length=200)
        for address in stream[:4]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[4:]:
            cache.access(address)
        assert cache.stats.misses == 0

    def test_cyclic_thrash_under_lru(self):
        # The paper's core LRU pathology: ws > assoc -> 100% misses.
        cache = make_cache(num_sets=4, associativity=4)
        stream = cyclic_addresses(cache.geometry, 2, working_set=6, length=300)
        for address in stream[:60]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[60:]:
            cache.access(address)
        assert cache.stats.miss_rate == 1.0


class TestDirtyAndWritebacks:
    def test_write_marks_dirty_and_evicts_with_writeback(self):
        cache = make_cache(num_sets=2, associativity=1)
        mapper = cache.geometry.mapper
        cache.access(mapper.compose(1, 0), is_write=True)
        cache.access(mapper.compose(2, 0))  # evicts the dirty block
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(num_sets=2, associativity=1)
        mapper = cache.geometry.mapper
        cache.access(mapper.compose(1, 0))
        cache.access(mapper.compose(2, 0))
        assert cache.stats.writebacks == 0

    def test_write_hit_dirties_existing_block(self):
        cache = make_cache(num_sets=2, associativity=1)
        mapper = cache.geometry.mapper
        cache.access(mapper.compose(1, 0))
        cache.access(mapper.compose(1, 0), is_write=True)
        cache.access(mapper.compose(2, 0))
        assert cache.stats.writebacks == 1

    def test_eviction_listener_reports_block_address(self):
        events = []
        geometry = CacheGeometry(num_sets=2, associativity=1)
        cache = SetAssociativeCache(
            geometry,
            LruPolicy(),
            eviction_listener=lambda addr, dirty: events.append((addr, dirty)),
        )
        mapper = geometry.mapper
        victim = mapper.compose(1, 0)
        cache.access(victim, is_write=True)
        cache.access(mapper.compose(2, 0))
        assert events == [(victim, True)]


class TestMaintenance:
    def test_invalidate_resident_block(self):
        cache = make_cache()
        cache.access(0x4000)
        assert cache.invalidate(0x4000)
        assert not cache.contains(0x4000)
        assert cache.access(0x4000) == AccessKind.MISS

    def test_invalidate_missing_block_returns_false(self):
        cache = make_cache()
        assert not cache.invalidate(0x4000)

    def test_invalidated_way_is_reused(self):
        cache = make_cache(num_sets=2, associativity=2)
        mapper = cache.geometry.mapper
        cache.access(mapper.compose(1, 0))
        cache.access(mapper.compose(2, 0))
        cache.invalidate(mapper.compose(1, 0))
        cache.access(mapper.compose(3, 0))  # should use the free way
        assert cache.contains(mapper.compose(2, 0))
        assert cache.contains(mapper.compose(3, 0))
        assert cache.stats.evictions == 0

    def test_set_occupancy_and_views(self):
        cache = make_cache(num_sets=4, associativity=4)
        mapper = cache.geometry.mapper
        for tag in range(3):
            cache.access(mapper.compose(tag, 1), is_write=(tag == 0))
        assert cache.set_occupancy(1) == 3
        views = cache.resident_blocks(1)
        assert [view.tag for view in views] == [0, 1, 2]
        assert views[0].dirty
        assert all(view.cc_bit == 0 for view in views)

    def test_reset_stats(self):
        cache = make_cache()
        cache.access(0x0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestDifferentialAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        tag_space=st.integers(min_value=2, max_value=32),
    )
    def test_matches_naive_lru(self, seed, tag_space):
        geometry = CacheGeometry(num_sets=4, associativity=3)
        cache = SetAssociativeCache(geometry, LruPolicy())
        reference = ReferenceLru(geometry.mapper, 3)
        for address in random_addresses(
            geometry, 400, tag_space=tag_space, seed=seed
        ):
            assert cache.access(address).is_hit == reference.access(address)
        cache.check_invariants()
