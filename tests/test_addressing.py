"""Unit tests for physical-address decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addressing import AddressMapper, is_power_of_two, log2_exact
from repro.common.errors import ConfigError


class TestPowerOfTwoHelpers:
    def test_powers_of_two_accepted(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_rejected(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        assert log2_exact(2048) == 11

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ConfigError, match="power of two"):
            log2_exact(48, what="num_sets")


class TestAddressMapperConstruction:
    def test_paper_geometry_field_widths(self):
        # Table 3: 44-bit addresses, 2048 sets, 64 B lines -> 27-bit tags.
        mapper = AddressMapper(num_sets=2048, line_size=64, address_bits=44)
        assert mapper.offset_bits == 6
        assert mapper.index_bits == 11
        assert mapper.tag_bits == 27

    def test_single_set_mapper(self):
        mapper = AddressMapper(num_sets=1, line_size=64)
        assert mapper.index_bits == 0
        assert mapper.set_index(0xDEADBEEF) == 0

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            AddressMapper(num_sets=100, line_size=64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            AddressMapper(num_sets=4, line_size=48)

    def test_rejects_too_narrow_address(self):
        with pytest.raises(ConfigError, match="address_bits"):
            AddressMapper(num_sets=1024, line_size=64, address_bits=16)


class TestDecomposition:
    def setup_method(self):
        self.mapper = AddressMapper(num_sets=64, line_size=64, address_bits=44)

    def test_offset_does_not_change_block(self):
        base = self.mapper.compose(tag=5, set_index=3)
        for offset in (0, 1, 17, 63):
            assert self.mapper.block_address(base + offset) == (
                self.mapper.block_address(base)
            )

    def test_adjacent_blocks_map_to_adjacent_sets(self):
        # The MOD placement walks sets sequentially (Section 2.1).
        for block in range(130):
            address = block * 64
            assert self.mapper.set_index(address) == block % 64

    def test_split_matches_individual_accessors(self):
        address = self.mapper.compose(tag=0x1234, set_index=21) + 13
        set_index, tag = self.mapper.split(address)
        assert set_index == self.mapper.set_index(address) == 21
        assert tag == self.mapper.tag(address) == 0x1234

    def test_compose_rejects_bad_set(self):
        with pytest.raises(ConfigError):
            self.mapper.compose(tag=1, set_index=64)

    @given(
        tag=st.integers(min_value=0, max_value=(1 << 32) - 1),
        set_index=st.integers(min_value=0, max_value=63),
    )
    def test_compose_split_roundtrip(self, tag, set_index):
        address = self.mapper.compose(tag, set_index)
        assert self.mapper.split(address) == (set_index, tag)

    @given(address=st.integers(min_value=0, max_value=(1 << 44) - 1))
    def test_split_fields_recompose_block(self, address):
        set_index, tag = self.mapper.split(address)
        block_aligned = self.mapper.compose(tag, set_index)
        assert self.mapper.block_address(block_aligned) == (
            self.mapper.block_address(address)
        )
