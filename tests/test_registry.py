"""Tests for the policy registry and top-level package surface."""

import pytest

import repro
from repro.common.errors import ConfigError
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import (
    available_policies,
    make_policy,
    register_policy,
)


class TestPolicyRegistry:
    def test_all_paper_policies_registered(self):
        names = available_policies()
        for policy in ("lru", "lip", "bip", "dip", "pelifo", "srrip",
                       "drrip", "fifo", "random", "nru"):
            assert policy in names

    def test_make_policy_case_insensitive(self):
        assert make_policy("LRU").name == "LRU"
        assert make_policy("PeLiFo").name == "PeLIFO"

    def test_fresh_instances_every_call(self):
        assert make_policy("lru") is not make_policy("lru")

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            make_policy("mru")

    def test_register_custom_policy(self):
        class AlwaysWayZero(ReplacementPolicy):
            name = "WayZero"

            def on_hit(self, set_index, way):
                return None

            def victim(self, set_index):
                return 0

            def on_fill(self, set_index, way):
                return None

        register_policy("wayzero-test", AlwaysWayZero)
        try:
            assert make_policy("wayzero-test").name == "WayZero"
            with pytest.raises(ConfigError, match="already registered"):
                register_policy("wayzero-test", AlwaysWayZero)
        finally:
            from repro.policies import registry
            registry._FACTORIES.pop("wayzero-test", None)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_works(self):
        geometry = repro.CacheGeometry(num_sets=32, associativity=4)
        cache = repro.StemCache(geometry)
        trace = repro.make_benchmark_trace("vpr", num_sets=32, length=4000)
        result = repro.run_trace(cache, trace)
        assert result.mpki >= 0
