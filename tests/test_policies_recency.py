"""Tests for the recency-family policies: LRU, LIP, BIP, FIFO."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import Lfsr
from repro.policies.bip import BipPolicy
from repro.policies.lru import FifoPolicy, LipPolicy, LruPolicy
from repro.workloads.synthetic import bip_cyclic_miss_rate

from tests.conftest import cyclic_addresses


def run_policy_on_cyclic(policy, working_set, associativity, length=2000):
    """Measured steady-state miss rate of one cyclic stream."""
    geometry = CacheGeometry(num_sets=2, associativity=associativity)
    cache = SetAssociativeCache(geometry, policy, rng=Lfsr())
    stream = cyclic_addresses(geometry, 0, working_set, length)
    warm = length // 2
    for address in stream[:warm]:
        cache.access(address)
    cache.reset_stats()
    for address in stream[warm:]:
        cache.access(address)
    return cache.stats.miss_rate


class TestLru:
    def test_recency_order_tracks_hits(self):
        policy = LruPolicy()
        policy.attach(num_sets=1, associativity=3, rng=Lfsr())
        for way in (0, 1, 2):
            policy.on_fill(0, way)
        policy.on_hit(0, 0)
        assert policy.recency_order(0) == (1, 2, 0)
        assert policy.victim(0) == 1

    def test_victim_on_empty_ranking_raises(self):
        policy = LruPolicy()
        policy.attach(1, 4, Lfsr())
        with pytest.raises(SimulationError):
            policy.victim(0)

    def test_invalidate_removes_from_order(self):
        policy = LruPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_invalidate(0, 0)
        assert policy.recency_order(0) == (1,)

    def test_thrash_on_oversized_loop(self):
        assert run_policy_on_cyclic(LruPolicy(), 6, 4) == 1.0

    def test_retains_fitting_loop(self):
        assert run_policy_on_cyclic(LruPolicy(), 4, 4) == 0.0


class TestLip:
    def test_insertion_at_lru_position(self):
        policy = LipPolicy()
        policy.attach(1, 3, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_fill(0, 2)
        # Every fill lands at the LRU end, so the first fill is MRU.
        assert policy.recency_order(0) == (2, 1, 0)

    def test_pins_part_of_oversized_loop(self):
        # LIP retains ways-1 blocks of a cyclic loop: miss rate
        # 1 - (a-1)/ws (Qureshi et al.).
        measured = run_policy_on_cyclic(LipPolicy(), 6, 4)
        assert measured == pytest.approx(1 - 3 / 6, abs=0.05)


class TestBip:
    def test_throttle_validation(self):
        with pytest.raises(ConfigError):
            BipPolicy(throttle_bits=-1)

    def test_cyclic_miss_rate_matches_analytics(self):
        # The Figure 2 oracle: BIP ~ LIP on loops up to the 1/32 dither.
        for working_set, ways in ((6, 4), (8, 4), (20, 16)):
            measured = run_policy_on_cyclic(
                BipPolicy(), working_set, ways, length=6000
            )
            expected = bip_cyclic_miss_rate(working_set, ways)
            assert measured == pytest.approx(expected, abs=0.08)

    def test_fitting_loop_still_perfect(self):
        assert run_policy_on_cyclic(BipPolicy(), 3, 4) == 0.0

    def test_mru_insertions_do_happen(self):
        # With throttle 1/2 the bimodal path must take both branches.
        policy = BipPolicy(throttle_bits=1)
        policy.attach(1, 4, Lfsr())
        positions = set()
        for way in range(4):
            policy.on_fill(0, way)
        for _ in range(64):
            policy.on_fill(0, policy.victim(0))
            positions.add(policy.recency_order(0)[-1])
        assert len(positions) > 1


class TestFifo:
    def test_hits_do_not_promote(self):
        policy = FifoPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_hit(0, 0)
        assert policy.victim(0) == 0  # still first-in

    def test_fifo_thrashes_loops_like_lru(self):
        assert run_policy_on_cyclic(FifoPolicy(), 6, 4) == 1.0
