"""Tests for the simulation layer: factory, runner, sweeps, tables."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.core.stem_cache import StemCache
from repro.sim.config import (
    ExperimentScale,
    available_schemes,
    canonical_scheme_name,
    make_scheme,
)
from repro.sim.results import ResultMatrix, format_series, format_table
from repro.sim.runner import associativity_sweep, run_matrix
from repro.sim.simulator import run_trace
from repro.spatial.sbc import SbcCache
from repro.spatial.vway import VwayCache
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.synthetic import interleaved_cyclic_trace


class TestSchemeFactory:
    def test_all_paper_schemes_buildable(self):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        for name, cls in (
            ("LRU", SetAssociativeCache),
            ("DIP", SetAssociativeCache),
            ("PeLIFO", SetAssociativeCache),
            ("V-Way", VwayCache),
            ("SBC", SbcCache),
            ("STEM", StemCache),
        ):
            cache = make_scheme(name, geometry)
            assert isinstance(cache, cls)
            assert cache.name == canonical_scheme_name(name)

    def test_unknown_scheme_rejected(self):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        with pytest.raises(ConfigError, match="unknown scheme"):
            make_scheme("MRU", geometry)
        with pytest.raises(ConfigError):
            canonical_scheme_name("MRU")

    def test_available_schemes_contains_the_paper_six(self):
        names = available_schemes()
        for scheme in ("LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM"):
            assert scheme in names

    def test_case_insensitive(self):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        assert make_scheme("stem", geometry).name == "STEM"
        assert make_scheme("vway", geometry).name == "V-Way"


class TestExperimentScale:
    def test_paper_scale_matches_table1(self):
        scale = ExperimentScale.paper()
        geometry = scale.geometry()
        assert geometry.capacity_bytes == 2 * 1024 * 1024
        assert geometry.associativity == 16

    def test_geometry_override(self):
        scale = ExperimentScale.smoke()
        assert scale.geometry(associativity=2).associativity == 2

    def test_warmup_validation(self):
        with pytest.raises(ConfigError):
            ExperimentScale(warmup_fraction=1.0)


class TestRunTrace:
    def test_warmup_excluded_from_stats(self):
        trace = interleaved_cyclic_trace((2, 2), rounds=100)
        cache = make_scheme("LRU", CacheGeometry(num_sets=2, associativity=4))
        result = run_trace(cache, trace, warmup_fraction=0.5)
        assert result.measured_accesses == len(trace) // 2
        assert result.stats.misses == 0  # cold misses fell in warm-up

    def test_instructions_prorated(self):
        trace = make_benchmark_trace("vpr", num_sets=32, length=1000)
        cache = make_scheme("LRU", CacheGeometry(num_sets=32, associativity=4))
        result = run_trace(cache, trace, warmup_fraction=0.25)
        assert result.measured_instructions == pytest.approx(
            trace.metadata.instructions * 0.75, rel=0.01
        )

    def test_rejects_empty_trace(self):
        from repro.workloads.trace import Trace, TraceMetadata

        empty = Trace(TraceMetadata(name="e", instructions=1), [])
        cache = make_scheme("LRU", CacheGeometry(num_sets=2, associativity=2))
        with pytest.raises(ConfigError):
            run_trace(cache, empty)

    def test_metrics_populated(self):
        trace = make_benchmark_trace("vpr", num_sets=32, length=2000)
        cache = make_scheme("STEM", CacheGeometry(num_sets=32, associativity=4))
        result = run_trace(cache, trace)
        assert result.mpki >= 0
        assert result.amat >= 14
        assert result.cpi > 0


class TestRunnerAndMatrix:
    def test_run_matrix_covers_grid(self):
        scale = ExperimentScale(num_sets=32, trace_length=3000)
        traces = [
            make_benchmark_trace("vpr", num_sets=32, length=3000),
            make_benchmark_trace("mcf", num_sets=32, length=3000),
        ]
        matrix = run_matrix(traces, ("LRU", "STEM"), scale=scale)
        assert set(matrix.workloads) == {"vpr", "mcf"}
        assert set(matrix.schemes) == {"LRU", "STEM"}
        assert matrix.get("vpr", "LRU").scheme == "LRU"

    def test_matrix_missing_cell_raises(self):
        matrix = ResultMatrix()
        with pytest.raises(ConfigError):
            matrix.get("vpr", "LRU")

    def test_normalized_table_baseline_is_one(self):
        scale = ExperimentScale(num_sets=32, trace_length=3000)
        traces = [make_benchmark_trace("mcf", num_sets=32, length=3000)]
        matrix = run_matrix(traces, ("LRU", "DIP"), scale=scale)
        table = matrix.normalized_table(lambda r: r.mpki)
        assert table["mcf"]["LRU"] == pytest.approx(1.0)
        assert "Geomean" in table

    def test_associativity_sweep_returns_curves(self):
        scale = ExperimentScale(num_sets=32, trace_length=2000)
        trace = make_benchmark_trace("vpr", num_sets=32, length=2000)
        curves = associativity_sweep(
            trace, ("LRU", "STEM"), (2, 4), scale=scale
        )
        assert len(curves["LRU"]) == 2
        assert len(curves["STEM"]) == 2

    def test_lru_sweep_monotone_in_capacity(self):
        # More ways never hurt LRU on a fixed trace.
        scale = ExperimentScale(num_sets=32, trace_length=6000)
        trace = make_benchmark_trace("omnetpp", num_sets=32, length=6000)
        curves = associativity_sweep(trace, ("LRU",), (2, 8, 32), scale=scale)
        mpkis = [r.mpki for r in curves["LRU"]]
        assert mpkis[0] >= mpkis[1] >= mpkis[2]


class TestFormatting:
    def test_format_table_alignment_and_missing(self):
        text = format_table(
            {"row": {"A": 1.0}}, columns=["A", "B"], title="T"
        )
        assert "T" in text
        assert "1.000" in text
        assert "-" in text

    def test_format_series_validates_lengths(self):
        with pytest.raises(ConfigError):
            format_series({"s": [1.0]}, x_values=[1, 2])

    def test_format_series_renders(self):
        text = format_series(
            {"LRU": [1.0, 2.0]}, x_values=[4, 8], x_label="assoc"
        )
        assert "LRU" in text
        assert "assoc" in text
