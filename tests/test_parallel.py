"""Tests for the parallel grid engine, batch fast path, and run cache."""

import pytest

import repro.sim.config as sim_config
from repro.common.errors import ConfigError, SimulationError
from repro.sim.cache import RunCache, result_from_dict, result_to_dict
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.parallel import CellSpec, ParallelRunner, cell_cache_key
from repro.sim.runner import associativity_sweep, run_benchmarks, run_matrix
from repro.sim.simulator import run_trace
from repro.obs.profile import RunProfiler
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=20_000)


def small_trace(name="omnetpp", length=8_000, write_fraction=0.0):
    return make_benchmark_trace(
        name, num_sets=64, length=length, write_fraction=write_fraction
    )


def _poisoned_factory(geometry, seed=0xACE1, tracer=None, **kwargs):
    raise SimulationError(f"poisoned cell (seed {seed})")


def _matrix_fingerprint(matrix):
    """Everything observable about a matrix except wall-clock floats."""
    cells = {}
    for workload in matrix.workloads:
        for scheme in matrix.schemes:
            if matrix.failure_for(workload, scheme) is not None:
                continue
            result = matrix.get(workload, scheme)
            cells[(workload, scheme)] = (
                result.stats.as_dict(),
                result.metrics,
                result.manifest.content_hash if result.manifest else None,
            )
    failures = [
        (f.scheme, f.workload, f.error_type, f.attempts, f.seeds)
        for f in matrix.failures
    ]
    return (matrix.schemes, matrix.workloads, cells, failures)


# ----------------------------------------------------------------------
# Batch fast path == scalar access path, access for access
# ----------------------------------------------------------------------

BATCHED_SCHEMES = [
    "lru", "lip", "bip", "dip", "fifo", "random",
    "nru", "srrip", "drrip", "pelifo", "stem",
]


class TestBatchExactness:
    @pytest.mark.parametrize("scheme", BATCHED_SCHEMES)
    def test_batch_matches_scalar(self, scheme):
        trace = small_trace("omnetpp", 6_000, write_fraction=0.3)
        scalar = make_scheme(scheme, SCALE.geometry(), seed=7)
        batched = make_scheme(scheme, SCALE.geometry(), seed=7)
        batch = getattr(batched, "access_batch", None)
        assert batch is not None, f"{scheme} lost its batch path"

        for address, write in zip(trace.addresses, trace.writes):
            scalar.access(address, bool(write))
        set_indices, tags = trace.precompute_geometry(batched.mapper)
        batch(trace.addresses, set_indices, tags, trace.writes,
              0, len(trace.addresses))

        assert batched.stats.as_dict() == scalar.stats.as_dict()
        if hasattr(scalar, "rng") and hasattr(batched, "rng"):
            assert batched.rng.state == scalar.rng.state

    def test_batch_split_matches_whole(self):
        # Flushing mid-stream (warm-up boundary) must not change counts.
        trace = small_trace("mcf", 5_000)
        whole = make_scheme("stem", SCALE.geometry(), seed=3)
        split = make_scheme("stem", SCALE.geometry(), seed=3)
        set_indices, tags = trace.precompute_geometry(whole.mapper)
        n = len(trace.addresses)
        whole.access_batch(trace.addresses, set_indices, tags,
                           trace.writes, 0, n)
        for start, stop in ((0, n // 3), (n // 3, n // 2), (n // 2, n)):
            split.access_batch(trace.addresses, set_indices, tags,
                               trace.writes, start, stop)
        assert split.stats.as_dict() == whole.stats.as_dict()


# ----------------------------------------------------------------------
# Serial vs parallel equivalence
# ----------------------------------------------------------------------

class TestParallelEquivalence:
    def test_poisoned_grid_identical_across_worker_counts(self, monkeypatch):
        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        monkeypatch.setitem(sim_config._DISPLAY_NAMES, "boom", "BOOM")
        traces = [small_trace("omnetpp", 4_000), small_trace("vpr", 4_000)]
        schemes = ["lru", "boom", "stem"]
        serial = run_matrix(traces, schemes, scale=SCALE, seed=5)
        reference = _matrix_fingerprint(serial)
        assert len(serial.failures) == 2
        for workers in (1, 4):
            parallel = run_matrix(
                traces, schemes, scale=SCALE, seed=5, max_workers=workers
            )
            assert _matrix_fingerprint(parallel) == reference

    def test_sweep_parallel_matches_serial(self):
        trace = small_trace("vpr", 4_000)
        serial = associativity_sweep(
            trace, ["lru", "dip"], [4, 8], scale=SCALE, seed=9
        )
        parallel = associativity_sweep(
            trace, ["lru", "dip"], [4, 8], scale=SCALE, seed=9,
            max_workers=4,
        )
        for scheme in serial:
            serial_hashes = [
                r.manifest.content_hash for r in serial[scheme]
            ]
            parallel_hashes = [
                r.manifest.content_hash for r in parallel[scheme]
            ]
            assert parallel_hashes == serial_hashes
            assert [r.mpki for r in parallel[scheme]] == \
                [r.mpki for r in serial[scheme]]

    def test_profiler_merges_in_canonical_order(self):
        profiler = RunProfiler()
        run_benchmarks(
            ["lru", "stem"], benchmarks=["vpr", "omnetpp"], scale=SCALE,
            profiler=profiler, max_workers=4,
        )
        observed = [(r.trace_name, r.scheme) for r in profiler.records]
        assert observed == [
            ("vpr", "LRU"), ("vpr", "STEM"),
            ("omnetpp", "LRU"), ("omnetpp", "STEM"),
        ]

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigError, match="max_workers"):
            ParallelRunner(max_workers=0)

    def test_metrics_series_identical_across_worker_counts(
        self, monkeypatch
    ):
        """Windowed series survive the pool byte-for-byte; failed
        cells carry no series."""
        import json

        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        monkeypatch.setitem(sim_config._DISPLAY_NAMES, "boom", "BOOM")
        traces = [small_trace("omnetpp", 4_000), small_trace("vpr", 4_000)]
        schemes = ["lru", "boom", "stem"]

        def series_fingerprint(matrix):
            table = {}
            for workload in matrix.workloads:
                for scheme in matrix.schemes:
                    series = matrix.series_for(workload, scheme)
                    table[(workload, scheme)] = (
                        json.dumps(series.as_dict(), sort_keys=True)
                        if series is not None else None
                    )
            return table

        serial = run_matrix(
            traces, schemes, scale=SCALE, seed=5, metrics_window=1_000
        )
        reference = series_fingerprint(serial)
        assert len(serial.failures) == 2
        # Successful cells all carry series; poisoned cells (recorded
        # under their CellSpec label, "boom") carry none.
        for (workload, scheme), value in reference.items():
            if scheme == "boom":
                assert value is None
            else:
                assert value is not None, (workload, scheme)
        parallel = run_matrix(
            traces, schemes, scale=SCALE, seed=5, metrics_window=1_000,
            max_workers=4,
        )
        assert series_fingerprint(parallel) == reference
        assert _matrix_fingerprint(parallel) == \
            _matrix_fingerprint(serial)


# ----------------------------------------------------------------------
# Content-addressed run cache
# ----------------------------------------------------------------------

class TestRunCache:
    def test_result_round_trips_through_json(self):
        trace = small_trace("vpr", 3_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=2)
        result = run_trace(cache, trace)
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.stats == result.stats
        assert rebuilt.metrics == result.metrics
        assert rebuilt.manifest == result.manifest

    def test_second_grid_run_is_all_hits(self, tmp_path):
        run_cache = RunCache(tmp_path / "runs")
        first = run_benchmarks(
            ["lru", "stem"], benchmarks=["vpr"], scale=SCALE,
            run_cache=run_cache,
        )
        assert (run_cache.hits, run_cache.misses) == (0, 2)
        assert len(run_cache) == 2
        second = run_benchmarks(
            ["lru", "stem"], benchmarks=["vpr"], scale=SCALE,
            run_cache=run_cache,
        )
        assert (run_cache.hits, run_cache.misses) == (2, 2)
        assert _matrix_fingerprint(second) == _matrix_fingerprint(first)

    def test_cache_feeds_profiler_counters(self, tmp_path):
        run_cache = RunCache(tmp_path / "runs")
        profiler = RunProfiler()
        run_benchmarks(["lru"], benchmarks=["vpr"], scale=SCALE,
                       run_cache=run_cache, profiler=profiler)
        assert profiler.run_cache_misses == 1
        run_benchmarks(["lru"], benchmarks=["vpr"], scale=SCALE,
                       run_cache=run_cache, profiler=profiler)
        assert profiler.run_cache_hits == 1
        assert "run cache: 1 hit(s), 1 miss(es)" in profiler.render()
        assert profiler.to_bench_json()["run_cache"] == {
            "hits": 1, "misses": 1,
        }

    def test_key_tracks_every_input(self):
        trace = small_trace("vpr", 3_000)
        base = CellSpec(
            index=0, scheme="lru", label="lru", trace=trace,
            geometry=SCALE.geometry(), seed=1,
        )
        key = cell_cache_key(base)
        assert key is not None
        from dataclasses import replace
        assert cell_cache_key(replace(base, seed=2)) != key
        assert cell_cache_key(replace(base, warmup_fraction=0.5)) != key
        assert cell_cache_key(
            replace(base, trace=small_trace("mcf", 3_000))
        ) != key
        # Same inputs, fresh spec object -> same key.
        assert cell_cache_key(replace(base, index=99)) == key

    def test_poisoned_scheme_has_no_key(self, monkeypatch):
        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        spec = CellSpec(
            index=0, scheme="boom", label="boom",
            trace=small_trace("vpr", 2_000),
            geometry=SCALE.geometry(), seed=1,
        )
        assert cell_cache_key(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        run_cache = RunCache(tmp_path / "runs")
        trace = small_trace("vpr", 3_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=2)
        result = run_trace(cache, trace)
        key = "ab" + "0" * 62
        path = run_cache.put(key, result)
        path.write_text("{not json", encoding="utf-8")
        assert run_cache.get(key) is None
        assert run_cache.misses == 1

    def test_failures_are_never_cached(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        monkeypatch.setitem(sim_config._DISPLAY_NAMES, "boom", "BOOM")
        run_cache = RunCache(tmp_path / "runs")
        matrix = run_matrix(
            [small_trace("vpr", 2_000)], ["boom"], scale=SCALE,
            run_cache=run_cache,
        )
        assert len(matrix.failures) == 1
        assert len(run_cache) == 0
