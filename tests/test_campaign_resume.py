"""Kill-anywhere resume: SIGKILL a live campaign, resume, diff bytes.

The campaign runs as a real subprocess (its own ``campaign.jsonl``,
run cache and pool workers) and is SIGKILLed at a randomized cell —
either the parent orchestrator or one of its pool workers.  The
journal's per-record fsync contract means the surviving file is
replayable (at worst a torn final line), and resuming must produce
``matrix.txt``/``summary.json``/``report.html`` byte-identical to a
campaign that was never interrupted.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.sim.campaign import load_journal, replay_journal, run_campaign

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

SPEC = {
    "name": "killable",
    "schemes": ["lru", "stem"],
    "benchmarks": ["mcf", "art", "gobmk"],
    "geometries": [{"sets": 64, "assoc": 8}],
    "trace_length": 8_000,
}

TOTAL_CELLS = 6


def write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    return path


def reference_outputs(tmp_path):
    """The uninterrupted run's artefacts (its own directory and cache)."""
    spec_path = write_spec(tmp_path)
    directory = tmp_path / "reference"
    run_campaign(spec_path, directory=directory, jobs=2)
    return {
        name: (directory / name).read_bytes()
        for name in ("matrix.txt", "summary.json", "report.html")
    }


def launch(spec_path, directory):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(spec_path), "--dir", str(directory), "--jobs", "2"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def count_done(journal_path):
    try:
        text = journal_path.read_text(encoding="utf-8")
    except OSError:
        return 0
    return text.count('"kind": "cell_done"')


def wait_for_done_cells(process, journal_path, minimum, deadline=120.0):
    """Poll until ``minimum`` cells are journaled done (or the run ends)."""
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if count_done(journal_path) >= minimum:
            return True
        if process.poll() is not None:
            return False  # finished before we could interrupt it
        time.sleep(0.02)
    raise AssertionError(
        f"campaign never reached {minimum} done cells within {deadline}s"
    )


def resumed_outputs(spec_path, directory):
    outcome = run_campaign(spec_path, directory=directory, jobs=2)
    assert outcome.ok
    return {
        name: (directory / name).read_bytes()
        for name in ("matrix.txt", "summary.json", "report.html")
    }


class TestParentKill:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_sigkill_parent_then_resume_matches_reference(
        self, tmp_path, seed
    ):
        reference = reference_outputs(tmp_path)
        spec_path = tmp_path / "spec.json"
        directory = tmp_path / f"killed-{seed}"
        journal_path = directory / "campaign.jsonl"
        kill_after = random.Random(seed).randint(1, TOTAL_CELLS - 2)
        process = launch(spec_path, directory)
        try:
            interrupted = wait_for_done_cells(
                process, journal_path, kill_after
            )
            if interrupted:
                process.kill()  # SIGKILL: no handlers, no cleanup
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)
        # Whatever instant the kill landed at, the journal replays —
        # the only tolerated damage is a torn final line.
        records, truncated = load_journal(journal_path)
        assert records, "journal lost its fsynced records"
        state = replay_journal(journal_path)
        assert len(state.completed) <= TOTAL_CELLS
        assert resumed_outputs(spec_path, directory) == reference

    def test_resume_after_kill_serves_completed_cells(self, tmp_path):
        reference = reference_outputs(tmp_path)
        spec_path = tmp_path / "spec.json"
        directory = tmp_path / "killed"
        journal_path = directory / "campaign.jsonl"
        process = launch(spec_path, directory)
        try:
            interrupted = wait_for_done_cells(process, journal_path, 2)
            if interrupted:
                process.kill()
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)
        done_before = len(replay_journal(journal_path).completed)
        outcome = run_campaign(spec_path, directory=directory, jobs=2)
        # Every journaled-done cell was served from the journal + run
        # cache, not re-simulated.
        assert outcome.resumed >= done_before
        assert outcome.executed == TOTAL_CELLS - outcome.resumed
        assert {
            name: (directory / name).read_bytes()
            for name in ("matrix.txt", "summary.json", "report.html")
        } == reference


def pool_worker_pids(parent_pid):
    """Direct children of ``parent_pid`` via /proc (Linux only)."""
    pids = []
    task_dir = Path(f"/proc/{parent_pid}/task")
    try:
        for task in task_dir.iterdir():
            children = (task / "children").read_text().split()
            pids.extend(int(child) for child in children)
    except OSError:
        pass
    return pids


@pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="worker discovery reads /proc",
)
class TestWorkerKill:
    def test_sigkill_worker_then_resume_matches_reference(self, tmp_path):
        reference = reference_outputs(tmp_path)
        spec_path = tmp_path / "spec.json"
        directory = tmp_path / "worker-killed"
        journal_path = directory / "campaign.jsonl"
        process = launch(spec_path, directory)
        try:
            start = time.monotonic()
            workers = []
            while time.monotonic() - start < 120.0:
                workers = pool_worker_pids(process.pid)
                if workers or process.poll() is not None:
                    break
                time.sleep(0.02)
            if workers and process.poll() is None:
                os.kill(workers[0], signal.SIGKILL)
            # A dead pool worker breaks the ProcessPoolExecutor: the
            # parent exits with an error instead of finishing the grid
            # (unless the race let it finish first).
            process.wait(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)
        records, _truncated = load_journal(journal_path)
        assert records, "journal lost its fsynced records"
        assert resumed_outputs(spec_path, directory) == reference
