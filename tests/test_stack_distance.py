"""Tests for stack-distance profiling, cross-checked against real LRU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stack_distance import (
    COLD,
    StackDistanceProfiler,
    distances,
    histogram,
    lru_hits_at,
)
from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy


class TestProfiler:
    def test_first_reference_is_cold(self):
        profiler = StackDistanceProfiler()
        assert profiler.record(1) == COLD

    def test_immediate_rereference_distance_zero(self):
        profiler = StackDistanceProfiler()
        profiler.record(1)
        assert profiler.record(1) == 0

    def test_classic_sequence(self):
        # a b c a -> a's distance is 2 (b and c intervened).
        assert distances(["a", "b", "c", "a"]) == [COLD, COLD, COLD, 2]

    def test_depth_tracks_distinct_blocks(self):
        profiler = StackDistanceProfiler()
        for block in (1, 2, 3, 2):
            profiler.record(block)
        assert profiler.depth == 3

    def test_bounded_depth_reports_lower_bound(self):
        profiler = StackDistanceProfiler(max_depth=2)
        profiler.record(1)
        profiler.record(2)
        profiler.record(3)  # pushes 1 off the stack
        assert profiler.record(1) == 2  # reported as >= max_depth

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigError):
            StackDistanceProfiler(max_depth=0)


class TestHistogram:
    def test_clamp_collapses_tail(self):
        stream = [1, 2, 3, 4, 1]  # distance of final access: 3
        counts = histogram(stream, clamp=2)
        assert counts[COLD] == 4
        assert counts[2] == 1

    def test_lru_hits_at_counts_below_threshold(self):
        counts = {COLD: 5, 0: 3, 1: 2, 4: 7}
        assert lru_hits_at(counts, 2) == 5
        assert lru_hits_at(counts, 5) == 12
        assert lru_hits_at(counts, 0) == 0
        with pytest.raises(ConfigError):
            lru_hits_at(counts, -1)


class TestAgainstRealLru:
    @settings(max_examples=40, deadline=None)
    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=300
        ),
        ways=st.integers(min_value=1, max_value=8),
    )
    def test_hits_match_lru_cache(self, stream, ways):
        # The Mattson property: LRU hits at associativity `a` equal the
        # number of accesses at stack distance < a.
        geometry = CacheGeometry(num_sets=1, associativity=ways)
        cache = SetAssociativeCache(geometry, LruPolicy())
        cache_hits = sum(
            1
            for tag in stream
            if cache.access(geometry.mapper.compose(tag, 0)).is_hit
        )
        counts = histogram(stream, max_depth=64)
        assert lru_hits_at(counts, ways) == cache_hits

    @settings(max_examples=20, deadline=None)
    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=15), min_size=1, max_size=200
        )
    )
    def test_inclusion_property(self, stream):
        # More ways never hurt LRU: hits(a) is monotone in a.
        counts = histogram(stream, max_depth=64)
        hits = [lru_hits_at(counts, a) for a in range(0, 20)]
        assert hits == sorted(hits)
