"""Tests for the PeLIFO fill-stack policy."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.policies.pelifo import PeLifoPolicy

from tests.conftest import cyclic_addresses, random_addresses


class TestConstruction:
    def test_rejects_bad_theta(self):
        with pytest.raises(ConfigError):
            PeLifoPolicy(theta=0.0)
        with pytest.raises(ConfigError):
            PeLifoPolicy(theta=1.0)

    def test_rejects_bad_epoch(self):
        with pytest.raises(ConfigError):
            PeLifoPolicy(epoch_length=0)

    def test_three_leader_groups_present(self):
        policy = PeLifoPolicy()
        policy.attach(num_sets=64, associativity=8, rng=Lfsr())
        roles = {role for role in policy._roles if role != -1}
        assert roles == {0, 1, 2}

    def test_followers_dominate(self):
        policy = PeLifoPolicy()
        policy.attach(num_sets=2048, associativity=16, rng=Lfsr())
        followers = sum(1 for role in policy._roles if role == -1)
        assert followers > 2048 * 0.9


class TestFillStackMechanics:
    def test_fill_goes_to_top(self):
        policy = PeLifoPolicy()
        policy.attach(1, 4, Lfsr())
        for way in range(3):
            policy.on_fill(0, way)
        assert policy._fill_stack[0] == [0, 1, 2]

    def test_hit_does_not_reorder_fill_stack(self):
        policy = PeLifoPolicy()
        policy.attach(1, 4, Lfsr())
        for way in range(3):
            policy.on_fill(0, way)
        policy.on_hit(0, 0)
        assert policy._fill_stack[0] == [0, 1, 2]

    def test_hit_records_depth_histogram(self):
        policy = PeLifoPolicy()
        policy.attach(1, 4, Lfsr())
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_hit(0, 0)  # deepest block: depth 3
        assert policy._depth_hits[3] == 1

    def test_invalidate_removes_from_both_structures(self):
        policy = PeLifoPolicy()
        policy.attach(1, 4, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_invalidate(0, 0)
        assert 0 not in policy._fill_stack[0]
        assert 0 not in policy._recency[0]


class TestAdaptivity:
    def _drive(self, working_set, num_sets=64, assoc=4, rounds=200):
        geometry = CacheGeometry(num_sets=num_sets, associativity=assoc)
        cache = SetAssociativeCache(
            geometry, PeLifoPolicy(epoch_length=512), rng=Lfsr()
        )
        streams = [
            cyclic_addresses(geometry, s, working_set, rounds)
            for s in range(num_sets)
        ]
        interleaved = [a for accesses in zip(*streams) for a in accesses]
        warm = len(interleaved) // 2
        for address in interleaved[:warm]:
            cache.access(address)
        cache.reset_stats()
        for address in interleaved[warm:]:
            cache.access(address)
        return cache

    def test_beats_lru_on_thrash(self):
        cache = self._drive(working_set=8)
        # Pure LRU would thrash at 1.0; LIFO-style pinning must help.
        assert cache.stats.miss_rate < 0.9

    def test_perfect_on_fitting_working_set(self):
        cache = self._drive(working_set=4)
        assert cache.stats.miss_rate < 0.05

    def test_mode_election_runs(self):
        policy = PeLifoPolicy(epoch_length=64)
        policy.attach(num_sets=16, associativity=4, rng=Lfsr())
        geometry = CacheGeometry(num_sets=16, associativity=4)
        cache = SetAssociativeCache(geometry, policy, rng=Lfsr())
        for address in random_addresses(geometry, 2000, tag_space=64):
            cache.access(address)
        assert policy.current_best_mode() in ("LRU", "LIFO", "LEARNED")

    def test_learned_depth_bounded(self):
        policy = PeLifoPolicy()
        policy.attach(1, 8, Lfsr())
        assert 0 <= policy._learned_depth() < 8
        policy._depth_hits = [100, 50, 10, 0, 0, 0, 0, 0]
        assert 0 <= policy._learned_depth() < 8
