"""Universal optimality bound: no scheme beats fully-associative OPT.

Belady's MIN with the cache's *total* capacity and full associativity
lower-bounds the miss count of any replacement/placement scheme over
the same capacity — including the cooperative ones, which merely move
blocks between sets.  This is the strongest cheap oracle available and
it catches a whole class of accounting bugs (e.g. double-counting hits
or losing track of resident blocks).
"""

from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.policies.belady import opt_misses
from repro.sim.config import make_scheme

GEOMETRY = CacheGeometry(num_sets=4, associativity=4)  # 16 lines total

SCHEMES = ("LRU", "LIP", "BIP", "DIP", "FIFO", "NRU", "SRRIP", "DRRIP",
           "Random", "PeLIFO", "V-Way", "SBC", "StaticSBC", "STEM")

access_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # set index
        st.integers(min_value=0, max_value=11),  # tag
    ),
    min_size=1,
    max_size=300,
)


@settings(max_examples=12, deadline=None)
@given(stream=access_streams, scheme=st.sampled_from(SCHEMES))
def test_no_scheme_beats_global_opt(stream, scheme):
    mapper = GEOMETRY.mapper
    addresses = [mapper.compose(tag, s) for s, tag in stream]
    cache = make_scheme(scheme, GEOMETRY)
    misses = sum(0 if cache.access(a).is_hit else 1 for a in addresses)
    blocks = [mapper.block_address(a) for a in addresses]
    lower_bound = opt_misses(blocks, GEOMETRY.num_lines)
    assert misses >= lower_bound


@settings(max_examples=12, deadline=None)
@given(stream=access_streams)
def test_vway_extra_tags_do_not_create_capacity(stream):
    # V-Way has 2x tag entries but the same data capacity: global OPT
    # still bounds it.
    mapper = GEOMETRY.mapper
    addresses = [mapper.compose(tag, s) for s, tag in stream]
    cache = make_scheme("V-Way", GEOMETRY)
    misses = sum(0 if cache.access(a).is_hit else 1 for a in addresses)
    blocks = [mapper.block_address(a) for a in addresses]
    assert misses >= opt_misses(blocks, GEOMETRY.num_lines)
    # And resident lines never exceed the physical data store.
    cache.check_invariants()
