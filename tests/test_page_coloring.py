"""Tests for the ROCS-style page-coloring pollute buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.spatial.page_coloring import PAGE_BLOCKS_BITS, PageColoringCache


def make_rocs(num_sets=32, associativity=4, **kwargs):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    return PageColoringCache(geometry, **kwargs)


def page_address(geometry, page, block_in_page=0):
    block = (page << PAGE_BLOCKS_BITS) | block_in_page
    return block << geometry.mapper.offset_bits


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            make_rocs(pollute_fraction=0.0)
        with pytest.raises(ConfigError):
            make_rocs(epoch_length=0)
        with pytest.raises(ConfigError):
            make_rocs(hot_threshold=0.3, cool_threshold=0.5)

    def test_pollute_region_size(self):
        cache = make_rocs(num_sets=64, pollute_fraction=1 / 16)
        assert cache.pollute_sets == 4


class TestColoring:
    def test_streaming_pages_get_colored(self):
        cache = make_rocs(num_sets=32, epoch_length=2000, min_samples=8)
        geometry = cache.geometry
        # Stream through many distinct blocks of a few pages: all
        # misses, so those pages should be re-colored at epoch end.
        position = 0
        for _ in range(2100):
            cache.access(page_address(geometry, page=position // 64,
                                      block_in_page=position % 64))
            position += 1
        # Multiple full pages were touched miss-only.
        assert cache.recolor_events > 0
        assert cache.colored_pages > 0

    def test_hot_pages_stay_uncolored(self):
        cache = make_rocs(num_sets=32, epoch_length=1000, min_samples=8)
        geometry = cache.geometry
        addresses = [
            page_address(geometry, page=0, block_in_page=i) for i in range(4)
        ]
        for _ in range(300):
            for address in addresses:
                cache.access(address)
        assert not cache.is_colored(0)
        assert cache.colored_pages == 0

    def test_colored_page_maps_into_pollute_region(self):
        cache = make_rocs(num_sets=32, epoch_length=500, min_samples=4)
        geometry = cache.geometry
        # Make page 7 miss persistently (touch 64 distinct blocks).
        for _ in range(10):
            for block in range(64):
                cache.access(page_address(geometry, page=7,
                                          block_in_page=block))
        if cache.is_colored(7):
            block = 7 << PAGE_BLOCKS_BITS
            set_index = cache._set_of(block, 7)
            assert set_index >= cache._pollute_base

    def test_cooled_page_is_uncolored(self):
        cache = make_rocs(num_sets=8, associativity=2, epoch_length=500,
                          min_samples=4, hot_threshold=0.6,
                          cool_threshold=0.3)
        geometry = cache.geometry
        # Phase 1: page 3 loops 64 blocks over 8 tiny sets -> thrash ->
        # colored at an epoch boundary.
        for block in range(1200):
            cache.access(page_address(geometry, page=3,
                                      block_in_page=block % 64))
            if cache.is_colored(3):
                break
        assert cache.is_colored(3)
        # Phase 2: page 3 turns hot on 2 blocks -> high hit rate.
        for _ in range(600):
            cache.access(page_address(geometry, page=3, block_in_page=0))
            cache.access(page_address(geometry, page=3, block_in_page=1))
        assert not cache.is_colored(3)
        assert cache.uncolor_events >= 1


class TestInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),    # page
                st.integers(min_value=0, max_value=63),   # block in page
                st.booleans(),
            ),
            min_size=1,
            max_size=400,
        )
    )
    def test_random_load(self, stream):
        cache = make_rocs(num_sets=8, associativity=2, epoch_length=64,
                          min_samples=4)
        geometry = cache.geometry
        for page, block, is_write in stream:
            cache.access(
                page_address(geometry, page, block), is_write=is_write
            )
        cache.check_invariants()
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
