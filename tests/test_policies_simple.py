"""Tests for Random, NRU and SRRIP."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.policies.simple import NruPolicy, RandomPolicy, SrripPolicy

from tests.conftest import random_addresses


def run_random_stream(policy, num_sets=8, associativity=4, length=600):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    cache = SetAssociativeCache(geometry, policy, rng=Lfsr())
    for address in random_addresses(geometry, length, tag_space=16):
        cache.access(address)
    cache.check_invariants()
    return cache


class TestRandomPolicy:
    def test_victims_cover_all_ways(self):
        policy = RandomPolicy()
        policy.attach(1, 4, Lfsr())
        victims = {policy.victim(0) for _ in range(200)}
        assert victims == {0, 1, 2, 3}

    def test_victims_in_range_for_non_power_of_two(self):
        policy = RandomPolicy()
        policy.attach(1, 3, Lfsr())
        for _ in range(100):
            assert 0 <= policy.victim(0) < 3

    def test_runs_as_cache_policy(self):
        cache = run_random_stream(RandomPolicy())
        assert cache.stats.hits > 0


class TestNruPolicy:
    def test_prefers_unreferenced_way(self):
        policy = NruPolicy()
        policy.attach(1, 4, Lfsr())
        for way in range(4):
            policy.on_fill(0, way)
        # Clear the epoch: everyone referenced -> reset, then touch 0, 2.
        assert policy.victim(0) == 0
        policy.on_hit(0, 0)
        policy.on_hit(0, 2)
        assert policy.victim(0) == 1

    def test_epoch_reset_when_all_referenced(self):
        policy = NruPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        assert policy.victim(0) == 0  # forced reset picks way 0

    def test_invalidate_clears_bit(self):
        policy = NruPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_invalidate(0, 1)
        assert policy.victim(0) == 1

    def test_runs_as_cache_policy(self):
        cache = run_random_stream(NruPolicy())
        assert cache.stats.hits > 0


class TestSrripPolicy:
    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            SrripPolicy(rrpv_bits=0)

    def test_fill_inserts_with_long_rrpv(self):
        policy = SrripPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        assert policy._rrpv[0][0] == policy.max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        policy = SrripPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_hit(0, 0)
        assert policy._rrpv[0][0] == 0

    def test_victim_ages_until_distant_found(self):
        policy = SrripPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_hit(0, 0)
        policy.on_hit(0, 1)
        victim = policy.victim(0)
        assert victim in (0, 1)
        assert policy._rrpv[0][victim] == policy.max_rrpv

    def test_hit_priority_protects_reused_block(self):
        policy = SrripPolicy()
        policy.attach(1, 2, Lfsr())
        policy.on_fill(0, 0)
        policy.on_hit(0, 0)
        policy.on_fill(0, 1)
        assert policy.victim(0) == 1

    def test_runs_as_cache_policy(self):
        cache = run_random_stream(SrripPolicy())
        assert cache.stats.hits > 0
        assert cache.stats.misses > 0
