"""Tests for the classic access-pattern generators."""

import pytest

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.workloads.patterns import (
    hot_cold,
    pointer_chase,
    sequential_scan,
    strided_scan,
    tiled_matrix_traversal,
)


def miss_rate_under_lru(trace, num_sets=16, associativity=4):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    cache = SetAssociativeCache(geometry, LruPolicy())
    for address in trace.addresses:
        cache.access(address)
    return cache.stats.miss_rate


class TestSequentialScan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            sequential_scan(array_bytes=0)

    def test_length(self):
        trace = sequential_scan(array_bytes=1024, passes=2, element_bytes=8)
        assert len(trace) == 2 * 128

    def test_addresses_monotone_within_pass(self):
        trace = sequential_scan(array_bytes=512, element_bytes=8)
        assert trace.addresses == sorted(trace.addresses)

    def test_oversized_scan_thrashes_lru(self):
        # Array >> cache, repeated passes: near-100% line misses.
        trace = sequential_scan(
            array_bytes=64 * 1024, passes=2, element_bytes=64
        )
        assert miss_rate_under_lru(trace) > 0.95

    def test_fitting_scan_hits_on_second_pass(self):
        trace = sequential_scan(
            array_bytes=2 * 1024, passes=4, element_bytes=64
        )
        assert miss_rate_under_lru(trace) < 0.5


class TestStridedScan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            strided_scan(array_bytes=1024, stride_bytes=0)

    def test_stride_concentrates_sets(self):
        # Stride of num_sets*line_size folds everything into one set.
        geometry = CacheGeometry(num_sets=16, associativity=4)
        trace = strided_scan(
            array_bytes=64 * 1024, stride_bytes=16 * 64, passes=2
        )
        sets = {geometry.mapper.set_index(a) for a in trace.addresses}
        assert len(sets) == 1

    def test_conflict_misses_dominate(self):
        trace = strided_scan(
            array_bytes=64 * 1024, stride_bytes=16 * 64, passes=3
        )
        # 64 lines fighting over one 4-way set: full thrash.
        assert miss_rate_under_lru(trace) > 0.95


class TestPointerChase:
    def test_validation(self):
        with pytest.raises(ConfigError):
            pointer_chase(num_nodes=1, hops=10)

    def test_cycle_visits_every_node(self):
        trace = pointer_chase(num_nodes=32, hops=32)
        assert len({a for a in trace.addresses}) == 32

    def test_deterministic_per_seed(self):
        a = pointer_chase(num_nodes=16, hops=40, seed=3)
        b = pointer_chase(num_nodes=16, hops=40, seed=3)
        assert a.addresses == b.addresses

    def test_large_chase_defeats_small_cache(self):
        trace = pointer_chase(num_nodes=4096, hops=8000)
        assert miss_rate_under_lru(trace) > 0.9


class TestTiledMatrix:
    def test_validation(self):
        with pytest.raises(ConfigError):
            tiled_matrix_traversal(0, 8, tile=4)

    def test_tile_reuse_hits(self):
        # A tile that fits the cache is reused sweeps-1 times.
        trace = tiled_matrix_traversal(
            matrix_rows=16, matrix_cols=16, tile=8, sweeps_per_tile=4,
            element_bytes=64,
        )
        rate = miss_rate_under_lru(trace, num_sets=16, associativity=16)
        assert rate < 0.3

    def test_covers_whole_matrix(self):
        trace = tiled_matrix_traversal(
            matrix_rows=8, matrix_cols=8, tile=4, sweeps_per_tile=1,
            element_bytes=64,
        )
        assert len(set(trace.addresses)) == 64


class TestHotCold:
    def test_validation(self):
        with pytest.raises(ConfigError):
            hot_cold(hot_bytes=0, cold_bytes=1024, length=10)
        with pytest.raises(ConfigError):
            hot_cold(hot_bytes=64, cold_bytes=1024, length=10,
                     hot_fraction=1.0)

    def test_hot_region_dominates(self):
        trace = hot_cold(
            hot_bytes=4 * 64, cold_bytes=1024 * 64, length=5000,
            hot_fraction=0.9,
        )
        hot_limit = 4 * 64
        hot_accesses = sum(1 for a in trace.addresses if a < hot_limit)
        assert hot_accesses / len(trace) == pytest.approx(0.9, abs=0.03)

    def test_small_cache_still_serves_hot_set(self):
        trace = hot_cold(
            hot_bytes=8 * 64, cold_bytes=4096 * 64, length=6000,
            hot_fraction=0.9,
        )
        assert miss_rate_under_lru(trace) < 0.35
