"""Tests for the victim-cache extension baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.spatial.victim_cache import VictimCache

from tests.conftest import cyclic_addresses


def make_victim(num_sets=8, associativity=2, buffer_entries=4):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    return VictimCache(geometry, buffer_entries=buffer_entries)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            make_victim(buffer_entries=0)


class TestBufferMechanics:
    def test_victim_lands_in_buffer_and_swaps_back(self):
        cache = make_victim(num_sets=2, associativity=1, buffer_entries=4)
        mapper = cache.geometry.mapper
        a = mapper.compose(1, 0)
        b = mapper.compose(2, 0)
        cache.access(a)            # miss, fill
        cache.access(b)            # evicts a into the buffer
        assert cache.buffer_occupancy == 1
        assert cache.access(a) == AccessKind.COOP_HIT  # buffer rescue
        # After the swap, a is resident again and b was buffered.
        assert cache.access(a) == AccessKind.LOCAL_HIT
        assert cache.access(b) == AccessKind.COOP_HIT

    def test_buffer_capacity_bounded_with_lru_turnover(self):
        cache = make_victim(num_sets=2, associativity=1, buffer_entries=2)
        mapper = cache.geometry.mapper
        for tag in range(10):
            cache.access(mapper.compose(tag, 0))
        assert cache.buffer_occupancy <= 2
        cache.check_invariants()

    def test_dirty_travels_through_buffer(self):
        cache = make_victim(num_sets=2, associativity=1, buffer_entries=1)
        mapper = cache.geometry.mapper
        cache.access(mapper.compose(1, 0), is_write=True)
        cache.access(mapper.compose(2, 0))   # dirty 1 -> buffer
        cache.access(mapper.compose(3, 0))   # dirty 1 falls off buffer
        assert cache.stats.writebacks == 1

    def test_buffer_absorbs_conflict_thrash(self):
        # A loop slightly beyond one set's ways fits set + buffer.
        cache = make_victim(num_sets=4, associativity=2, buffer_entries=8)
        stream = cyclic_addresses(cache.geometry, 0, 6, 1200)
        for address in stream[:600]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[600:]:
            cache.access(address)
        assert cache.stats.miss_rate < 0.05

    def test_buffer_shared_across_sets(self):
        cache = make_victim(num_sets=4, associativity=1, buffer_entries=16)
        streams = [
            cyclic_addresses(cache.geometry, s, 3, 600) for s in range(4)
        ]
        interleaved = [a for group in zip(*streams) for a in group]
        for address in interleaved[:1200]:
            cache.access(address)
        cache.reset_stats()
        for address in interleaved[1200:]:
            cache.access(address)
        # 4 sets x 3 blocks over 4 + 16 lines: fully retained.
        assert cache.stats.miss_rate < 0.05


class TestAccounting:
    def test_misses_count_double_probe(self):
        cache = make_victim()
        cache.access(0x1000)
        assert cache.stats.misses_double_probe == 1

    @settings(max_examples=25, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=15),
                st.booleans(),
            ),
            min_size=1,
            max_size=400,
        )
    )
    def test_invariants_under_random_load(self, stream):
        cache = make_victim(buffer_entries=6)
        mapper = cache.geometry.mapper
        for set_index, tag, is_write in stream:
            cache.access(mapper.compose(tag, set_index), is_write=is_write)
        cache.check_invariants()
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.local_hits + stats.cooperative_hits == stats.hits
