"""Tests for the Figure 1 capacity-demand characterisation."""

import pytest

from repro.analysis.capacity_demand import profile_capacity_demand
from repro.common.errors import ConfigError
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace
from repro.workloads.synthetic import interleaved_cyclic_trace
from repro.workloads.trace import Trace, TraceMetadata

from tests.conftest import cyclic_addresses
from repro.cache.geometry import CacheGeometry


def trace_from_addresses(addresses, name="t"):
    return Trace(
        TraceMetadata(name=name, instructions=max(1, len(addresses))),
        list(addresses),
    )


class TestValidation:
    def test_bad_parameters(self):
        trace = trace_from_addresses([0])
        with pytest.raises(ConfigError):
            profile_capacity_demand(trace, num_sets=4, max_ways=0)
        with pytest.raises(ConfigError):
            profile_capacity_demand(trace, num_sets=4, interval_length=0)


class TestDemandSemantics:
    def test_fitting_loop_demand_equals_working_set(self):
        geometry = CacheGeometry(num_sets=4, associativity=16)
        stream = cyclic_addresses(geometry, 0, working_set=6, length=600)
        profile = profile_capacity_demand(
            trace_from_addresses(stream), num_sets=4, interval_length=600
        )
        assert profile.demands[0][0] == 6

    def test_streaming_set_has_zero_demand(self):
        geometry = CacheGeometry(num_sets=4, associativity=16)
        stream = [geometry.mapper.compose(i, 1) for i in range(500)]
        profile = profile_capacity_demand(
            trace_from_addresses(stream), num_sets=4, interval_length=500
        )
        # No amount of capacity yields a hit: the Figure 1(b) blue band.
        assert profile.demands[0][1] == 0

    def test_idle_set_has_zero_demand(self):
        geometry = CacheGeometry(num_sets=4, associativity=16)
        stream = cyclic_addresses(geometry, 0, working_set=2, length=100)
        profile = profile_capacity_demand(
            trace_from_addresses(stream), num_sets=4, interval_length=100
        )
        assert profile.demands[0][3] == 0

    def test_demand_clamped_at_max_ways(self):
        geometry = CacheGeometry(num_sets=4, associativity=16)
        stream = cyclic_addresses(geometry, 0, working_set=64, length=1000)
        profile = profile_capacity_demand(
            trace_from_addresses(stream),
            num_sets=4,
            max_ways=32,
            interval_length=1000,
        )
        assert profile.demands[0][0] <= 32

    def test_partial_final_interval_counted(self):
        geometry = CacheGeometry(num_sets=4, associativity=16)
        stream = cyclic_addresses(geometry, 0, working_set=3, length=150)
        profile = profile_capacity_demand(
            trace_from_addresses(stream), num_sets=4, interval_length=100
        )
        assert profile.num_intervals == 2


class TestBands:
    def test_band_layout_matches_figure1_legend(self):
        geometry = CacheGeometry(num_sets=2, associativity=4)
        stream = cyclic_addresses(geometry, 0, 2, 50)
        profile = profile_capacity_demand(
            trace_from_addresses(stream), num_sets=2, interval_length=50
        )
        bands = profile.bands()
        assert bands[0] == (0, 0)
        assert bands[1] == (1, 2)
        assert bands[-1] == (31, 32)

    def test_band_distribution_sums_to_one(self):
        trace = interleaved_cyclic_trace((6, 2), rounds=200)
        profile = profile_capacity_demand(
            trace, num_sets=2, interval_length=100
        )
        for interval in range(profile.num_intervals):
            total = sum(profile.band_distribution(interval).values())
            assert total == pytest.approx(1.0)

    def test_mean_distribution_aggregates(self):
        trace = interleaved_cyclic_trace((6, 2), rounds=200)
        profile = profile_capacity_demand(
            trace, num_sets=2, interval_length=100
        )
        assert sum(profile.mean_distribution().values()) == pytest.approx(1.0)


class TestNonUniformWorkload:
    def test_bimodal_demand_detected(self):
        spec = WorkloadSpec(
            name="bimodal",
            groups=(
                SetGroupSpec(fraction=0.5, weight=1.0, kind="cyclic",
                             ws_min=2, ws_max=2),
                SetGroupSpec(fraction=0.5, weight=1.0, kind="cyclic",
                             ws_min=24, ws_max=24),
            ),
        )
        trace = generate_trace(spec, num_sets=16, length=20_000, seed=5)
        profile = profile_capacity_demand(
            trace, num_sets=16, interval_length=10_000
        )
        small = profile.fraction_with_demand_at_most(4)
        assert small == pytest.approx(0.5, abs=0.15)
        assert profile.fraction_with_demand_at_most(32) == 1.0
