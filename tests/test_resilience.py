"""Tests for fault injection, safe-mode degradation, and run isolation."""

import json

import pytest

import repro.sim.config as sim_config
from repro.common.errors import (
    ConfigError,
    InvariantViolation,
    SimulationError,
    WatchdogTimeout,
)
from repro.common.io import atomic_write, atomic_write_text
from repro.common.rng import SplitMix
from repro.core.config import StemConfig
from repro.obs.events import FaultInjected, SafeModeEntry, event_from_dict
from repro.obs.sinks import JsonlSink, load_events, load_events_report
from repro.obs.tracer import Tracer
from repro.resilience.campaign import run_fault_campaign
from repro.resilience.faults import (
    FAULT_TARGETS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectingCache,
)
from repro.resilience.harness import RetryPolicy, guarded_run
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.results import ResultMatrix, RunFailure
from repro.sim.runner import associativity_sweep, run_matrix
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=40_000)


def small_trace(name="omnetpp", length=8_000):
    return make_benchmark_trace(name, num_sets=64, length=length)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse("sc_s:3,association:1@0.5,trace:8@0.25-0.75")
        assert plan.specs == (
            FaultSpec("sc_s", 3),
            FaultSpec("association", 1, start=0.5),
            FaultSpec("trace", 8, start=0.25, stop=0.75),
        )

    def test_describe_round_trips(self):
        text = "sc_s:3,association:1@0.5-1,trace:8@0.25-0.75"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault target"):
            FaultPlan.parse("flux_capacitor:2")

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigError, match="bad fault count"):
            FaultPlan.parse("sc_s:lots")
        with pytest.raises(ConfigError, match="count must be >= 1"):
            FaultPlan.parse("sc_s:0")

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError, match="bad fault window"):
            FaultPlan.parse("sc_s@half")
        with pytest.raises(ConfigError, match="window"):
            FaultPlan.parse("sc_s@0.9-0.1")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigError, match="at least one spec"):
            FaultPlan.parse(" , ")

    def test_schedule_is_deterministic(self):
        plan = FaultPlan.parse("sc_s:4,trace:4@0.5")
        first = plan.schedule(10_000, SplitMix(seed=42))
        second = plan.schedule(10_000, SplitMix(seed=42))
        assert first == second
        assert len(first) == plan.total_faults()

    def test_schedule_respects_window(self):
        plan = FaultPlan.parse("trace:50@0.25-0.75")
        for fault in plan.schedule(1000, SplitMix(seed=1)):
            assert 250 <= fault.index < 750


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_skips_absent_targets_on_plain_lru(self):
        trace = small_trace(length=4_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=3)
        plan = FaultPlan.parse("sc_s:2,heap:1,association:1,trace:2")
        injector = FaultInjector(plan, length=len(trace), seed=3)
        result = run_trace(
            InjectingCache(cache, injector), trace, warmup_fraction=0.0
        )
        assert isinstance(result, RunResult)
        # LRU has no monitors/heap/association: only trace faults apply.
        assert injector.applied == 2
        assert injector.skipped == 4
        assert injector.counts_by_target() == {"trace": 2}

    def test_emits_fault_injected_events(self, tmp_path):
        trace = small_trace(length=4_000)
        path = tmp_path / "faults.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            cache = make_scheme(
                "stem", SCALE.geometry(), seed=3,
                config=StemConfig(safe_mode=True),
            )
            plan = FaultPlan.parse("sc_s:2,association:1")
            injector = FaultInjector(
                plan, length=len(trace), seed=3, tracer=tracer
            )
            run_trace(
                InjectingCache(cache, injector), trace, warmup_fraction=0.0
            )
        events = [e for e in load_events(path) if e.kind == "fault_injected"]
        assert len(events) == 3
        assert {e.target for e in events} == {"sc_s", "association"}

    def test_proxy_delegates_everything_else(self):
        cache = make_scheme("stem", SCALE.geometry(), seed=3)
        plan = FaultPlan.parse("trace:1")
        wrapped = InjectingCache(cache, FaultInjector(plan, 100, seed=3))
        assert wrapped.geometry is cache.geometry
        assert wrapped.stats is cache.stats
        wrapped.check_invariants()


# ----------------------------------------------------------------------
# Safe mode
# ----------------------------------------------------------------------

class TestSafeMode:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_fault_campaign(
            "stem",
            "omnetpp",
            plan="sc_s:2,association:1,trace:2",
            seed=7,
            scale=SCALE,
        )

    def test_faulted_run_completes_and_degrades(self, campaign):
        assert campaign.faults_applied == 5
        assert campaign.safe_mode_entries > 0
        assert campaign.safe_mode_sets > 0

    def test_faulted_mpki_within_10pct_of_lru(self, campaign):
        # The acceptance bar: graceful degradation must never be worse
        # than abandoning STEM entirely (plus 10% slack).
        assert campaign.faulted_mpki <= 1.10 * campaign.lru_mpki

    def test_campaign_is_deterministic(self, campaign):
        again = run_fault_campaign(
            "stem",
            "omnetpp",
            plan="sc_s:2,association:1,trace:2",
            seed=7,
            scale=SCALE,
        )
        assert again == campaign
        assert again.render() == campaign.render()
        assert again.as_dict() == campaign.as_dict()
        assert again.baseline_hash and again.faulted_hash

    def test_safe_mode_entry_counted_in_stats(self, campaign):
        report = campaign.as_dict()
        assert report["safe_mode_entries"] == campaign.safe_mode_entries
        assert "safe_mode_entries" in json.dumps(report)

    def test_safe_mode_events_emitted(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with JsonlSink(path) as sink:
            report = run_fault_campaign(
                "stem",
                "omnetpp",
                plan="sc_s:2,association:1,trace:2",
                seed=7,
                scale=SCALE,
                tracer=Tracer(sink),
            )
        kinds = [e.kind for e in load_events(path)]
        assert kinds.count("safe_mode") == report.safe_mode_entries
        assert "fault_injected" in kinds

    def test_event_dict_round_trip(self):
        for event in (
            FaultInjected(access=5, set_index=3, target="sc_s", detail="bit=1"),
            SafeModeEntry(access=9, set_index=3, reason="sweep"),
        ):
            assert event_from_dict(event.as_dict()) == event

    def test_invariant_violation_is_simulation_error(self):
        cache = make_scheme("lru", SCALE.geometry(), seed=1)
        for address in range(0, 64 * 1024, 64):
            cache.access(address)
        # Corrupt the tag store behind the lookup table's back.
        cache._way_tag[0][0] ^= 0x1
        with pytest.raises(InvariantViolation) as excinfo:
            cache.check_invariants()
        assert isinstance(excinfo.value, SimulationError)


# ----------------------------------------------------------------------
# Crash-tolerant harness
# ----------------------------------------------------------------------

def _poisoned_factory(geometry, seed=0xACE1, tracer=None, **kwargs):
    raise SimulationError(f"poisoned cell (seed {seed})")


class TestGuardedRun:
    def test_retry_policy_seeds(self):
        policy = RetryPolicy(max_attempts=3, reseed_step=10)
        assert policy.seeds(5) == [5, 15, 25]
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_success_passes_through(self):
        trace = small_trace(length=2_000)
        result = guarded_run(
            lambda seed: make_scheme("lru", SCALE.geometry(), seed=seed),
            trace,
            scheme="LRU",
            base_seed=1,
        )
        assert isinstance(result, RunResult)

    def test_retry_with_reseed_recovers(self):
        trace = small_trace(length=2_000)
        seeds_seen = []

        def flaky(seed):
            seeds_seen.append(seed)
            if len(seeds_seen) == 1:
                raise SimulationError("transient")
            return make_scheme("lru", SCALE.geometry(), seed=seed)

        result = guarded_run(
            flaky, trace, scheme="LRU", base_seed=100,
            retry=RetryPolicy(max_attempts=2, reseed_step=7),
        )
        assert isinstance(result, RunResult)
        assert seeds_seen == [100, 107]

    def test_exhausted_retries_return_failure(self):
        trace = small_trace(length=2_000)
        failure = guarded_run(
            lambda seed: _poisoned_factory(None, seed=seed),
            trace,
            scheme="BOOM",
            base_seed=100,
            retry=RetryPolicy(max_attempts=3),
        )
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "SimulationError"
        assert failure.attempts == 3
        assert failure.seeds == (100, 101, 102)
        assert "poisoned" in failure.message

    def test_watchdog_times_out(self):
        trace = small_trace(length=20_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=1)
        with pytest.raises(WatchdogTimeout, match="deadline"):
            run_trace(cache, trace, deadline_seconds=1e-9)

    def test_watchdog_failure_is_recorded_not_raised(self):
        trace = small_trace(length=20_000)
        failure = guarded_run(
            lambda seed: make_scheme("lru", SCALE.geometry(), seed=seed),
            trace,
            scheme="LRU",
            base_seed=1,
            watchdog_seconds=1e-9,
        )
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "WatchdogTimeout"


class TestGridIsolation:
    def test_matrix_survives_poisoned_cell(self, monkeypatch):
        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        monkeypatch.setitem(sim_config._DISPLAY_NAMES, "boom", "BOOM")
        traces = [small_trace("omnetpp", 2_000), small_trace("mcf", 2_000)]
        matrix = run_matrix(traces, ["lru", "boom"], scale=SCALE, seed=5)
        # Healthy cells all completed...
        for trace in traces:
            assert matrix.get(trace.name, "LRU").mpki >= 0.0
        # ...and the poisoned ones left structured failures behind.
        assert len(matrix.failures) == 2
        failure = matrix.failure_for("omnetpp", "boom")
        assert failure is not None
        assert failure.error_type == "SimulationError"
        with pytest.raises(ConfigError, match="SimulationError"):
            matrix.get("omnetpp", "boom")

    def test_isolate_false_propagates(self, monkeypatch):
        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "boom", _poisoned_factory
        )
        with pytest.raises(SimulationError, match="poisoned"):
            run_matrix(
                [small_trace(length=2_000)], ["boom"],
                scale=SCALE, isolate=False,
            )

    def test_sweep_skips_failed_runs(self, monkeypatch):
        calls = {"n": 0}

        def sometimes(geometry, seed=0xACE1, tracer=None, **kwargs):
            calls["n"] += 1
            if geometry.associativity == 8:
                raise SimulationError("bad geometry")
            return sim_config._SCHEME_FACTORIES["lru"](geometry, seed=seed)

        monkeypatch.setitem(
            sim_config._SCHEME_FACTORIES, "flaky", sometimes
        )
        failures = []
        curves = associativity_sweep(
            small_trace(length=2_000), ["flaky"], [4, 8, 16],
            scale=SCALE, failures=failures,
        )
        assert len(curves["flaky"]) == 2
        assert len(failures) == 1
        assert failures[0].scheme == "flaky@8"

    def test_run_failure_as_dict_and_str(self):
        failure = RunFailure(
            workload="w", scheme="s", error_type="KeyError",
            message="boom", attempts=2, seeds=(1, 2),
        )
        record = failure.as_dict()
        assert record["seeds"] == [1, 2]
        assert "failed after 2 attempt(s)" in str(failure)

    def test_matrix_failure_axes_still_render(self):
        matrix = ResultMatrix()
        matrix.add_failure(RunFailure(
            workload="w", scheme="s", error_type="E", message="m",
        ))
        assert matrix.workloads == ["w"]
        assert matrix.schemes == ["s"]
        assert matrix.failed_cells() == [("w", "s")]


# ----------------------------------------------------------------------
# Crash-safe persistence
# ----------------------------------------------------------------------

class TestAtomicWrite:
    def test_atomic_write_text(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        atomic_write_text(path, "replaced\n")
        assert path.read_text() == "replaced\n"

    def test_failed_write_leaves_no_trace(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial garbage")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]

    def test_manifest_save_is_atomic(self, tmp_path):
        trace = small_trace(length=2_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=1)
        result = run_trace(cache, trace, warmup_fraction=0.0)
        path = tmp_path / "manifest.json"
        result.manifest.save(path)
        record = json.loads(path.read_text())
        assert record["content_hash"] == result.manifest.content_hash


class TestTruncatedEventLog:
    def _write_log(self, path, truncate=True):
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            for access in range(4):
                tracer.emit(FaultInjected(
                    access=access, set_index=1, target="sc_s", detail="x",
                ))
        if truncate:
            text = path.read_text()
            path.write_text(text + '{"kind": "fault_inj')

    def test_strict_load_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_log(path)
        with pytest.raises(ConfigError, match="malformed event line"):
            load_events(path)

    def test_tolerant_load_recovers_prefix(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_log(path)
        with pytest.warns(UserWarning, match="skipped unreadable"):
            events = load_events(path, strict=False)
        assert len(events) == 4
        events, skipped = load_events_report(path, strict=False)
        assert skipped == [5]

    def test_mid_file_torn_line_recovered(self, tmp_path):
        """strict=False skips a torn line anywhere, not just at EOF."""
        path = tmp_path / "log.jsonl"
        self._write_log(path, truncate=False)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match="malformed event line"):
            load_events(path)  # strict still refuses corruption
        with pytest.warns(UserWarning, match="skipped unreadable"):
            events = load_events(path, strict=False)
        assert len(events) == 3
        events, skipped = load_events_report(path, strict=False)
        assert skipped == [2]
        assert [e.access for e in events] == [0, 2, 3]

    def test_unknown_kind_recovered_non_strict(self, tmp_path):
        """A newer writer's event kinds are skipped, not fatal."""
        path = tmp_path / "log.jsonl"
        self._write_log(path, truncate=False)
        lines = path.read_text().splitlines()
        lines.insert(2, '{"kind": "from_the_future", "access": 9}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigError):
            load_events(path)
        events, skipped = load_events_report(path, strict=False)
        assert len(events) == 4
        assert skipped == [3]

    def test_intact_log_loads_clean(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_log(path, truncate=False)
        events, skipped = load_events_report(path, strict=False)
        assert len(events) == 4
        assert skipped == []

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            JsonlSink(tmp_path / "x.jsonl", flush_every=-1)


class TestTargetsStayInSync:
    def test_cli_default_plan_covers_every_target(self):
        from repro.cli import _DEFAULT_FAULT_PLAN

        plan = FaultPlan.parse(_DEFAULT_FAULT_PLAN)
        assert {spec.target for spec in plan.specs} == set(FAULT_TARGETS)
