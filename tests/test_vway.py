"""Tests for the V-Way cache."""

import pytest

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.spatial.vway import VwayCache

from tests.conftest import cyclic_addresses, random_addresses


def make_vway(num_sets=8, associativity=4, **kwargs):
    geometry = CacheGeometry(num_sets=num_sets, associativity=associativity)
    return VwayCache(geometry, **kwargs)


def interleave(*streams):
    return [address for accesses in zip(*streams) for address in accesses]


class TestConstruction:
    def test_tag_ratio_validation(self):
        with pytest.raises(ConfigError):
            make_vway(tag_ratio=1)

    def test_reuse_bits_validation(self):
        with pytest.raises(ConfigError):
            make_vway(reuse_bits=0)

    def test_tag_entries_doubled(self):
        cache = make_vway(num_sets=8, associativity=4)
        assert cache.entries_per_set == 8


class TestDemandBasedAssociativity:
    def test_hot_set_grows_beyond_nominal_associativity(self):
        # The defining V-Way behaviour: a set can own more data lines
        # than its nominal ways when others underuse theirs.
        geometry = CacheGeometry(num_sets=4, associativity=4)
        cache = VwayCache(geometry)
        hot = cyclic_addresses(geometry, 0, 7, 2100)  # ws 7 > 4 ways
        cold = cyclic_addresses(geometry, 1, 2, 2100)
        for address in interleave(hot, cold):
            cache.access(address)
        assert cache.lines_owned_by(0) == 7
        cache.check_invariants()

    def test_retained_loop_stops_missing(self):
        geometry = CacheGeometry(num_sets=4, associativity=4)
        cache = VwayCache(geometry)
        hot = cyclic_addresses(geometry, 0, 7, 4000)
        cold = cyclic_addresses(geometry, 1, 2, 4000)
        stream = interleave(hot, cold)
        for address in stream[: len(stream) // 2]:
            cache.access(address)
        cache.reset_stats()
        for address in stream[len(stream) // 2:]:
            cache.access(address)
        assert cache.stats.miss_rate < 0.05

    def test_tag_limit_bounds_growth(self):
        # A working set beyond 2x the associativity cannot be retained.
        geometry = CacheGeometry(num_sets=4, associativity=4)
        cache = VwayCache(geometry)
        for address in cyclic_addresses(geometry, 0, 20, 4000):
            cache.access(address)
        assert cache.lines_owned_by(0) <= 8


class TestReuseReplacement:
    def test_reuse_counter_saturates(self):
        cache = make_vway()
        address = 0x4000
        cache.access(address)
        for _ in range(10):
            cache.access(address)
        entry = cache._tag_to_entry[cache.mapper.set_index(address)][
            cache.mapper.tag(address)
        ]
        line = cache._entry_line[entry]
        assert cache._line_reuse[line] == cache.max_reuse

    def test_global_replacement_prefers_unreused_lines(self):
        geometry = CacheGeometry(num_sets=2, associativity=2)
        cache = VwayCache(geometry)
        # Fill the four global lines: two reused, two untouched.
        hot = [geometry.mapper.compose(t, 0) for t in (1, 2)]
        cold = [geometry.mapper.compose(t, 1) for t in (3, 4)]
        for address in hot + cold:
            cache.access(address)
        for address in hot * 3:
            cache.access(address)
        # A new allocation in set 1 must claim a cold line, not a hot one.
        cache.access(geometry.mapper.compose(9, 1))
        for address in hot:
            assert cache.access(address) == AccessKind.LOCAL_HIT

    def test_dirty_global_victim_writes_back(self):
        geometry = CacheGeometry(num_sets=2, associativity=1)
        cache = VwayCache(geometry)
        cache.access(geometry.mapper.compose(1, 0), is_write=True)
        cache.access(geometry.mapper.compose(2, 1))
        # Force a global replacement by exhausting the free lines and
        # both tag sets' spare entries.
        for tag in (3, 4, 5):
            cache.access(geometry.mapper.compose(tag, 0))
        assert cache.stats.writebacks >= 1


class TestAccounting:
    def test_stats_partition(self):
        cache = make_vway(num_sets=16, associativity=4)
        for address in random_addresses(cache.geometry, 3000, tag_space=64):
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.misses_single_probe == stats.misses
        assert stats.cooperative_hits == 0
        cache.check_invariants()

    def test_resident_block_views(self):
        cache = make_vway(num_sets=4, associativity=2)
        cache.access(cache.geometry.mapper.compose(5, 2), is_write=True)
        views = cache.resident_blocks(2)
        assert len(views) == 1
        assert views[0].tag == 5
        assert views[0].dirty

    def test_reset_stats(self):
        cache = make_vway()
        cache.access(0x0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
