"""Tests for Belady's OPT oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.belady import OptSimulator, opt_miss_curve, opt_misses
from repro.policies.lru import LruPolicy

from tests.conftest import random_addresses


class TestOptMisses:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            opt_misses([1, 2, 3], 0)

    def test_cold_misses_only_when_everything_fits(self):
        stream = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        assert opt_misses(stream, 3) == 3

    def test_textbook_example(self):
        # Classic OPT illustration: 3 frames.
        stream = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        assert opt_misses(stream, 3) == 9

    def test_cyclic_loop_opt_rate_bounds(self):
        # OPT on a cyclic loop of w blocks with capacity c beats LIP's
        # pinned rate of (w-c+1)/w but cannot go below (w-c)/w.
        w, c, cycles = 6, 4, 50
        stream = list(range(w)) * cycles
        misses = opt_misses(stream, c)
        steady_rate = (misses - w) / (len(stream) - w)
        assert (w - c) / w <= steady_rate < (w - c + 1) / w

    def test_monotone_in_capacity(self):
        stream = [i % 17 for i in range(0, 300, 3)]
        curve = opt_miss_curve(stream, range(1, 10))
        values = [curve[c] for c in range(1, 10)]
        assert values == sorted(values, reverse=True)

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=12), min_size=1, max_size=200
        ),
        capacity=st.integers(min_value=1, max_value=6),
    )
    def test_opt_never_worse_than_lru(self, stream, capacity):
        # The defining property of Belady's algorithm (Section 2.2).
        geometry = CacheGeometry(num_sets=1, associativity=capacity)
        cache = SetAssociativeCache(geometry, LruPolicy())
        lru_misses = 0
        for tag in stream:
            if not cache.access(geometry.mapper.compose(tag, 0)).is_hit:
                lru_misses += 1
        assert opt_misses(stream, capacity) <= lru_misses

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=100
        )
    )
    def test_distinct_blocks_lower_bound(self, stream):
        # Demand-fetch OPT misses every block's first reference, so the
        # distinct-block count bounds it below at any capacity and is
        # reached exactly once capacity stops mattering.
        assert opt_misses(stream, 4) >= len(set(stream))
        assert opt_misses(stream, 1000) == len(set(stream))


class TestOptSimulator:
    def test_rejects_bad_associativity(self):
        geometry = CacheGeometry(num_sets=4, associativity=2)
        with pytest.raises(ConfigError):
            OptSimulator(geometry.mapper, 0)

    def test_whole_trace_never_worse_than_lru(self):
        geometry = CacheGeometry(num_sets=4, associativity=2)
        addresses = random_addresses(geometry, 500, tag_space=10)
        cache = SetAssociativeCache(geometry, LruPolicy())
        lru_misses = sum(
            0 if cache.access(a).is_hit else 1 for a in addresses
        )
        oracle = OptSimulator(geometry.mapper, 2)
        assert oracle.misses(addresses) <= lru_misses
