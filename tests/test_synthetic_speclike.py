"""Tests for the Figure 2 synthetics and the SPEC-like benchmark models."""

import pytest

from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.workloads.mixes import concatenate_traces, phased_trace
from repro.workloads.spec_like import (
    BENCHMARKS,
    benchmark_names,
    make_benchmark_trace,
)
from repro.workloads.synthetic import (
    FIGURE2_WORKING_SETS,
    bip_cyclic_miss_rate,
    figure2_expected_miss_rates,
    figure2_trace,
    interleaved_cyclic_trace,
    lru_cyclic_miss_rate,
)


class TestInterleavedCyclic:
    def test_strict_alternation(self):
        trace = interleaved_cyclic_trace((6, 2), rounds=4)
        mapper = AddressMapper(num_sets=2, line_size=64)
        sets = [mapper.set_index(a) for a in trace.addresses]
        assert sets == [0, 1] * 4

    def test_reference_stream_matches_paper_example1(self):
        # A -> a -> B -> b -> C -> a -> D -> b ...
        trace = interleaved_cyclic_trace((6, 2), rounds=4)
        mapper = AddressMapper(num_sets=2, line_size=64)
        tags = [mapper.tag(a) for a in trace.addresses]
        assert tags == [0, 0, 1, 1, 2, 0, 3, 1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            interleaved_cyclic_trace((1, 2, 3), rounds=5, num_sets=2)
        with pytest.raises(ConfigError):
            interleaved_cyclic_trace((1,), rounds=0)

    def test_figure2_trace_names_and_sizes(self):
        for example, sizes in FIGURE2_WORKING_SETS.items():
            trace = figure2_trace(example, rounds=8)
            assert len(trace) == 8 * len(sizes)
        with pytest.raises(ConfigError):
            figure2_trace(4)


class TestAnalyticMissRates:
    def test_lru_oracle(self):
        assert lru_cyclic_miss_rate(6, 4) == 1.0
        assert lru_cyclic_miss_rate(4, 4) == 0.0
        with pytest.raises(ConfigError):
            lru_cyclic_miss_rate(0, 4)

    def test_bip_oracle(self):
        assert bip_cyclic_miss_rate(6, 4) == pytest.approx(0.5)
        assert bip_cyclic_miss_rate(5, 4) == pytest.approx(0.4)
        assert bip_cyclic_miss_rate(3, 4) == 0.0

    def test_paper_table_values(self):
        ex1 = figure2_expected_miss_rates(1)
        assert ex1 == {
            "LRU": 0.5, "DIP": 0.25, "SBC": 0.0,
        }
        ex2 = figure2_expected_miss_rates(2)
        assert ex2["LRU"] == 0.5
        assert ex2["DIP"] == pytest.approx(0.25)
        assert ex2["SBC"] == pytest.approx(1 / 3)
        ex3 = figure2_expected_miss_rates(3)
        assert ex3["LRU"] == 1.0
        assert ex3["DIP"] == pytest.approx(1 / 4 + 1 / 5)
        assert ex3["SBC"] == 1.0


class TestBenchmarkRegistry:
    def test_fifteen_benchmarks_in_paper_order(self):
        names = benchmark_names()
        assert len(names) == 15
        assert names[0] == "ammp"
        assert names[-1] == "vpr"

    def test_five_per_class(self):
        for spec_class in ("I", "II", "III"):
            assert len(benchmark_names(spec_class)) == 5

    def test_every_benchmark_has_valid_workload(self):
        for name in benchmark_names():
            workload = BENCHMARKS[name].workload()
            assert workload.spec_class in ("I", "II", "III")
            assert abs(sum(g.fraction for g in workload.groups) - 1.0) < 1e-6

    def test_make_trace_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            make_benchmark_trace("firefox")

    def test_trace_generation_smoke(self):
        trace = make_benchmark_trace("ammp", num_sets=32, length=2000)
        assert len(trace) == 2000
        assert trace.metadata.spec_class == "I"

    def test_seed_offset_varies_trace(self):
        a = make_benchmark_trace("vpr", num_sets=32, length=500)
        b = make_benchmark_trace("vpr", num_sets=32, length=500,
                                 seed_offset=1)
        assert a.addresses != b.addresses

    def test_table2_mpki_targets_recorded(self):
        assert BENCHMARKS["mcf"].paper_mpki_lru == pytest.approx(59.993)
        assert BENCHMARKS["gromacs"].paper_mpki_lru == pytest.approx(1.099)


class TestMixes:
    def test_concatenate_sums_lengths_and_instructions(self):
        a = make_benchmark_trace("vpr", num_sets=32, length=300)
        b = make_benchmark_trace("mcf", num_sets=32, length=200)
        joined = concatenate_traces([a, b], name="vpr+mcf")
        assert len(joined) == 500
        assert joined.metadata.instructions == (
            a.metadata.instructions + b.metadata.instructions
        )

    def test_concatenate_requires_matching_geometry(self):
        a = make_benchmark_trace("vpr", num_sets=32, length=100)
        bad = make_benchmark_trace("vpr", num_sets=32, length=100)
        object.__setattr__(bad.metadata, "line_size", 128)
        with pytest.raises(Exception):
            concatenate_traces([a, bad])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ConfigError):
            concatenate_traces([])

    def test_phased_trace_changes_behaviour_between_phases(self):
        phases = [
            BENCHMARKS["vpr"].workload(),
            BENCHMARKS["mcf"].workload(),
        ]
        trace = phased_trace(phases, phase_length=400, num_sets=32)
        assert len(trace) == 800
        mapper = AddressMapper(num_sets=32, line_size=64)
        first = {mapper.split(a) for a in trace.addresses[:400]}
        second = {mapper.split(a) for a in trace.addresses[400:]}
        assert first != second

    def test_phased_trace_validation(self):
        with pytest.raises(ConfigError):
            phased_trace([BENCHMARKS["vpr"].workload()], 0, num_sets=32)
