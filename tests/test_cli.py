"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "STEM", "firefox"])

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "STEM" in output
        assert "omnetpp" in output
        assert "figure7" in output

    def test_run(self, capsys):
        code = main([
            "run", "STEM", "vpr", "--sets", "32", "--length", "8000"
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "MPKI=" in output
        assert "STEM on vpr" in output

    def test_compare(self, capsys):
        code = main([
            "compare", "vpr", "--schemes", "LRU,STEM",
            "--sets", "32", "--length", "8000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "LRU" in output
        assert "STEM" in output

    def test_sweep(self, capsys):
        code = main([
            "sweep", "vpr", "--schemes", "LRU",
            "--associativities", "2,4",
            "--sets", "32", "--length", "6000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "MPKI vs associativity" in output

    def test_profile(self, capsys):
        code = main([
            "profile", "ammp", "--sets", "32", "--length", "12000"
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "classification" in output

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "3.1" in capsys.readouterr().out.replace("3.16", "3.1")

    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure_figure2(self, capsys):
        assert main(["figure", "figure2"]) == 0
        assert "Figure 2" in capsys.readouterr().out
