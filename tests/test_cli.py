"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "STEM", "firefox"])

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "STEM" in output
        assert "omnetpp" in output
        assert "figure7" in output

    def test_run(self, capsys):
        code = main([
            "run", "STEM", "vpr", "--sets", "32", "--length", "8000"
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "MPKI=" in output
        assert "STEM on vpr" in output

    def test_compare(self, capsys):
        code = main([
            "compare", "vpr", "--schemes", "LRU,STEM",
            "--sets", "32", "--length", "8000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "LRU" in output
        assert "STEM" in output

    def test_sweep(self, capsys):
        code = main([
            "sweep", "vpr", "--schemes", "LRU",
            "--associativities", "2,4",
            "--sets", "32", "--length", "6000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "MPKI vs associativity" in output

    def test_profile(self, capsys):
        code = main([
            "profile", "ammp", "--sets", "32", "--length", "12000"
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "classification" in output

    def test_bench(self, capsys, tmp_path):
        cache_dir = tmp_path / "runs"
        argv = [
            "bench", "--schemes", "lru,stem", "--benchmarks", "vpr",
            "--jobs", "2", "--sets", "32", "--length", "8000",
            "--run-cache", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "MPKI" in first
        assert "0 hit(s), 2 miss(es)" in first
        # Second invocation serves both cells from the run cache.
        assert main(argv) == 0
        assert "2 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_bench_no_run_cache(self, capsys):
        code = main([
            "bench", "--schemes", "lru", "--benchmarks", "vpr",
            "--sets", "32", "--length", "6000", "--no-run-cache",
        ])
        assert code == 0
        assert "run cache" not in capsys.readouterr().out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "3.1" in capsys.readouterr().out.replace("3.16", "3.1")

    def test_trace(self, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        code = main([
            "trace", "STEM", "omnetpp", "--sets", "64",
            "--length", "20000", "--events", str(events_path),
            "--manifest",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "events emitted" in output
        assert "content_hash" in output
        # The JSONL log is parseable and carries several event kinds.
        from repro.obs import load_events

        events = load_events(events_path)
        assert events
        assert len({event.kind for event in events}) >= 3

    def test_trace_buffer_bound(self, capsys):
        code = main([
            "trace", "STEM", "vpr", "--sets", "32",
            "--length", "8000", "--buffer", "100",
        ])
        assert code == 0
        assert "events emitted" in capsys.readouterr().out

    def test_run_profile(self, capsys, tmp_path):
        report = tmp_path / "bench.json"
        code = main([
            "run", "STEM", "vpr", "--sets", "32", "--length", "8000",
            "--profile", "--profile-json", str(report),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "acc/sec" in output
        assert "wall-clock" in output
        import json

        document = json.loads(report.read_text())
        assert document["benchmarks"][0]["group"] == "STEM"

    def test_compare_profile(self, capsys):
        code = main([
            "compare", "vpr", "--schemes", "LRU,STEM",
            "--sets", "32", "--length", "8000", "--profile",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "acc/sec" in output

    def test_run_window_and_save(self, capsys, tmp_path):
        run_path = tmp_path / "run.json"
        series_path = tmp_path / "series.jsonl"
        prom_path = tmp_path / "metrics.prom"
        code = main([
            "run", "stem", "vpr", "--sets", "32", "--length", "8000",
            "--window", "2000", "--save-run", str(run_path),
            "--series-jsonl", str(series_path),
            "--series-prom", str(prom_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "windows of 2000 accesses" in output
        from repro.sim.cache import load_run

        loaded = load_run(run_path)
        assert loaded.series is not None
        assert loaded.series.window_length == 2000
        assert series_path.read_text().startswith('{"kind": "header"')
        assert "# TYPE repro_misses counter" in prom_path.read_text()

    def test_diff_in_process_schemes(self, capsys):
        code = main([
            "diff", "lru", "stem", "--benchmark", "vpr",
            "--sets", "32", "--length", "8000", "--window", "2000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "run diff: A = LRU on vpr" in output
        assert "windowed series" in output
        assert "diverging sets" in output

    def test_diff_saved_run_files(self, capsys, tmp_path):
        a_path, b_path = tmp_path / "a.json", tmp_path / "b.json"
        for scheme, path in (("lru", a_path), ("stem", b_path)):
            assert main([
                "run", scheme, "vpr", "--sets", "32",
                "--length", "8000", "--window", "2000",
                "--save-run", str(path),
            ]) == 0
        capsys.readouterr()
        json_path = tmp_path / "diff.json"
        out_path = tmp_path / "diff.txt"
        code = main([
            "diff", str(a_path), str(b_path),
            "--json", str(json_path), "--out", str(out_path),
        ])
        assert code == 0
        report = out_path.read_text()
        assert "run diff: A = LRU on vpr" in report
        import json

        payload = json.loads(json_path.read_text())
        assert payload["label_b"] == "STEM on vpr"
        # Byte stability across invocations is part of the contract.
        assert main([
            "diff", str(a_path), str(b_path), "--out", str(out_path),
        ]) == 0
        assert out_path.read_text() == report

    def test_report_legacy_text_unchanged(self, capsys):
        code = main(["report", "vpr", "--sets", "32",
                     "--length", "8000"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_report_html_out(self, capsys, tmp_path):
        page = tmp_path / "report.html"
        argv = [
            "report", "vpr", "--scheme", "stem", "--vs", "lru",
            "--sets", "32", "--length", "8000", "--window", "2000",
            "--out", str(page),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        html = page.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http" not in html.lower()
        assert "<svg" in html
        # Second invocation writes identical bytes.
        assert main(argv) == 0
        assert page.read_text() == html

    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure_figure2(self, capsys):
        assert main(["figure", "figure2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figure_profile(self, capsys):
        assert main(["figure", "table3", "--profile"]) == 0
        assert "wall-clock" in capsys.readouterr().out


class TestExitCodes:
    """The CLI contract: --version, and errors as codes, not tracebacks."""

    def test_version_flag(self, capsys):
        from repro._version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_library_error_exits_2_without_traceback(self, tmp_path, capsys):
        # A corrupt saved-run file raises ConfigError inside the handler;
        # main() must convert it to one stderr line and exit code 2.
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(["diff", str(bad), str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert "repro: error:" in captured.err
        assert "Traceback" not in captured.err

    def test_bench_telemetry_hint(self, tmp_path, capsys):
        run_dir = tmp_path / "fleet"
        code = main([
            "bench", "--schemes", "LRU", "--benchmarks", "vpr",
            "--sets", "32", "--length", "6000", "--no-run-cache",
            "--telemetry", str(run_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"repro top {run_dir}" in out
        assert (run_dir / "grid.jsonl").is_file()
        assert (run_dir / "status.json").is_file()
