"""Tests for the live fleet-telemetry channel (DESIGN.md §11).

Covers the write side (spans, heartbeats, resource samples, atexit
flushes), the read side (merging, states, ETA, stall verdicts,
status.json), the ``repro top`` CLI, and the two acceptance
invariants: results are byte-identical with telemetry on or off and
serial vs parallel, and a stalled worker is reported *before* its
watchdog deadline fires.
"""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.common.errors import SimulationError
from repro.obs.fleet import (
    CellFleetStatus,
    FleetStatus,
    load_fleet,
    render_top,
    write_status,
)
from repro.obs.telemetry import (
    CELLS_DIR,
    CellTelemetry,
    GridTelemetry,
    TelemetrySpec,
    cell_span_id,
    cell_status_path,
    read_status_lines,
    resource_sample,
)
from repro.resilience.harness import RetryPolicy, guarded_run
from repro.sim.cache import RunCache
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.results import RunFailure
from repro.sim.runner import run_matrix
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import make_benchmark_trace

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=8_000)


def small_trace(name="omnetpp", length=8_000):
    return make_benchmark_trace(name, num_sets=64, length=length)


def eager_spec(run_dir):
    """A spec whose beat throttle never suppresses a heartbeat."""
    return TelemetrySpec(
        run_dir=str(run_dir), grid_span="grid-test", heartbeat_seconds=0.0
    )


def _matrix_fingerprint(matrix):
    """Everything observable about a matrix except wall-clock floats."""
    cells = {}
    for workload in matrix.workloads:
        for scheme in matrix.schemes:
            if matrix.failure_for(workload, scheme) is not None:
                continue
            result = matrix.get(workload, scheme)
            cells[(workload, scheme)] = (
                result.stats.as_dict(),
                result.metrics,
                result.manifest.content_hash if result.manifest else None,
            )
    return (matrix.schemes, matrix.workloads, cells)


# ----------------------------------------------------------------------
# Span ids and channel layout
# ----------------------------------------------------------------------

class TestSpans:
    def test_cell_span_id_is_deterministic(self):
        assert cell_span_id("grid-abc", 7) == "grid-abc/cell-00007"
        assert cell_span_id("grid-abc", 7) == cell_span_id("grid-abc", 7)

    def test_cell_status_path_layout(self, tmp_path):
        path = cell_status_path(tmp_path, 3)
        assert path == tmp_path / CELLS_DIR / "cell-00003.jsonl"

    def test_grid_spans_are_unique(self, tmp_path):
        with GridTelemetry(tmp_path / "a") as a, \
                GridTelemetry(tmp_path / "b") as b:
            assert a.grid_span != b.grid_span

    def test_worker_derives_parent_planned_span(self, tmp_path):
        # The parent plans the span; the worker reconstructs the same id
        # from the picklable spec alone — no handshake crosses processes.
        with GridTelemetry(tmp_path) as grid:
            grid.cell_plan(index=4, label="lru", workload="mcf",
                           total_accesses=100)
            worker_side = CellTelemetry(grid.spec, 4, "lru", "mcf")
            assert worker_side.span_id == cell_span_id(grid.grid_span, 4)
            worker_side.close()
        records, _ = read_status_lines(tmp_path / "grid.jsonl")
        plan = [r for r in records if r["kind"] == "cell_plan"][0]
        assert plan["span_id"] == cell_span_id(grid.grid_span, 4)


class TestResourceSample:
    def test_sample_fields(self):
        sample = resource_sample()
        assert sample["cpu_seconds"] >= 0
        assert sample["gc_collections"] >= 0
        # RSS may be None on exotic platforms but is an int on Linux.
        if sample["rss_kb"] is not None:
            assert sample["rss_kb"] > 0


# ----------------------------------------------------------------------
# Write side: CellTelemetry record stream
# ----------------------------------------------------------------------

class TestCellTelemetry:
    def test_lifecycle_records(self, tmp_path):
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", "mcf")
        telemetry.cell_start(total_accesses=1000, seed=17,
                             watchdog_seconds=30.0, max_attempts=3)
        telemetry.phase_start("warmup", 0)
        telemetry.beat(250)
        telemetry.phase_end("warmup", 250)
        telemetry.phase_start("measured", 250)
        telemetry.attempt_failed(1, 17, "boom")
        telemetry.cell_end("ok")
        telemetry.close()

        records, truncated = read_status_lines(
            cell_status_path(tmp_path, 0)
        )
        assert not truncated
        kinds = [r["kind"] for r in records]
        assert kinds == [
            "cell_start", "phase_start", "heartbeat", "phase_end",
            "phase_start", "attempt_failed", "cell_end",
        ]
        start = records[0]
        assert start["span_id"] == "grid-test/cell-00000"
        assert start["parent"] == "grid-test"
        assert start["total_accesses"] == 1000
        assert start["seed"] == 17
        assert start["watchdog_seconds"] == 30.0
        assert start["max_attempts"] == 3
        beat = records[2]
        assert beat["accesses"] == 250
        assert beat["phase"] == "warmup"
        assert beat["cpu_seconds"] >= 0

    def test_beat_throttles_by_wall_clock(self, tmp_path):
        spec = TelemetrySpec(run_dir=str(tmp_path), grid_span="grid-test",
                             heartbeat_seconds=3600.0)
        telemetry = CellTelemetry(spec, 1, "lru", "mcf")
        telemetry.cell_start(total_accesses=100, seed=1)
        for accesses in range(0, 100, 10):
            telemetry.beat(accesses)
        telemetry.close()
        records, _ = read_status_lines(cell_status_path(tmp_path, 1))
        assert [r["kind"] for r in records] == ["cell_start"]

    def test_close_is_idempotent(self, tmp_path):
        telemetry = CellTelemetry(eager_spec(tmp_path), 2, "lru", "mcf")
        telemetry.cell_start(total_accesses=10, seed=1)
        telemetry.close()
        telemetry.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", "mcf")
        telemetry.cell_start(total_accesses=10, seed=1)
        telemetry.close()
        path = cell_status_path(tmp_path, 0)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "heartbeat", "acc')  # killed mid-write
        records, truncated = read_status_lines(path)
        assert truncated
        assert [r["kind"] for r in records] == ["cell_start"]

    def test_missing_file_reads_empty(self, tmp_path):
        records, truncated = read_status_lines(tmp_path / "absent.jsonl")
        assert records == [] and not truncated


# ----------------------------------------------------------------------
# Telemetry through run_trace / guarded_run
# ----------------------------------------------------------------------

class TestSimulatorIntegration:
    def test_run_trace_emits_phase_spans_and_beats(self, tmp_path):
        trace = small_trace(length=6_000)
        cache = make_scheme("lru", SCALE.geometry(), seed=7)
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", trace.name)
        telemetry.cell_start(total_accesses=len(trace), seed=7)
        run_trace(cache, trace, telemetry=telemetry)
        telemetry.close()

        records, _ = read_status_lines(cell_status_path(tmp_path, 0))
        kinds = [r["kind"] for r in records]
        phases = [
            (r["kind"], r["phase"]) for r in records
            if r["kind"] in ("phase_start", "phase_end")
        ]
        assert phases == [
            ("phase_start", "warmup"), ("phase_end", "warmup"),
            ("phase_start", "measured"), ("phase_end", "measured"),
        ]
        assert "heartbeat" in kinds
        final_positions = [
            r["accesses"] for r in records if r["kind"] == "phase_end"
        ]
        assert final_positions == [int(len(trace) * 0.25), len(trace)]

    def test_disabled_telemetry_leaves_single_chunk_spans(self, tmp_path):
        # The zero-overhead contract, pinned structurally rather than by
        # wall clock: with telemetry off each phase is one batch call
        # (the old tight loop); armed, spans chunk on the watchdog
        # stride so the beat callback runs between chunks.
        trace = small_trace(length=20_000)
        calls = []

        def spying_cache(seed):
            cache = make_scheme("lru", SCALE.geometry(), seed=seed)
            real_batch = cache.access_batch

            def spy(addresses, set_indices, tags, writes, start, stop):
                calls.append((start, stop))
                return real_batch(
                    addresses, set_indices, tags, writes, start, stop
                )

            cache.access_batch = spy
            return cache

        run_trace(spying_cache(7), trace)
        assert calls == [(0, 5_000), (5_000, 20_000)]

        calls.clear()
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", trace.name)
        run_trace(spying_cache(7), trace, telemetry=telemetry)
        telemetry.close()
        assert calls == [
            (0, 5_000), (5_000, 13_192), (13_192, 20_000)
        ]

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        trace = small_trace(length=6_000)
        plain = run_trace(
            make_scheme("stem", SCALE.geometry(), seed=7), trace
        )
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "stem", trace.name)
        observed = run_trace(
            make_scheme("stem", SCALE.geometry(), seed=7), trace,
            telemetry=telemetry,
        )
        telemetry.close()
        assert observed.stats.as_dict() == plain.stats.as_dict()
        assert observed.metrics == plain.metrics
        assert observed.manifest.content_hash == plain.manifest.content_hash

    def test_guarded_run_reports_success(self, tmp_path):
        trace = small_trace(length=4_000)
        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", trace.name)
        outcome = guarded_run(
            lambda seed: make_scheme("lru", SCALE.geometry(), seed=seed),
            trace, scheme="lru", base_seed=11, watchdog_seconds=60.0,
            telemetry=telemetry,
        )
        telemetry.close()
        assert isinstance(outcome, RunResult)
        records, _ = read_status_lines(cell_status_path(tmp_path, 0))
        start = records[0]
        assert start["kind"] == "cell_start"
        assert start["seed"] == 11
        assert start["watchdog_seconds"] == 60.0
        end = records[-1]
        assert end["kind"] == "cell_end" and end["status"] == "ok"

    def test_guarded_run_reports_retries_and_failure(self, tmp_path):
        trace = small_trace(length=2_000)

        def poisoned(seed):
            raise SimulationError(f"poisoned (seed {seed})")

        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", trace.name)
        outcome = guarded_run(
            poisoned, trace, scheme="lru", base_seed=5,
            retry=RetryPolicy(max_attempts=3), telemetry=telemetry,
        )
        telemetry.close()
        assert isinstance(outcome, RunFailure)
        records, _ = read_status_lines(cell_status_path(tmp_path, 0))
        assert records[0]["max_attempts"] == 3
        failed = [r for r in records if r["kind"] == "attempt_failed"]
        assert [r["attempt"] for r in failed] == [1, 2, 3]
        end = records[-1]
        assert end["kind"] == "cell_end"
        assert end["status"] == "failed"
        assert end["error_type"] == "SimulationError"


# ----------------------------------------------------------------------
# Acceptance: byte-identical matrices, telemetry on/off, serial/parallel
# ----------------------------------------------------------------------

class TestEquivalence:
    SCHEMES = ["lru", "stem"]

    def _traces(self):
        return [small_trace("omnetpp", 6_000), small_trace("mcf", 6_000)]

    def test_matrix_identical_with_telemetry_serial_and_parallel(
        self, tmp_path
    ):
        baseline = run_matrix(self._traces(), self.SCHEMES, scale=SCALE)
        serial = run_matrix(
            self._traces(), self.SCHEMES, scale=SCALE,
            telemetry_dir=tmp_path / "serial",
        )
        parallel = run_matrix(
            self._traces(), self.SCHEMES, scale=SCALE,
            max_workers=2, telemetry_dir=tmp_path / "parallel",
        )
        fingerprint = _matrix_fingerprint(baseline)
        assert _matrix_fingerprint(serial) == fingerprint
        assert _matrix_fingerprint(parallel) == fingerprint
        # Both runs actually produced channels (this test must not pass
        # vacuously because telemetry silently failed to arm).
        for sub in ("serial", "parallel"):
            status = load_fleet(tmp_path / sub)
            assert status.finished
            assert status.counts()["done"] == len(self.SCHEMES) * 2

    def test_parallel_channel_has_worker_spans(self, tmp_path):
        run_matrix(
            self._traces(), ["lru"], scale=SCALE,
            max_workers=2, telemetry_dir=tmp_path,
        )
        grid_records, _ = read_status_lines(tmp_path / "grid.jsonl")
        kinds = [r["kind"] for r in grid_records]
        assert kinds[0] == "grid_start"
        assert kinds[-1] == "grid_end"
        assert kinds.count("cell_plan") == 2
        assert kinds.count("cell_done") == 2
        grid_span = grid_records[0]["span_id"]
        for index in range(2):
            records, _ = read_status_lines(cell_status_path(tmp_path, index))
            start = [r for r in records if r["kind"] == "cell_start"][0]
            assert start["span_id"] == cell_span_id(grid_span, index)
            assert start["parent"] == grid_span
            assert start["pid"] > 0

    def test_cached_cells_are_reported(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        traces = self._traces()
        run_matrix(traces, ["lru"], scale=SCALE, run_cache=cache)
        run_matrix(
            traces, ["lru"], scale=SCALE, run_cache=cache,
            telemetry_dir=tmp_path / "run2",
        )
        status = load_fleet(tmp_path / "run2")
        assert status.counts()["cached"] == 2
        assert status.finished
        assert all(cell.progress == 1.0 for cell in status.cells)

    def test_runner_writes_status_json(self, tmp_path):
        run_matrix(
            self._traces(), ["lru"], scale=SCALE, telemetry_dir=tmp_path
        )
        payload = json.loads((tmp_path / "status.json").read_text())
        assert payload["finished"] is True
        assert payload["counts"]["done"] == 2
        assert payload["total_cells"] == 2
        assert len(payload["cells"]) == 2


# ----------------------------------------------------------------------
# Read side: states, ETA, stall verdicts
# ----------------------------------------------------------------------

def _write_jsonl(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestAggregator:
    def test_states_and_eta(self, tmp_path):
        now = 1_000.0
        _write_jsonl(tmp_path / "grid.jsonl", [
            {"kind": "grid_start", "span_id": "grid-x", "t": now - 20,
             "total_cells": 3},
            {"kind": "cell_plan", "cell": 0, "label": "lru",
             "workload": "mcf", "total_accesses": 1000},
            {"kind": "cell_plan", "cell": 1, "label": "stem",
             "workload": "mcf", "total_accesses": 1000},
            {"kind": "cell_plan", "cell": 2, "label": "dip",
             "workload": "mcf", "total_accesses": 1000},
            {"kind": "cell_cached", "cell": 2},
        ])
        _write_jsonl(cell_status_path(tmp_path, 0), [
            {"kind": "cell_start", "cell": 0, "t": now - 10, "label": "lru",
             "workload": "mcf", "total_accesses": 1000, "pid": 42},
            {"kind": "heartbeat", "cell": 0, "t": now - 1, "accesses": 500,
             "rate": 100.0, "phase": "measured", "rss_kb": 2048,
             "cpu_seconds": 4.5, "gc_collections": 3},
        ])
        status = load_fleet(tmp_path, stall_after=5.0, now_wall=now)
        counts = status.counts()
        assert counts == {"pending": 1, "cached": 1, "running": 1,
                          "stalled": 0, "done": 0, "failed": 0}
        assert not status.finished
        running = status.cells[0]
        assert running.state == "running"
        assert running.accesses_done == 500
        assert running.rss_kb == 2048
        assert running.progress == 0.5
        # remaining = 500 (cell 0) + 1000 (pending cell 1); live rate 100
        assert status.remaining_accesses() == 1500
        assert status.aggregate_rate() == 100.0
        assert status.eta_seconds() == pytest.approx(15.0)

    def test_stall_verdict_names_watchdog(self, tmp_path):
        now = 2_000.0
        _write_jsonl(cell_status_path(tmp_path, 0), [
            {"kind": "cell_start", "cell": 0, "t": now - 12, "label": "lru",
             "workload": "mcf", "total_accesses": 1000,
             "watchdog_seconds": 60.0, "pid": 42},
            {"kind": "heartbeat", "cell": 0, "t": now - 10,
             "accesses": 400, "rate": 200.0},
        ])
        status = load_fleet(tmp_path, stall_after=5.0, now_wall=now)
        cell = status.cells[0]
        assert cell.state == "stalled"
        assert "no heartbeat for 10.0s" in cell.stall_verdict
        assert "400" in cell.stall_verdict
        # Watchdog armed 12s ago with a 60s budget: fires in 48s.
        assert "WatchdogTimeout fires in 48.0s" in cell.stall_verdict
        assert status.stalled_cells == [cell]

    def test_stall_verdict_without_watchdog(self, tmp_path):
        now = 2_000.0
        _write_jsonl(cell_status_path(tmp_path, 0), [
            {"kind": "cell_start", "cell": 0, "t": now - 30, "label": "lru",
             "workload": "mcf", "total_accesses": 1000, "pid": 42},
        ])
        status = load_fleet(tmp_path, stall_after=5.0, now_wall=now)
        assert "no watchdog armed" in status.cells[0].stall_verdict

    def test_slow_cell_with_heartbeats_is_not_stalled(self, tmp_path):
        now = 2_000.0
        _write_jsonl(cell_status_path(tmp_path, 0), [
            {"kind": "cell_start", "cell": 0, "t": now - 100, "label": "lru",
             "workload": "mcf", "total_accesses": 1_000_000, "pid": 42},
            {"kind": "heartbeat", "cell": 0, "t": now - 1,
             "accesses": 100, "rate": 1.0},
        ])
        status = load_fleet(tmp_path, stall_after=5.0, now_wall=now)
        assert status.cells[0].state == "running"
        assert status.stalled_cells == []

    def test_empty_directory(self, tmp_path):
        status = load_fleet(tmp_path)
        assert status.cells == []
        assert status.counts()["done"] == 0

    def test_write_status_round_trips(self, tmp_path):
        status = FleetStatus(run_dir=str(tmp_path), observed_at=1.0)
        status.cells = [CellFleetStatus(index=0, state="done")]
        path = write_status(tmp_path, status)
        payload = json.loads(path.read_text())
        assert payload["counts"]["done"] == 1

    def test_render_top_lines(self, tmp_path):
        now = 3_000.0
        _write_jsonl(tmp_path / "grid.jsonl", [
            {"kind": "grid_start", "span_id": "grid-y", "t": now - 50,
             "total_cells": 2},
            {"kind": "cell_plan", "cell": 0, "label": "lru",
             "workload": "mcf", "total_accesses": 1000},
            {"kind": "cell_plan", "cell": 1, "label": "stem",
             "workload": "astar", "total_accesses": 1000},
        ])
        _write_jsonl(cell_status_path(tmp_path, 0), [
            {"kind": "cell_start", "cell": 0, "t": now - 40, "label": "lru",
             "workload": "mcf", "total_accesses": 1000,
             "watchdog_seconds": 90.0, "pid": 7},
            {"kind": "heartbeat", "cell": 0, "t": now - 30,
             "accesses": 100, "rate": 10.0},
        ])
        status = load_fleet(tmp_path, stall_after=5.0, now_wall=now)
        rendered = render_top(status)
        assert "2 cell(s)" in rendered
        assert "1 stalled" in rendered
        assert "1 pending" in rendered
        assert "STALLED cell 0 (lru on mcf)" in rendered
        assert "WatchdogTimeout fires in" in rendered


# ----------------------------------------------------------------------
# Acceptance: the stall is visible before the watchdog fires
# ----------------------------------------------------------------------

class _BlockingCache:
    """Delegating cache whose Nth access blocks until released.

    ``access_batch`` is masked so run_trace takes the scalar path and
    the block lands mid-chunk — exactly how a genuinely wedged worker
    looks to the telemetry channel (heartbeats stop between chunks).
    """

    access_batch = None

    def __init__(self, inner, release, block_at):
        self._inner = inner
        self._release = release
        self._block_at = block_at
        self._count = 0

    def access(self, address, write=False):
        self._count += 1
        if self._count == self._block_at:
            self._release.wait(timeout=30.0)
        return self._inner.access(address, write)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestStallDetection:
    def test_top_reports_stall_before_watchdog_fires(
        self, tmp_path, capsys
    ):
        trace = small_trace(length=20_000)
        release = threading.Event()
        watchdog_seconds = 120.0

        def make_cache(seed):
            return _BlockingCache(
                make_scheme("lru", SCALE.geometry(), seed=seed),
                release, block_at=10_000,
            )

        telemetry = CellTelemetry(eager_spec(tmp_path), 0, "lru", trace.name)
        outcome = {}

        def run():
            outcome["result"] = guarded_run(
                make_cache, trace, scheme="lru", base_seed=9,
                watchdog_seconds=watchdog_seconds, telemetry=telemetry,
            )

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        try:
            deadline = time.monotonic() + 20.0
            status = None
            while time.monotonic() < deadline:
                status = load_fleet(tmp_path, stall_after=0.3)
                if status.stalled_cells:
                    break
                time.sleep(0.05)
            assert status is not None and status.stalled_cells, (
                "stall never detected"
            )
            cell = status.stalled_cells[0]
            # The verdict lands while the watchdog still has most of its
            # budget left — the whole point of the heartbeat channel.
            assert "WatchdogTimeout fires in" in cell.stall_verdict
            assert cell.accesses_done > 0
            assert cell.accesses_done < len(trace)

            exit_code = main([
                "top", str(tmp_path), "--once", "--stall-after", "0.3",
            ])
            captured = capsys.readouterr()
            assert exit_code == 3
            assert "STALLED cell 0" in captured.out
            assert "WatchdogTimeout fires in" in captured.out
            assert (tmp_path / "status.json").is_file()
        finally:
            release.set()
            worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert isinstance(outcome["result"], RunResult)
        telemetry.close()
        # After release the run completes normally and the channel shows
        # a clean finish.
        final = load_fleet(tmp_path, stall_after=30.0)
        assert final.cells[0].state == "done"


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

class TestTopCli:
    def test_top_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope"), "--once"]) == 2
        assert "no telemetry directory" in capsys.readouterr().err

    def test_top_once_on_finished_grid(self, tmp_path, capsys):
        run_matrix(
            [small_trace("omnetpp", 6_000)], ["lru"], scale=SCALE,
            telemetry_dir=tmp_path,
        )
        assert main(["top", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1 done" in out
        assert "status.json" in out

    def test_top_json_prints_status_document(self, tmp_path, capsys):
        run_matrix(
            [small_trace("omnetpp", 6_000)], ["lru"], scale=SCALE,
            telemetry_dir=tmp_path,
        )
        # The grid runner writes its own final status.json; remove it
        # to prove --json is the no-file-round-trip surface.
        (tmp_path / "status.json").unlink()
        assert main(["top", str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["finished"] is True
        assert document["counts"]["done"] == 1
        assert len(document["cells"]) == 1
        assert not (tmp_path / "status.json").exists()
