"""Tests for the capacity-flow ledger and the explain attribution.

Covers :class:`repro.obs.ledger.LedgerSink` on synthetic event streams
(episode lifecycle, orphans, swap windows, caps, conservation), sealed
ledgers on real STEM runs (conservation against ``stats``, decouple
reason vocabulary), the exact spatial/temporal/residual decomposition
of :func:`repro.obs.explain.attribute`, byte-stability across repeated
and serial/parallel runs, fault-injected streams, saved-run round
trips, and the ``repro explain`` / ``repro trace --kinds`` commands.
"""

import json

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cli import main
from repro.common.errors import ConfigError, InvariantViolation
from repro.core.config import StemConfig
from repro.obs.events import (
    CoopHit,
    Coupling,
    Decoupling,
    Eviction,
    PolicySwap,
    Spill,
)
from repro.obs.explain import attribute
from repro.obs.htmlreport import explain_to_html
from repro.obs.ledger import (
    OPEN_AT_SEAL,
    SUPERSEDED,
    LedgerSink,
    RunLedger,
)
from repro.resilience.faults import FaultInjector, FaultPlan, InjectingCache
from repro.sim.cache import load_run, save_run
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.runner import run_matrix
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

GEOMETRY = CacheGeometry(num_sets=64, associativity=16)

#: Every reason a closed episode may legitimately carry.
KNOWN_REASONS = {
    "giver_drained", "role_change", "safe_mode", OPEN_AT_SEAL, SUPERSEDED,
}


def _ledgered(scheme, benchmark="mcf", length=40_000, seed=0xACE1):
    trace = make_benchmark_trace(benchmark, num_sets=64, length=length)
    cache = make_scheme(scheme, GEOMETRY, seed=seed)
    return run_trace(cache, trace, warmup_fraction=0.0, ledger=True)


@pytest.fixture(scope="module")
def stem_run():
    return _ledgered("STEM")


@pytest.fixture(scope="module")
def lru_run():
    return _ledgered("LRU")


# ----------------------------------------------------------------------
# Synthetic streams
# ----------------------------------------------------------------------

class TestEpisodeLifecycle:
    def test_full_episode(self):
        sink = LedgerSink()
        for event in (
            Coupling(access=10, set_index=3, giver=7, global_access=10),
            Spill(access=12, set_index=3, giver=7, global_access=12),
            CoopHit(access=20, set_index=3, giver=7, global_access=20),
            Eviction(access=25, set_index=7, cooperative=True,
                     global_access=25),
            Decoupling(access=30, set_index=3, giver=7,
                       reason="role_change", global_access=30),
        ):
            sink.record(event)
        ledger = sink.seal(final_accesses=30, final_hits=9)

        assert len(ledger.coupling_episodes) == 1
        episode = ledger.coupling_episodes[0]
        assert (episode.taker, episode.giver) == (3, 7)
        assert (episode.start, episode.end) == (10, 30)
        assert episode.spills == 1
        assert episode.coop_hits == 1
        assert episode.reason == "role_change"
        assert episode.residual_blocks == 0
        # One block resident from clock 12 (spill) to 25 (eviction).
        assert episode.area == 25 - 12

    def test_flows_mirror_episode(self):
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        sink.record(Spill(access=2, set_index=3, giver=7, global_access=2))
        sink.record(CoopHit(access=5, set_index=3, giver=7,
                            global_access=5))
        sink.record(Decoupling(access=9, set_index=3, giver=7,
                               reason="giver_drained", global_access=9))
        ledger = sink.seal(final_accesses=9, final_hits=4)

        area = ledger.coupling_episodes[0].area
        assert area == 9 - 2
        assert ledger.flows[7]["lent"] == area
        assert ledger.flows[3]["borrowed"] == area
        assert ledger.flows[3]["spills_out"] == 1
        assert ledger.flows[7]["spills_in"] == 1
        assert ledger.flows[3]["coop_hits"] == 1
        assert ledger.totals["lent"] == ledger.totals["borrowed"] == area

    def test_open_episode_closed_at_seal(self):
        sink = LedgerSink()
        sink.record(Coupling(access=5, set_index=2, giver=6,
                             global_access=5))
        sink.record(Spill(access=8, set_index=2, giver=6, global_access=8))
        ledger = sink.seal(final_accesses=50, final_hits=0, final_clock=20)

        episode = ledger.coupling_episodes[0]
        assert episode.reason == OPEN_AT_SEAL
        assert episode.end == 20
        # The spilled block never drained: it is residual capacity.
        assert episode.residual_blocks == 1
        assert episode.area == (20 - 8) * 1
        assert ledger.totals["lent"] == ledger.totals["borrowed"]

    def test_recoupling_supersedes_stale_episode(self):
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        # Same taker couples again without an intervening Decoupling.
        sink.record(Coupling(access=5, set_index=3, giver=9,
                             global_access=5))
        ledger = sink.seal(final_accesses=10, final_hits=0)

        assert [e.reason for e in ledger.coupling_episodes] == [
            SUPERSEDED, OPEN_AT_SEAL,
        ]
        assert ledger.coupling_episodes[0].giver == 7
        assert ledger.coupling_episodes[0].end == 5


class TestOrphans:
    def test_unmatched_events_become_orphans(self):
        sink = LedgerSink()
        sink.record(Spill(access=1, set_index=3, giver=7, global_access=1))
        sink.record(CoopHit(access=2, set_index=3, giver=7,
                            global_access=2))
        sink.record(Decoupling(access=3, set_index=3, giver=7,
                               global_access=3))
        sink.record(Eviction(access=4, set_index=7, cooperative=True,
                             global_access=4))
        ledger = sink.seal(final_accesses=4, final_hits=0)

        assert ledger.totals["orphan_spills"] == 1
        assert ledger.totals["orphan_coop_hits"] == 1
        assert ledger.totals["orphan_decouplings"] == 1
        assert ledger.totals["orphan_evictions"] == 1
        assert ledger.coupling_episodes == []
        assert ledger.totals["lent"] == ledger.totals["borrowed"] == 0

    def test_decoupling_with_wrong_giver_is_orphaned(self):
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        sink.record(Decoupling(access=4, set_index=3, giver=9,
                               global_access=4))
        ledger = sink.seal(final_accesses=4, final_hits=0)

        assert ledger.totals["orphan_decouplings"] == 1
        # The real pairing stayed open until seal.
        assert ledger.coupling_episodes[0].reason == OPEN_AT_SEAL

    def test_non_cooperative_evictions_ignored(self):
        sink = LedgerSink()
        sink.record(Eviction(access=1, set_index=5, cooperative=False,
                             global_access=1))
        ledger = sink.seal(final_accesses=1, final_hits=0)
        assert ledger.totals["orphan_evictions"] == 0
        assert ledger.events_seen == 1


class TestSwapWindows:
    def test_windows_resolved_against_neighbours_and_seal(self):
        sink = LedgerSink()
        sink.record(PolicySwap(access=100, set_index=9, mode="BIP",
                               hits=40, global_access=100))
        sink.record(PolicySwap(access=200, set_index=9, mode="LRU",
                               hits=90, global_access=200))
        ledger = sink.seal(final_accesses=300, final_hits=140)

        first, second = ledger.swap_episodes
        assert first.hit_rate_before == pytest.approx(40 / 100)
        assert first.hit_rate_after == pytest.approx(50 / 100)
        assert second.hit_rate_before == pytest.approx(50 / 100)
        assert second.hit_rate_after == pytest.approx(50 / 100)

    def test_windows_independent_per_set(self):
        sink = LedgerSink()
        sink.record(PolicySwap(access=100, set_index=1, mode="BIP",
                               hits=10, global_access=100))
        sink.record(PolicySwap(access=150, set_index=2, mode="BIP",
                               hits=30, global_access=150))
        ledger = sink.seal(final_accesses=200, final_hits=80)

        by_set = {swap.set_index: swap for swap in ledger.swap_episodes}
        assert by_set[1].hit_rate_before == pytest.approx(10 / 100)
        assert by_set[2].hit_rate_before == pytest.approx(30 / 150)

    def test_rewound_snapshots_yield_no_rate(self):
        # reset_stats() inside a window rewinds (access, hits); the
        # ledger must refuse to report a rate over such a window.
        sink = LedgerSink()
        sink.record(PolicySwap(access=50, set_index=4, mode="BIP",
                               hits=20, global_access=50))
        sink.record(PolicySwap(access=10, set_index=4, mode="LRU",
                               hits=2, global_access=90))
        ledger = sink.seal(final_accesses=5, final_hits=1)

        first, second = ledger.swap_episodes
        assert first.hit_rate_after is None
        assert second.hit_rate_before is None
        assert second.hit_rate_after is None


class TestBoundsAndGuards:
    def test_episode_cap_drops_detail_not_counts(self):
        sink = LedgerSink(episode_cap=1)
        for start in (1, 10, 20):
            sink.record(Coupling(access=start, set_index=3, giver=7,
                                 global_access=start))
            sink.record(Decoupling(access=start + 5, set_index=3, giver=7,
                                   reason="role_change",
                                   global_access=start + 5))
        ledger = sink.seal(final_accesses=30, final_hits=0)

        assert len(ledger.coupling_episodes) == 1
        assert ledger.episodes_dropped == 2
        assert ledger.totals["coupling_events"] == 3
        assert ledger.summary()["coupling_episodes"] == 3

    def test_swap_cap_drops_detail_not_counts(self):
        sink = LedgerSink(episode_cap=1)
        sink.record(PolicySwap(access=10, set_index=1, mode="BIP",
                               hits=1, global_access=10))
        sink.record(PolicySwap(access=20, set_index=1, mode="LRU",
                               hits=2, global_access=20))
        ledger = sink.seal(final_accesses=30, final_hits=3)

        assert len(ledger.swap_episodes) == 1
        assert ledger.swaps_dropped == 1
        assert ledger.summary()["policy_swaps"] == 2

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigError):
            LedgerSink(episode_cap=0)

    def test_record_after_seal_rejected(self):
        sink = LedgerSink()
        sink.seal(final_accesses=0, final_hits=0)
        with pytest.raises(ConfigError, match="sealed"):
            sink.record(Coupling(access=1, set_index=0, giver=1,
                                 global_access=1))

    def test_double_seal_rejected(self):
        sink = LedgerSink()
        sink.seal(final_accesses=0, final_hits=0)
        with pytest.raises(ConfigError, match="sealed"):
            sink.seal(final_accesses=0, final_hits=0)


class TestConservation:
    def test_tampered_lent_total_raises(self):
        # The lent/borrowed cross-check is live: knock the incremental
        # integral out of step and seal() must refuse to balance.
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        sink.record(Decoupling(access=5, set_index=3, giver=7,
                               reason="role_change", global_access=5))
        sink._lent_total += 1
        with pytest.raises(InvariantViolation, match="conservation"):
            sink.seal(final_accesses=5, final_hits=0)

    def test_tampered_spill_count_raises(self):
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        sink.record(Spill(access=2, set_index=3, giver=7, global_access=2))
        sink._spill_events += 1
        with pytest.raises(InvariantViolation, match="spill conservation"):
            sink.seal(final_accesses=5, final_hits=0)


class TestLedgerSerialization:
    def _sample_ledger(self):
        sink = LedgerSink()
        sink.record(Coupling(access=1, set_index=3, giver=7,
                             global_access=1))
        sink.record(Spill(access=2, set_index=3, giver=7, global_access=2))
        sink.record(PolicySwap(access=4, set_index=9, mode="BIP",
                               hits=2, global_access=4))
        sink.record(Decoupling(access=6, set_index=3, giver=7,
                               reason="giver_drained", global_access=6))
        return sink.seal(
            final_accesses=10, final_hits=5,
            counters={"hits": [1, 2], "cooperative_hits": [0, 1]},
        )

    def test_round_trip_through_json(self):
        ledger = self._sample_ledger()
        payload = json.loads(json.dumps(ledger.as_dict()))
        rebuilt = RunLedger.from_dict(payload)
        assert rebuilt.as_dict() == ledger.as_dict()
        assert rebuilt.flows[7]["lent"] == ledger.flows[7]["lent"]

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError, match="malformed ledger payload"):
            RunLedger.from_dict({"coupling_episodes": 3})


# ----------------------------------------------------------------------
# Real runs
# ----------------------------------------------------------------------

class TestStemLedger:
    def test_conservation_against_stats(self, stem_run):
        ledger = stem_run.ledger
        assert ledger is not None
        # Capacity flow balances...
        assert ledger.totals["lent"] == ledger.totals["borrowed"]
        assert ledger.totals["lent"] > 0
        # ...and the event totals agree with the simulator's counters
        # (warmup_fraction=0.0, so no events predate the window).
        assert ledger.totals["spill_events"] == stem_run.stats.spills
        assert (ledger.totals["coop_hit_events"]
                == stem_run.stats.cooperative_hits)
        # An intact stream has no orphans.
        for key in ("orphan_spills", "orphan_coop_hits",
                    "orphan_decouplings", "orphan_evictions"):
            assert ledger.totals[key] == 0

    def test_counters_sum_to_stats(self, stem_run):
        counters = stem_run.ledger.counters
        assert counters is not None
        assert sum(counters["hits"]) == stem_run.stats.hits
        assert (sum(counters["cooperative_hits"])
                == stem_run.stats.cooperative_hits)
        assert len(counters["hits"]) == GEOMETRY.num_sets

    def test_every_episode_closed_with_known_reason(self, stem_run):
        ledger = stem_run.ledger
        assert ledger.coupling_episodes
        for episode in ledger.coupling_episodes:
            assert episode.end is not None
            assert episode.reason in KNOWN_REASONS
        assert (len(ledger.coupling_episodes) + ledger.episodes_dropped
                == ledger.totals["coupling_events"])

    def test_episodes_sorted_for_stable_bytes(self, stem_run):
        episodes = stem_run.ledger.coupling_episodes
        keys = [(e.start, e.taker, e.giver) for e in episodes]
        assert keys == sorted(keys)

    def test_faulted_run_still_seals(self):
        # Fault injection corrupts the association table mid-run; safe
        # mode repairs the structural damage, the ledger absorbs the
        # resulting mismatched events as orphans, and conservation
        # still holds at seal.
        trace = make_benchmark_trace("mcf", num_sets=64, length=30_000)
        cache = make_scheme(
            "STEM", GEOMETRY, seed=11, config=StemConfig(safe_mode=True)
        )
        plan = FaultPlan.parse("association:2,sc_s:2")
        injector = FaultInjector(plan, len(trace), seed=11)
        result = run_trace(
            InjectingCache(cache, injector), trace,
            warmup_fraction=0.0, ledger=True,
        )
        ledger = result.ledger
        assert ledger is not None
        assert ledger.totals["lent"] == ledger.totals["borrowed"]
        for episode in ledger.coupling_episodes:
            assert episode.reason in KNOWN_REASONS


class TestAttribution:
    def test_components_sum_exactly(self, stem_run, lru_run):
        att = attribute(lru_run, stem_run)
        assert att.total_delta_hits == (
            stem_run.stats.hits - lru_run.stats.hits
        )
        assert att.spatial + att.temporal + att.residual \
            == att.total_delta_hits
        assert att.spatial == (
            stem_run.stats.cooperative_hits
            - lru_run.stats.cooperative_hits
        )

    def test_per_set_rows_sum_to_global(self, stem_run, lru_run):
        att = attribute(lru_run, stem_run)
        assert att.sets
        for row in att.sets:
            assert row.spatial + row.temporal + row.residual \
                == row.delta_hits
        assert sum(row.delta_hits for row in att.sets) \
            == att.total_delta_hits
        assert sum(row.spatial for row in att.sets) == att.spatial
        assert sum(row.temporal for row in att.sets) == att.temporal

    def test_byte_stable_across_repeated_runs(self, lru_run):
        first = _ledgered("STEM", length=12_000)
        second = _ledgered("STEM", length=12_000)
        base = _ledgered("LRU", length=12_000)
        dumps = lambda att: json.dumps(att.as_dict(), sort_keys=True)  # noqa: E731
        assert dumps(attribute(base, first)) \
            == dumps(attribute(base, second))
        assert first.ledger.as_dict() == second.ledger.as_dict()

    def test_ledgerless_runs_degrade_with_notes(self):
        trace = make_benchmark_trace("mcf", num_sets=64, length=12_000)
        a = run_trace(make_scheme("LRU", GEOMETRY), trace,
                      warmup_fraction=0.0)
        b = run_trace(make_scheme("STEM", GEOMETRY), trace,
                      warmup_fraction=0.0)
        att = attribute(a, b)
        assert att.temporal == 0
        assert att.sets == []
        assert any("ledger" in note for note in att.notes)
        # The exactness contract survives the degradation.
        assert att.spatial + att.temporal + att.residual \
            == att.total_delta_hits

    def test_saved_run_round_trip(self, tmp_path, stem_run, lru_run):
        path = tmp_path / "stem.json"
        save_run(path, stem_run)
        loaded = load_run(path)
        assert loaded.ledger is not None
        assert loaded.ledger.as_dict() == stem_run.ledger.as_dict()
        assert attribute(lru_run, loaded).as_dict() \
            == attribute(lru_run, stem_run).as_dict()

    def test_explain_html_self_contained(self, stem_run, lru_run):
        att = attribute(lru_run, stem_run)
        html = explain_to_html(att)
        assert html == explain_to_html(att)
        assert "spatial" in html
        assert "http" not in html.lower()

    def test_render_lists_top_sets(self, stem_run, lru_run):
        rendered = attribute(lru_run, stem_run).render(top_k=4)
        assert "explain:" in rendered
        assert "observed class:" in rendered
        assert "diverging sets" in rendered


class TestSerialParallelParity:
    def test_ledgers_identical_across_workers(self):
        scale = ExperimentScale(
            num_sets=64, associativity=16, trace_length=12_000,
            warmup_fraction=0.0,
        )
        traces = [make_benchmark_trace("mcf", num_sets=64, length=12_000)]
        serial = run_matrix(traces, ("LRU", "STEM"), scale=scale,
                            seed=5, ledger=True, max_workers=1)
        parallel = run_matrix(traces, ("LRU", "STEM"), scale=scale,
                              seed=5, ledger=True, max_workers=2)
        for scheme in ("LRU", "STEM"):
            led_s = serial.ledger_for("mcf", scheme)
            led_p = parallel.ledger_for("mcf", scheme)
            assert led_s is not None and led_p is not None
            assert json.dumps(led_s.as_dict(), sort_keys=True) \
                == json.dumps(led_p.as_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestExplainCommand:
    ARGS = ["--benchmark", "mcf", "--sets", "32", "--length", "8000"]

    def test_text_report(self, capsys):
        assert main(["explain", "LRU", "STEM"] + self.ARGS) == 0
        output = capsys.readouterr().out
        assert "explain:" in output
        assert "spatial" in output

    def test_json_byte_stable(self, tmp_path, capsys):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["explain", "LRU", "STEM", "--json", str(first)]
                    + self.ARGS) == 0
        assert main(["explain", "LRU", "STEM", "--json", str(second)]
                    + self.ARGS) == 0
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert payload["total_delta_hits"] == (
            payload["spatial"] + payload["temporal"] + payload["residual"]
        )

    def test_html_out(self, tmp_path, capsys):
        out = tmp_path / "explain.html"
        assert main(["explain", "LRU", "STEM", "--out", str(out)]
                    + self.ARGS) == 0
        html = out.read_text()
        assert "<html" in html
        assert "http" not in html.lower()

    def test_saved_run_operands(self, tmp_path, capsys, stem_run, lru_run):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_run(path_a, lru_run)
        save_run(path_b, stem_run)
        assert main(["explain", str(path_a), str(path_b)]) == 0
        assert "observed class:" in capsys.readouterr().out


class TestTraceKinds:
    ARGS = ["--sets", "32", "--length", "8000"]

    def test_jsonl_filtered_to_named_kinds(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        code = main([
            "trace", "STEM", "mcf", "--events", str(log),
            "--kinds", "spill,coupling",
        ] + self.ARGS)
        assert code == 0
        assert "kinds filter" in capsys.readouterr().out
        kinds = {
            json.loads(line)["kind"]
            for line in log.read_text().splitlines() if line
        }
        assert kinds
        assert kinds <= {"spill", "coupling"}

    def test_unknown_kind_rejected(self, capsys):
        code = main([
            "trace", "STEM", "mcf", "--kinds", "warp_drive",
        ] + self.ARGS)
        assert code == 2
        assert "unknown event kind" in capsys.readouterr().err
