"""Tests for the named benchmark-set registry and its set algebra."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.benchmark_sets import (
    BENCHMARK_SETS,
    benchmark_set_names,
    resolve_benchmarks,
)
from repro.workloads.spec_like import benchmark_names


class TestRegistry:
    def test_all_set_covers_every_benchmark(self):
        assert BENCHMARK_SETS["all"] == tuple(sorted(benchmark_names()))

    def test_int_fp_partition_the_suite(self):
        int_set = set(BENCHMARK_SETS["int"])
        fp_set = set(BENCHMARK_SETS["fp"])
        assert not int_set & fp_set
        assert int_set | fp_set == set(BENCHMARK_SETS["all"])

    def test_class_sets_partition_the_suite(self):
        classes = [
            set(BENCHMARK_SETS[name])
            for name in ("class_i", "class_ii", "class_iii")
        ]
        union = set().union(*classes)
        assert union == set(BENCHMARK_SETS["all"])
        assert sum(len(one) for one in classes) == len(union)

    def test_every_set_is_sorted(self):
        for names in BENCHMARK_SETS.values():
            assert list(names) == sorted(names)

    def test_set_names_sorted(self):
        names = benchmark_set_names()
        assert names == sorted(names)
        assert "int" in names and "fp" in names and "all" in names


class TestResolve:
    def test_single_set(self):
        assert resolve_benchmarks(["int"]) == list(BENCHMARK_SETS["int"])

    def test_individual_benchmarks(self):
        assert resolve_benchmarks(["mcf", "art"]) == ["art", "mcf"]

    def test_mixing_sets_and_names_dedups(self):
        # mcf is already in the int set: naming it again adds nothing.
        assert resolve_benchmarks(["int", "mcf"]) == list(
            BENCHMARK_SETS["int"]
        )

    def test_overlapping_sets_dedup(self):
        both = resolve_benchmarks(["int", "fp"])
        assert both == list(BENCHMARK_SETS["all"])

    def test_order_of_tokens_is_irrelevant(self):
        assert resolve_benchmarks(["fp", "mcf"]) == resolve_benchmarks(
            ["mcf", "fp"]
        )

    def test_unknown_token_names_token_and_vocabulary(self):
        with pytest.raises(ConfigError, match="integer"):
            resolve_benchmarks(["integer"])
        with pytest.raises(ConfigError, match="sets:"):
            resolve_benchmarks(["nope"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            resolve_benchmarks([])
