"""Integration tests for the paper's qualitative claims.

These drive the actual evaluation pipeline at a reduced scale and
assert the *shape* results the paper reports — who wins, and roughly
where.  They are the reproduction's acceptance tests.
"""

import pytest

from repro.experiments import evaluation
from repro.sim.config import ExperimentScale
from repro.sim.runner import run_benchmarks

SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=60_000)
SCHEMES = ("LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM")


@pytest.fixture(scope="module")
def matrix():
    evaluation.clear_cache()
    return run_benchmarks(
        SCHEMES,
        benchmarks=(
            "ammp", "apsi", "omnetpp",        # Class I
            "art", "mcf", "sphinx3",          # Class II
            "gobmk", "soplex", "vpr",         # Class III
        ),
        scale=SCALE,
    )


def normalized(matrix, benchmark, scheme):
    base = matrix.get(benchmark, "LRU").mpki
    return matrix.get(benchmark, scheme).mpki / base


class TestClassOneClaims:
    def test_stem_beats_temporal_schemes_on_class_one(self, matrix):
        # Section 5.2: "STEM is noticeably better than the existing
        # temporal schemes DIP and PeLIFO" for Class I.
        for benchmark in ("apsi", "omnetpp"):
            stem = normalized(matrix, benchmark, "STEM")
            assert stem < normalized(matrix, benchmark, "DIP")
            assert stem < normalized(matrix, benchmark, "PeLIFO")

    def test_stem_beats_sbc_on_class_one(self, matrix):
        # "STEM outperforms SBC" (astar's 0.3% exception aside).
        for benchmark in ("ammp", "apsi", "omnetpp"):
            assert normalized(matrix, benchmark, "STEM") < normalized(
                matrix, benchmark, "SBC"
            )


class TestClassTwoClaims:
    def test_temporal_schemes_beat_spatial_on_class_two(self, matrix):
        # "the expected better performance of temporal LLC management
        # schemes than that of the spatial ones" for Class II.
        for benchmark in ("mcf", "sphinx3"):
            dip = normalized(matrix, benchmark, "DIP")
            assert dip < normalized(matrix, benchmark, "V-Way")
            assert dip < normalized(matrix, benchmark, "SBC")

    def test_stem_matches_dip_on_class_two(self, matrix):
        # "STEM performs as well as DIP for the benchmarks of Class II."
        for benchmark in ("mcf", "sphinx3"):
            stem = normalized(matrix, benchmark, "STEM")
            dip = normalized(matrix, benchmark, "DIP")
            assert stem <= dip * 1.15

    def test_nobody_improves_art(self, matrix):
        # "none of the schemes improves over LRU for art" at 2 MB.
        for scheme in ("DIP", "PeLIFO", "V-Way", "STEM"):
            assert normalized(matrix, "art", scheme) > 0.8

    def test_spatial_schemes_stuck_at_lru_on_uniform_thrash(self, matrix):
        # Figure 2 Example #3's lesson at benchmark scale.
        for scheme in ("V-Way", "SBC"):
            assert normalized(matrix, "mcf", scheme) == pytest.approx(
                1.0, abs=0.1
            )


class TestClassThreeClaims:
    def test_stem_never_materially_worse_than_lru(self, matrix):
        # "STEM either outperforms or performs no worse than LRU."
        for benchmark in ("gobmk", "soplex", "vpr", "art", "mcf"):
            assert normalized(matrix, benchmark, "STEM") <= 1.08

    def test_class_three_is_flat_for_stem_and_sbc(self, matrix):
        for benchmark in ("gobmk", "vpr"):
            assert normalized(matrix, benchmark, "STEM") == pytest.approx(
                1.0, abs=0.05
            )
            assert normalized(matrix, benchmark, "SBC") == pytest.approx(
                1.0, abs=0.1
            )


class TestOverallOrdering:
    def test_stem_has_best_geomean_of_nonspatial(self, matrix):
        # The headline: STEM's MPKI geomean beats LRU, DIP, PeLIFO and
        # SBC.  (V-Way is excluded: our synthetic Class I loops flatter
        # its doubled tag store more than real SPEC does; see
        # EXPERIMENTS.md for the documented deviation.)
        table = matrix.normalized_table(lambda r: r.mpki)
        geomeans = table["Geomean"]
        for scheme in ("LRU", "DIP", "PeLIFO", "SBC"):
            assert geomeans["STEM"] <= geomeans[scheme]

    def test_stem_improves_mpki_amat_cpi_over_lru(self, matrix):
        for metric in (
            lambda r: r.mpki, lambda r: r.amat, lambda r: r.cpi
        ):
            geomeans = matrix.normalized_table(metric)["Geomean"]
            assert geomeans["STEM"] < 1.0

    def test_amat_ranking_follows_mpki_ranking_for_stem(self, matrix):
        # Figures 7-9 are consistent: AMAT/CPI gains shrink but the
        # ordering against LRU persists.
        mpki_g = matrix.normalized_table(lambda r: r.mpki)["Geomean"]
        amat_g = matrix.normalized_table(lambda r: r.amat)["Geomean"]
        cpi_g = matrix.normalized_table(lambda r: r.cpi)["Geomean"]
        assert mpki_g["STEM"] < 1.0
        assert mpki_g["STEM"] <= amat_g["STEM"] <= cpi_g["STEM"] <= 1.0
