"""Hypothesis property tests: structural invariants under random load.

Every cache scheme must keep its internal bookkeeping consistent for
*any* access stream; these tests drive randomly generated traces into
each scheme and then assert the scheme's own ``check_invariants`` plus
the universal statistics identities.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.rng import Lfsr
from repro.core.config import StemConfig
from repro.core.stem_cache import StemCache
from repro.policies.registry import available_policies, make_policy
from repro.spatial.sbc import SbcCache
from repro.spatial.vway import VwayCache

GEOMETRY = CacheGeometry(num_sets=8, associativity=4)

access_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),    # set index
        st.integers(min_value=0, max_value=23),   # tag
        st.booleans(),                            # is_write
    ),
    min_size=1,
    max_size=500,
)


def drive(cache, stream):
    mapper = GEOMETRY.mapper
    for set_index, tag, is_write in stream:
        cache.access(mapper.compose(tag, set_index), is_write=is_write)
    return cache


def assert_stats_identities(stats):
    assert stats.hits + stats.misses == stats.accesses
    assert stats.local_hits + stats.cooperative_hits == stats.hits
    assert (
        stats.misses_single_probe + stats.misses_double_probe == stats.misses
    )
    assert stats.writebacks <= stats.evictions + stats.spills


class TestEveryPolicyKeepsBaseCacheConsistent:
    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams, policy_name=st.sampled_from(
        available_policies()
    ))
    def test_invariants(self, stream, policy_name):
        cache = SetAssociativeCache(
            GEOMETRY, make_policy(policy_name), rng=Lfsr()
        )
        drive(cache, stream)
        cache.check_invariants()
        assert_stats_identities(cache.stats)

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams, policy_name=st.sampled_from(
        available_policies()
    ))
    def test_resident_block_rereference_always_hits(self, stream, policy_name):
        cache = SetAssociativeCache(
            GEOMETRY, make_policy(policy_name), rng=Lfsr()
        )
        drive(cache, stream)
        for set_index in range(GEOMETRY.num_sets):
            for view in cache.resident_blocks(set_index):
                address = GEOMETRY.mapper.compose(view.tag, set_index)
                assert cache.access(address).is_hit


class TestSbcProperties:
    @settings(max_examples=25, deadline=None)
    @given(stream=access_streams)
    def test_invariants(self, stream):
        cache = SbcCache(GEOMETRY)
        drive(cache, stream)
        cache.check_invariants()
        assert_stats_identities(cache.stats)

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams)
    def test_couplings_balance_decouplings(self, stream):
        cache = SbcCache(GEOMETRY)
        drive(cache, stream)
        live_pairs = sum(
            1
            for s in range(GEOMETRY.num_sets)
            if cache.association.is_coupled(s)
        )
        assert live_pairs % 2 == 0
        assert (
            cache.association.couplings - cache.association.decouplings
            == live_pairs // 2
        )


class TestVwayProperties:
    @settings(max_examples=25, deadline=None)
    @given(stream=access_streams)
    def test_invariants(self, stream):
        cache = VwayCache(GEOMETRY)
        drive(cache, stream)
        cache.check_invariants()
        assert_stats_identities(cache.stats)

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams)
    def test_total_lines_bounded_by_capacity(self, stream):
        cache = VwayCache(GEOMETRY)
        drive(cache, stream)
        owned = sum(
            cache.lines_owned_by(s) for s in range(GEOMETRY.num_sets)
        )
        assert owned <= GEOMETRY.num_lines


class TestStemProperties:
    @settings(max_examples=25, deadline=None)
    @given(stream=access_streams)
    def test_invariants(self, stream):
        cache = StemCache(GEOMETRY)
        drive(cache, stream)
        cache.check_invariants()
        assert_stats_identities(cache.stats)

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams)
    def test_invariants_without_receiving_control(self, stream):
        cache = StemCache(
            GEOMETRY, config=StemConfig(receiving_control=False)
        )
        drive(cache, stream)
        cache.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams)
    def test_resident_home_blocks_hit_on_rereference(self, stream):
        cache = StemCache(GEOMETRY)
        drive(cache, stream)
        for set_index in range(GEOMETRY.num_sets):
            for view in cache.resident_blocks(set_index):
                if view.cooperative:
                    continue
                address = GEOMETRY.mapper.compose(view.tag, set_index)
                assert cache.access(address).is_hit

    @settings(max_examples=15, deadline=None)
    @given(stream=access_streams)
    def test_shadow_sets_respect_capacity(self, stream):
        cache = StemCache(GEOMETRY)
        drive(cache, stream)
        for monitor in cache.monitors:
            assert len(monitor.shadow) <= GEOMETRY.associativity

    @settings(max_examples=10, deadline=None)
    @given(stream=access_streams, seed=st.integers(1, 0xFFFF))
    def test_deterministic_given_seed(self, stream, seed):
        a = StemCache(GEOMETRY, rng=Lfsr(seed=seed))
        b = StemCache(GEOMETRY, rng=Lfsr(seed=seed))
        mapper = GEOMETRY.mapper
        for set_index, tag, is_write in stream:
            address = mapper.compose(tag, set_index)
            assert a.access(address, is_write) == b.access(address, is_write)
