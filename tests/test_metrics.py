"""Tests for windowed metrics (:mod:`repro.obs.metrics`).

Covers the registry's delta/gauge sampling, the batch==scalar series
guarantee, exporters (JSONL + Prometheus text), ``run_trace`` series
attachment, run-cache round-trips, the timeline refactor, and the
monotonic ``global_access`` clock across the warm-up reset.
"""

import json

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigError
from repro.common.stats import CacheStats, counter_field_names
from repro.obs.metrics import MetricsRegistry, MetricsSeries
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.cache import (
    RunCache,
    load_run,
    result_from_dict,
    result_to_dict,
    save_run,
)
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.sim.timeline import run_timeline
from repro.workloads.spec_like import make_benchmark_trace

GEOMETRY = CacheGeometry(num_sets=64, associativity=16)
SCALE = ExperimentScale(num_sets=64, associativity=16, trace_length=20_000)


def small_trace(name="mcf", length=12_000, write_fraction=0.0):
    return make_benchmark_trace(
        name, num_sets=64, length=length, write_fraction=write_fraction
    )


class ScalarOnly:
    """Proxy hiding ``access_batch`` so run_trace takes the scalar path."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name == "access_batch":
            raise AttributeError(name)
        return getattr(self._inner, name)


def windowed(scheme, trace, window, seed=7, scalar=False, **kwargs):
    cache = make_scheme(scheme, SCALE.geometry(), seed=seed)
    if scalar:
        cache = ScalarOnly(cache)
    return run_trace(cache, trace, metrics_window=window, **kwargs)


def fingerprint(series):
    return json.dumps(series.as_dict(), sort_keys=True)


class TestRegistry:
    def test_window_length_validated(self):
        with pytest.raises(ConfigError, match="window_length"):
            MetricsRegistry(window_length=0)

    def test_samples_are_counter_deltas(self):
        class FakeCache:
            def __init__(self):
                self.stats = CacheStats()

        cache = FakeCache()
        registry = MetricsRegistry(window_length=100)
        cache.stats.accesses = 100
        cache.stats.misses = 40
        registry.sample(cache, 100)
        cache.stats.accesses = 200
        cache.stats.misses = 50
        registry.sample(cache, 100)
        assert registry.series["accesses"] == [100.0, 100.0]
        assert registry.series["misses"] == [40.0, 10.0]
        assert registry.series["miss_rate"] == [0.4, 0.1]

    def test_every_counter_tracked(self):
        cache = make_scheme("stem", GEOMETRY, seed=1)
        registry = MetricsRegistry(window_length=1_000)
        trace = small_trace(length=2_000)
        for address in trace.addresses[:1000]:
            cache.access(address)
        registry.sample(cache, 1_000)
        for name in counter_field_names():
            assert name in registry.series, name

    def test_gauges_and_per_set_collected(self):
        cache = make_scheme("stem", GEOMETRY, seed=1)
        registry = MetricsRegistry(window_length=1_000)
        trace = small_trace(length=2_000)
        for address in trace.addresses:
            cache.access(address)
        registry.sample(cache, 2_000)
        for gauge in ("occupancy_fraction", "sc_s_saturation",
                      "sc_t_saturation", "giver_heap_depth",
                      "coupled_pairs", "taker_fraction"):
            assert gauge in registry.series, gauge
        rows = registry.set_series["occupancy"]
        assert len(rows) == 1
        assert len(rows[0]) == GEOMETRY.num_sets

    def test_hierarchy_is_samplable(self):
        llc = make_scheme("lru", GEOMETRY, seed=1)
        hierarchy = CacheHierarchy(llc)
        registry = MetricsRegistry(window_length=500)
        trace = small_trace(length=1_000)
        for address in trace.addresses:
            hierarchy.access(address)
        registry.sample(hierarchy, 1_000)
        assert "l1_mshr_outstanding" in registry.series
        assert "llc_write_buffer_occupancy" in registry.series
        assert registry.series["accesses"][0] > 0


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("scheme", ["lru", "dip", "stem"])
    def test_series_byte_identical(self, scheme):
        """The ISSUE's pinned contract: batch == scalar, per window."""
        trace = small_trace("mcf", 12_000, write_fraction=0.3)
        batch = windowed(scheme, trace, window=1_500)
        scalar = windowed(scheme, trace, window=1_500, scalar=True)
        assert fingerprint(batch.series) == fingerprint(scalar.series)

    def test_window_not_dividing_trace(self):
        trace = small_trace("vpr", 7_000)
        batch = windowed("stem", trace, window=1_999)
        scalar = windowed("stem", trace, window=1_999, scalar=True)
        assert fingerprint(batch.series) == fingerprint(scalar.series)

    def test_warmup_alignment(self):
        trace = small_trace("omnetpp", 10_000)
        batch = windowed("dip", trace, window=1_000,
                         warmup_fraction=0.25)
        scalar = windowed("dip", trace, window=1_000,
                          warmup_fraction=0.25, scalar=True)
        assert fingerprint(batch.series) == fingerprint(scalar.series)


class TestRunTraceSeries:
    def test_disabled_by_default(self):
        result = run_trace(
            make_scheme("lru", GEOMETRY, seed=1), small_trace(length=4_000)
        )
        assert result.series is None

    def test_series_attached_and_consistent(self):
        trace = small_trace(length=10_000)
        result = windowed("stem", trace, window=2_000,
                          warmup_fraction=0.0)
        series = result.series
        assert series.scheme == "STEM"
        assert series.trace_name == trace.name
        assert series.num_windows == 5
        assert series.window_accesses == [2_000] * 5
        # Window deltas sum back to the run totals.
        assert sum(series.series["misses"]) == result.stats.misses
        assert sum(series.series["accesses"]) == result.stats.accesses

    def test_windows_cover_measured_phase_only(self):
        trace = small_trace(length=10_000)
        result = windowed("lru", trace, window=2_500,
                          warmup_fraction=0.25)
        assert sum(result.series.window_accesses) == \
            result.measured_accesses


class TestExporters:
    def _series(self):
        return windowed("stem", small_trace(length=8_000),
                        window=2_000).series

    def test_jsonl_shape(self, tmp_path):
        series = self._series()
        path = tmp_path / "series.jsonl"
        series.save_jsonl(path)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        header, windows = lines[0], lines[1:]
        assert header["kind"] == "header"
        assert header["num_windows"] == series.num_windows
        assert len(windows) == series.num_windows
        assert all(record["kind"] == "window" for record in windows)
        assert [w["index"] for w in windows] == list(range(len(windows)))
        assert "miss_rate" in windows[0]["values"]

    def test_prometheus_counter_and_gauge_semantics(self, tmp_path):
        series = self._series()
        path = tmp_path / "metrics.prom"
        series.save_prometheus(path)
        text = path.read_text()
        assert "# TYPE repro_misses counter" in text
        assert "# TYPE repro_miss_rate gauge" in text
        total = sum(series.series["misses"])
        assert (
            f'repro_misses{{benchmark="{series.trace_name}",'
            f'scheme="STEM"}} {format(total, ".10g")}'
        ) in text

    def test_prometheus_help_lines_per_family(self, tmp_path):
        text = self._series().to_prometheus()
        # Every family leads with HELP then TYPE then its sample.
        lines = text.splitlines()
        assert len(lines) % 3 == 0
        for offset in range(0, len(lines), 3):
            assert lines[offset].startswith("# HELP repro_")
            assert lines[offset + 1].startswith("# TYPE repro_")
            assert lines[offset + 2].startswith("repro_")

    def test_prometheus_extra_labels_merge_sorted(self):
        series = self._series()
        text = series.to_prometheus(extra_labels={"run": "abc123"})
        assert (
            f'{{benchmark="{series.trace_name}",run="abc123",'
            'scheme="STEM"}'
        ) in text

    def test_exports_are_byte_stable(self, tmp_path):
        series = self._series()
        assert series.to_jsonl() == series.to_jsonl()
        assert series.to_prometheus() == series.to_prometheus()

    def test_dict_round_trip(self):
        series = self._series()
        rebuilt = MetricsSeries.from_dict(series.as_dict())
        assert fingerprint(rebuilt) == fingerprint(series)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError):
            MetricsSeries.from_dict({"scheme": "x"})


class TestPrometheusEdgeCases:
    """Exposition-format corners: escaping, empties, non-finite values."""

    def _series(self, scheme="STEM", trace="mcf", **series):
        windows = max((len(v) for v in series.values()), default=0)
        return MetricsSeries(
            window_length=1_000,
            scheme=scheme,
            trace_name=trace,
            window_accesses=[1_000] * windows,
            series={name: list(vals) for name, vals in series.items()},
        )

    def test_empty_series_is_zero_byte_exposition(self):
        assert self._series().to_prometheus() == ""

    def test_metric_with_no_samples_is_skipped(self):
        text = self._series(
            occupancy=[0.5], empty_gauge=[]
        ).to_prometheus()
        assert "repro_occupancy" in text
        assert "empty_gauge" not in text

    def test_label_values_are_escaped(self):
        series = self._series(
            scheme='ST"EM\\x', trace="line1\nline2", occupancy=[0.5]
        )
        text = series.to_prometheus()
        assert 'scheme="ST\\"EM\\\\x"' in text
        assert 'benchmark="line1\\nline2"' in text
        # The raw newline must not split the sample across lines:
        # exactly HELP + TYPE + one sample for the one family.
        assert len(text.splitlines()) == 3

    def test_non_finite_gauges_use_prometheus_spellings(self):
        text = self._series(
            nan_gauge=[float("nan")],
            pos_gauge=[float("inf")],
            neg_gauge=[float("-inf")],
        ).to_prometheus()
        assert 'repro_nan_gauge{benchmark="mcf",scheme="STEM"} NaN' in text
        assert 'repro_pos_gauge{benchmark="mcf",scheme="STEM"} +Inf' in text
        assert 'repro_neg_gauge{benchmark="mcf",scheme="STEM"} -Inf' in text
        # Python's own spellings must not leak into the exposition.
        assert "inf\n" not in text and " nan" not in text

    def test_escaped_export_still_saves_atomically(self, tmp_path):
        series = self._series(scheme='a"b', occupancy=[1.0])
        path = tmp_path / "edge.prom"
        series.save_prometheus(path)
        assert 'scheme="a\\"b"' in path.read_text()


class TestPersistence:
    def test_run_cache_round_trips_series(self):
        result = windowed("stem", small_trace(length=8_000), window=2_000)
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.series is not None
        assert fingerprint(rebuilt.series) == fingerprint(result.series)
        assert rebuilt.stats == result.stats

    def test_save_and_load_run(self, tmp_path):
        result = windowed("dip", small_trace(length=6_000), window=1_500)
        path = tmp_path / "run.json"
        save_run(path, result)
        loaded = load_run(path)
        assert loaded.scheme == result.scheme
        assert fingerprint(loaded.series) == fingerprint(result.series)

    def test_load_run_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="JSON"):
            load_run(path)
        path.write_text('{"format": 999}', encoding="utf-8")
        with pytest.raises(ConfigError, match="format"):
            load_run(path)
        with pytest.raises(ConfigError, match="cannot read"):
            load_run(tmp_path / "missing.json")

    def test_cache_key_sensitive_to_metrics_window(self):
        from dataclasses import replace

        from repro.sim.parallel import CellSpec, cell_cache_key

        trace = small_trace("vpr", 3_000)
        base = CellSpec(
            index=0, scheme="lru", label="lru", trace=trace,
            geometry=SCALE.geometry(), seed=1,
        )
        key = cell_cache_key(base)
        assert key is not None
        assert cell_cache_key(
            replace(base, metrics_window=2_000)
        ) != key

    def test_cached_grid_preserves_series(self, tmp_path):
        from repro.sim.runner import run_benchmarks

        run_cache = RunCache(tmp_path / "runs")
        kwargs = dict(
            benchmarks=["vpr"], scale=SCALE, run_cache=run_cache,
            metrics_window=2_000,
        )
        first = run_benchmarks(["stem"], **kwargs)
        assert (run_cache.hits, run_cache.misses) == (0, 1)
        second = run_benchmarks(["stem"], **kwargs)
        assert (run_cache.hits, run_cache.misses) == (1, 1)
        original = first.get("vpr", "STEM").series
        cached = second.get("vpr", "STEM").series
        assert fingerprint(cached) == fingerprint(original)


class TestTimelineRefactor:
    def test_timeline_matches_registry_sampling(self):
        trace = small_trace(length=6_000)
        timeline = run_timeline(
            make_scheme("stem", GEOMETRY, seed=3), trace,
            window_length=2_000,
        )
        cache = make_scheme("stem", GEOMETRY, seed=3)
        registry = MetricsRegistry(
            window_length=2_000, include_per_set=False
        )
        writes = trace.writes
        position = 0
        while position < len(trace.addresses):
            stop = min(position + 2_000, len(trace.addresses))
            for index in range(position, stop):
                is_write = bool(writes[index]) if writes is not None \
                    else False
                cache.access(trace.addresses[index], is_write)
            registry.sample(cache, stop - position)
            position = stop
        assert timeline.series == registry.series

    def test_timeline_includes_gauges(self):
        timeline = run_timeline(
            make_scheme("stem", GEOMETRY), small_trace(length=4_000),
            window_length=1_000,
        )
        assert "occupancy_fraction" in timeline.series
        assert timeline.num_windows == 4

    def test_timeline_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            run_timeline(
                make_scheme("lru", GEOMETRY), small_trace(length=1_000),
                window_length=0,
            )


class TestGlobalAccessClock:
    """Satellite: the warm-up reset must not rewind the event clock."""

    def test_reset_stats_preserves_global_accesses(self):
        cache = make_scheme("stem", GEOMETRY, seed=1)
        trace = small_trace(length=4_000)
        for address in trace.addresses[:2_000]:
            cache.access(address)
        assert cache.global_accesses == 2_000
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.global_accesses == 2_000
        for address in trace.addresses[2_000:]:
            cache.access(address)
        assert cache.global_accesses == 4_000

    def test_events_monotonic_across_warmup(self):
        sink = RingBufferSink()
        cache = make_scheme("stem", GEOMETRY, tracer=Tracer(sink))
        # warmup_fraction > 0 triggers reset_stats mid-stream — the old
        # `access` clock rewinds here, `global_access` must not.
        run_trace(cache, small_trace(length=12_000),
                  warmup_fraction=0.5)
        clocks = [event.global_access for event in sink.events]
        assert clocks, "expected events from a traced STEM run"
        assert all(clock >= 1 for clock in clocks)
        assert clocks == sorted(clocks)
        rewindable = [event.access for event in sink.events]
        assert rewindable != sorted(rewindable), (
            "warm-up should rewind the legacy access clock; if this "
            "stops holding, the regression guard needs a new trigger"
        )

    def test_manifest_hash_unchanged_by_clock_state(self):
        # _access_base is underscore-prefixed precisely so provenance
        # hashes ignore it; a warmed cache must hash like a fresh one.
        from repro.obs.manifest import describe_scheme

        fresh = make_scheme("stem", GEOMETRY, seed=1)
        warmed = make_scheme("stem", GEOMETRY, seed=1)
        for address in small_trace(length=1_000).addresses:
            warmed.access(address)
        warmed.reset_stats()
        description = describe_scheme(warmed)
        assert "_access_base" not in description["config"]
        assert "global_accesses" not in description["config"]
        assert description == describe_scheme(fresh)
