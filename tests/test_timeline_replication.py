"""Tests for windowed timelines and multi-seed replication."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.replication import compare_with_confidence, replicate
from repro.sim.timeline import run_timeline
from repro.workloads.mixes import phased_trace
from repro.workloads.generators import SetGroupSpec, WorkloadSpec
from repro.workloads.spec_like import BENCHMARKS, make_benchmark_trace

SMALL = ExperimentScale(num_sets=32, associativity=8, trace_length=10_000)


class TestTimeline:
    def test_validation(self):
        cache = make_scheme("LRU", SMALL.geometry())
        trace = make_benchmark_trace("vpr", num_sets=32, length=1000)
        with pytest.raises(ConfigError):
            run_timeline(cache, trace, window_length=0)

    def test_window_count_and_shape(self):
        cache = make_scheme("LRU", SMALL.geometry())
        trace = make_benchmark_trace("vpr", num_sets=32, length=2500)
        timeline = run_timeline(cache, trace, window_length=1000)
        assert timeline.num_windows == 3  # 1000, 1000, 500
        assert len(timeline.series["misses"]) == 3
        assert timeline.scheme == "LRU"

    def test_deltas_sum_to_totals(self):
        cache = make_scheme("STEM", SMALL.geometry())
        trace = make_benchmark_trace("mcf", num_sets=32, length=4000)
        timeline = run_timeline(cache, trace, window_length=1000)
        assert sum(timeline.series["misses"]) == cache.stats.misses
        assert sum(timeline.series["spills"]) == cache.stats.spills

    def test_cold_start_visible_in_first_window(self):
        cache = make_scheme("LRU", SMALL.geometry())
        trace = make_benchmark_trace("gromacs", num_sets=32, length=6000)
        timeline = run_timeline(cache, trace, window_length=1000)
        rates = timeline.series["miss_rate"]
        assert rates[0] > rates[-1]

    def test_phase_change_spikes_miss_rate(self):
        quiet = WorkloadSpec(
            name="q",
            groups=(SetGroupSpec(fraction=1.0, weight=1.0, kind="zipf",
                                 ws_min=4, ws_max=4),),
        )
        storm = WorkloadSpec(
            name="s",
            groups=(SetGroupSpec(fraction=1.0, weight=1.0, kind="cyclic",
                                 ws_min=24, ws_max=24),),
        )
        trace = phased_trace(
            [quiet, storm], phase_length=4000, num_sets=32
        )
        cache = make_scheme("LRU", SMALL.geometry())
        timeline = run_timeline(cache, trace, window_length=1000)
        # The worst window must fall in the storm phase.
        assert timeline.peak_window() >= 4

    def test_window_mpki(self):
        cache = make_scheme("LRU", SMALL.geometry())
        trace = make_benchmark_trace("mcf", num_sets=32, length=3000)
        timeline = run_timeline(cache, trace, window_length=1000)
        ipa = trace.metadata.instructions / len(trace)
        mpki = timeline.window_mpki(ipa)
        assert len(mpki) == timeline.num_windows
        assert all(value >= 0 for value in mpki)


class TestReplication:
    def test_requires_seeds(self):
        with pytest.raises(ConfigError):
            replicate("LRU", "vpr", seeds=())

    def test_summary_statistics(self):
        summary = replicate("LRU", "vpr", seeds=(0, 1, 2), scale=SMALL)
        assert len(summary.values) == 3
        assert summary.mean == pytest.approx(sum(summary.values) / 3)
        assert summary.spread >= 0
        assert summary.stdev >= 0

    def test_single_seed_has_zero_stdev(self):
        summary = replicate("LRU", "vpr", seeds=(0,), scale=SMALL)
        assert summary.stdev == 0.0

    def test_same_seed_reproduces(self):
        a = replicate("STEM", "mcf", seeds=(1,), scale=SMALL)
        b = replicate("STEM", "mcf", seeds=(1,), scale=SMALL)
        assert a.values == b.values

    def test_stem_dominates_lru_on_thrash_across_seeds(self):
        stem, lru, dominates = compare_with_confidence(
            "STEM", "LRU", "mcf", seeds=(0, 1),
            scale=ExperimentScale(num_sets=32, trace_length=30_000),
        )
        assert dominates
        assert stem.mean < lru.mean
