"""Per-benchmark structural properties of the 15 SPEC-like models.

Each modelled benchmark encodes specific set-level statistics taken
from the paper (DESIGN.md §4).  These tests pin those statistics down
so future retuning cannot silently change a benchmark's character.
"""

import pytest

from repro.analysis.reuse import summarize_reuse, working_set_sizes
from repro.workloads.spec_like import (
    BENCHMARKS,
    benchmark_names,
    make_benchmark_trace,
)

NUM_SETS = 64
LENGTH = 40_000


@pytest.fixture(scope="module")
def traces():
    return {
        name: make_benchmark_trace(name, num_sets=NUM_SETS, length=LENGTH)
        for name in benchmark_names()
    }


class TestUniversalProperties:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_every_set_receives_accesses(self, traces, name):
        sizes = working_set_sizes(traces[name], NUM_SETS)
        populated = sum(1 for size in sizes if size > 0)
        assert populated >= NUM_SETS * 0.95

    @pytest.mark.parametrize("name", benchmark_names())
    def test_metadata_matches_registry(self, traces, name):
        trace = traces[name]
        spec = BENCHMARKS[name]
        assert trace.metadata.spec_class == spec.spec_class
        assert trace.accesses_per_kilo_instruction == pytest.approx(
            spec.accesses_per_kilo_instruction, rel=0.01
        )


class TestClassOneShapes:
    def test_omnetpp_working_sets_span_figure1_range(self, traces):
        sizes = working_set_sizes(traces["omnetpp"], NUM_SETS)
        assert min(sizes) <= 10
        assert max(sizes) >= 25

    def test_ammp_has_streaming_and_tiny_sets(self, traces):
        sizes = working_set_sizes(traces["ammp"], NUM_SETS)
        tiny = sum(1 for size in sizes if size <= 4)
        huge = sum(1 for size in sizes if size > 100)  # streaming sets
        assert tiny >= NUM_SETS * 0.2
        assert huge >= NUM_SETS * 0.05

    def test_apsi_is_bimodal(self, traces):
        sizes = sorted(working_set_sizes(traces["apsi"], NUM_SETS))
        low_half = sizes[: NUM_SETS // 2]
        high_half = sizes[NUM_SETS // 2:]
        assert max(low_half) <= 10
        assert min(high_half) >= 10


class TestClassTwoShapes:
    @pytest.mark.parametrize("name", ["mcf", "sphinx3", "cactusADM"])
    def test_loops_exceed_pairing_reach(self, traces, name):
        # The dominant loops must exceed 2x the 16-way associativity so
        # pairwise cooperation cannot retain them (Example #3's regime).
        sizes = working_set_sizes(traces[name], NUM_SETS)
        big = sum(1 for size in sizes if size > 32)
        assert big >= NUM_SETS * 0.25

    def test_mcf_has_poor_locality(self, traces):
        summary = summarize_reuse(traces["mcf"], NUM_SETS)
        assert summary.distant_fraction > 0.5 or summary.median_distance > 16

    def test_art_fits_at_full_capacity(self, traces):
        # art's reused blocks sit well within 16 ways; only compulsory
        # (cold) misses remain, so no scheme can improve it.
        summary = summarize_reuse(traces["art"], NUM_SETS, clamp=32)
        assert summary.cold_fraction > 0.2
        assert summary.median_distance < 16


class TestClassThreeShapes:
    @pytest.mark.parametrize("name", ["gobmk", "gromacs", "twolf", "vpr"])
    def test_good_locality(self, traces, name):
        summary = summarize_reuse(traces[name], NUM_SETS, clamp=32)
        assert summary.median_distance < 16
        assert summary.distant_fraction < 0.25

    def test_soplex_is_compulsory_dominated(self, traces):
        summary = summarize_reuse(traces["soplex"], NUM_SETS)
        assert summary.cold_fraction > 0.3

    @pytest.mark.parametrize("name", ["gobmk", "gromacs"])
    def test_uniform_demand(self, traces, name):
        # Class III sets look alike: working-set sizes cluster tightly
        # around the population median (streaming tails excluded).
        sizes = sorted(working_set_sizes(traces[name], NUM_SETS))
        trimmed = sizes[NUM_SETS // 8: -NUM_SETS // 8]
        assert max(trimmed) <= 3 * max(1, min(trimmed))
