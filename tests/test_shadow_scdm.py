"""Tests for shadow sets and the Set-level Capacity Demand Monitor."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.core.scdm import SetMonitor
from repro.core.shadow import ShadowSet


class TestShadowSet:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            ShadowSet(0)

    def test_insert_and_hit_invalidate(self):
        shadow = ShadowSet(4)
        shadow.insert(0x3A, at_mru=True)
        assert 0x3A in shadow
        assert shadow.lookup_and_invalidate(0x3A)
        # Exclusivity: a hit removes the entry (Section 4.3).
        assert 0x3A not in shadow
        assert not shadow.lookup_and_invalidate(0x3A)

    def test_capacity_bounded_with_lru_eviction(self):
        shadow = ShadowSet(2)
        shadow.insert(1, at_mru=True)
        shadow.insert(2, at_mru=True)
        shadow.insert(3, at_mru=True)
        assert len(shadow) == 2
        assert 1 not in shadow  # LRU entry dropped

    def test_lru_position_insert_is_next_victim(self):
        # BIP-style shadow insertion: LRU-position entries get replaced
        # first, filtering a thrashing eviction stream.
        shadow = ShadowSet(2)
        shadow.insert(1, at_mru=True)
        shadow.insert(2, at_mru=False)
        shadow.insert(3, at_mru=True)
        assert 2 not in shadow
        assert 1 in shadow

    def test_duplicate_insert_reranks(self):
        shadow = ShadowSet(3)
        shadow.insert(1, at_mru=True)
        shadow.insert(2, at_mru=True)
        shadow.insert(1, at_mru=True)
        assert len(shadow) == 2
        assert shadow.entries() == (2, 1)


class TestSetMonitor:
    def make_monitor(self, n=3):
        return SetMonitor(
            associativity=4, counter_bits=4, spatial_ratio_bits=n
        )

    def test_shadow_hit_pulses_both_counters(self):
        monitor = self.make_monitor()
        monitor.record_victim(0x5, at_mru=True)
        assert monitor.probe_shadow(0x5)
        assert monitor.sc_s.value == 1
        assert monitor.sc_t.value == 1

    def test_shadow_miss_leaves_counters(self):
        monitor = self.make_monitor()
        assert not monitor.probe_shadow(0x5)
        assert monitor.sc_s.value == 0
        assert monitor.sc_t.value == 0

    def test_local_hit_always_decrements_sc_t(self):
        monitor = self.make_monitor()
        monitor.sc_t.reset(5)
        monitor.record_local_hit(Lfsr())
        assert monitor.sc_t.value == 4

    def test_local_hit_decrements_sc_s_at_one_in_2n(self):
        monitor = self.make_monitor(n=3)
        monitor.sc_s.reset(15)
        rng = Lfsr(seed=0x1357)
        for _ in range(800):
            monitor.record_local_hit(rng)
        # ~800/8 = 100 decrements, far beyond 15: must have unsaturated.
        assert monitor.sc_s.value == 0

    def test_taker_and_giver_thresholds(self):
        monitor = self.make_monitor()
        assert monitor.is_giver          # MSB of 0 is 0
        assert not monitor.is_taker
        monitor.sc_s.reset(8)            # MSB set
        assert not monitor.is_giver
        assert not monitor.is_taker
        monitor.sc_s.reset(15)
        assert monitor.is_taker

    def test_policy_swap_protocol(self):
        monitor = self.make_monitor()
        monitor.sc_t.reset(15)
        assert monitor.wants_policy_swap
        monitor.acknowledge_policy_swap()
        assert monitor.sc_t.value == 0
        assert not monitor.wants_policy_swap

    def test_saturation_exposed_for_heap_ordering(self):
        monitor = self.make_monitor()
        monitor.sc_s.reset(3)
        assert monitor.saturation == 3
