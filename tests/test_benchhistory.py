"""Tests for the bench-history ledger and trajectory detector."""

import json

import pytest

from repro._version import __version__
from repro.cli import main
from repro.common.errors import ConfigError
from repro.obs.benchhistory import (
    append_history,
    detect_regressions,
    history_document,
    load_history,
    machine_params,
    make_entry,
    render_history,
    scheme_trajectories,
)


def entry(rates, recorded_at="2026-08-08T00:00:00+00:00"):
    return make_entry(
        {
            name: {"accesses_per_sec": rate, "manifest_hash": f"h-{name}"}
            for name, rate in rates.items()
        },
        recorded_at=recorded_at,
    )


class TestLedger:
    def test_entry_shape(self):
        record = entry({"lru": 100.0, "stem": 50.0})
        assert record["package_version"] == __version__
        assert record["machine"] == machine_params()
        assert record["schemes"]["lru"] == {
            "accesses_per_sec": 100.0, "manifest_hash": "h-lru",
        }

    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger" / "BENCH_HISTORY.jsonl"
        first = entry({"lru": 100.0})
        second = entry({"lru": 110.0}, recorded_at="2026-08-08T01:00:00+00:00")
        append_history(path, first)
        append_history(path, second)
        assert load_history(path) == [first, second]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(path, entry({"lru": 100.0}))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"recorded_at": "2026-')
        history = load_history(path)
        assert len(history) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            'not json at all\n'
            + json.dumps(entry({"lru": 100.0})) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(ConfigError, match="malformed ledger line"):
            load_history(path)


class TestTrajectories:
    def test_scheme_trajectories_skip_gaps(self):
        history = [
            entry({"lru": 100.0, "stem": 40.0}),
            entry({"lru": 110.0}),
            entry({"lru": 120.0, "stem": 44.0}),
        ]
        assert scheme_trajectories(history) == {
            "lru": [100.0, 110.0, 120.0],
            "stem": [40.0, 44.0],
        }

    def test_detects_regression_against_recent_best(self):
        history = [entry({"lru": rate}) for rate in (100.0, 105.0, 70.0)]
        verdicts = detect_regressions(history, ratio=0.8)
        assert len(verdicts) == 1
        verdict = verdicts[0]
        assert verdict.regressed
        assert verdict.reference == 105.0
        assert verdict.latest == 70.0
        assert "REGRESSED" in str(verdict)

    def test_ok_within_ratio(self):
        history = [entry({"lru": rate}) for rate in (100.0, 95.0)]
        (verdict,) = detect_regressions(history, ratio=0.8)
        assert not verdict.regressed
        assert "ok" in str(verdict)

    def test_stepwise_drift_is_caught_from_the_peak(self):
        # Each step stays above 0.8x of its predecessor, but the latest
        # has drifted below 0.8x of the windowed best — the failure mode
        # single-snapshot guards cannot see.
        rates = (100.0, 90.0, 82.0, 75.0)
        history = [entry({"lru": rate}) for rate in rates]
        (verdict,) = detect_regressions(history, ratio=0.8)
        assert verdict.reference == 100.0
        assert verdict.regressed

    def test_reference_window_limits_lookback(self):
        # The century-old peak falls outside a window of 2.
        rates = (1000.0, 80.0, 82.0, 75.0)
        history = [entry({"lru": rate}) for rate in rates]
        (verdict,) = detect_regressions(
            history, ratio=0.8, reference_window=2
        )
        assert verdict.reference == 82.0
        assert not verdict.regressed

    def test_single_point_has_no_trajectory(self):
        assert detect_regressions([entry({"lru": 100.0})]) == []

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            detect_regressions([], ratio=0.0)
        with pytest.raises(ConfigError):
            detect_regressions([], reference_window=0)


class TestRendering:
    def test_empty_history(self):
        assert "no entries" in render_history([])

    def test_trend_view(self):
        history = [
            entry({"lru": 100.0, "stem": 50.0}),
            entry({"lru": 120.0, "stem": 30.0}),
        ]
        rendered = render_history(history, ratio=0.8)
        assert "2 recording(s)" in rendered
        assert "lru" in rendered and "stem" in rendered
        assert "REGRESSED" in rendered  # stem fell to 0.6x
        assert "1 scheme(s) below 0.80x" in rendered

    def test_cli_history_view(self, tmp_path, capsys):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(path, entry({"lru": 100.0}))
        append_history(path, entry({"lru": 110.0}))
        code = main(["bench", "--history", "--history-file", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench history: 2 recording(s)" in out
        assert "lru" in out

    def test_cli_history_corrupt_ledger_exits_2(self, tmp_path, capsys):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        path.write_text("garbage\n" + json.dumps(entry({"lru": 1.0})) + "\n")
        code = main(["bench", "--history", "--history-file", str(path)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err


class TestHistoryDocument:
    def test_document_shape(self):
        history = [
            entry({"lru": 100.0, "stem": 100.0}),
            entry({"lru": 101.0, "stem": 50.0},
                  recorded_at="2026-08-08T01:00:00+00:00"),
        ]
        document = history_document(history)
        assert document["entries"] == 2
        assert document["first_recorded_at"] == "2026-08-08T00:00:00+00:00"
        assert document["last_recorded_at"] == "2026-08-08T01:00:00+00:00"
        assert document["regressed"] == ["stem"]
        verdicts = {v["scheme"]: v for v in document["verdicts"]}
        assert not verdicts["lru"]["regressed"]
        assert verdicts["stem"] == {
            "scheme": "stem", "latest": 50.0, "reference": 100.0,
            "ratio": 0.5, "regressed": True,
        }

    def test_empty_history_document(self):
        document = history_document([])
        assert document["entries"] == 0
        assert document["first_recorded_at"] is None
        assert document["regressed"] == []

    def test_cli_json_ok_exits_0(self, tmp_path, capsys):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(path, entry({"lru": 100.0}))
        append_history(path, entry({"lru": 110.0}))
        code = main([
            "bench", "--history", "--json", "--history-file", str(path)
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["regressed"] == []

    def test_cli_json_regression_exits_3(self, tmp_path, capsys):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(path, entry({"lru": 100.0}))
        append_history(path, entry({"lru": 10.0}))
        code = main([
            "bench", "--history", "--json", "--history-file", str(path)
        ])
        assert code == 3
        document = json.loads(capsys.readouterr().out)
        assert document["regressed"] == ["lru"]


class TestCommittedLedger:
    def test_repo_ledger_parses(self):
        # The committed ledger at the repo root must always load.
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_HISTORY.jsonl"
        history = load_history(path)
        assert history, "committed BENCH_HISTORY.jsonl is empty"
        for record in history:
            assert "schemes" in record and "machine" in record
