"""The columnar backend's exactness contract (DESIGN.md §13).

Every test here compares the numpy columnar path against the scalar
oracle on the surfaces the contract covers: raw counters, manifest
content hashes, windowed metric series, the RNG stream, and the final
cache state up to way relabelling (resident tags, recency order,
dirty-by-tag, free-way count — the way *labels* are explicitly outside
the contract because no observable surface exposes them).

The whole module skips when numpy is missing — except that the
missing-numpy behaviour itself is tested by monkeypatching the module,
so it runs wherever the rest does.
"""

import pickle
import random
import warnings

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import compose_address, random_addresses
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.obs import RingBufferSink, Tracer
from repro.resilience.harness import RetryPolicy, guarded_run
from repro.sim import columnar
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.parallel import CellSpec, cell_cache_key
from repro.sim.runner import run_matrix
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.trace import Trace, TraceMetadata

GEOMETRY = CacheGeometry(num_sets=16, associativity=4, line_size=64)


def semantic_state(cache):
    """Final cache state, way-label free: what the contract pins.

    Per set: the resident tag set, the LRU-to-MRU *tag* order, each
    tag's dirty bit, and the free-way count.  Every observable — hits,
    victims, write-backs, continuation behaviour — is a function of
    exactly these, never of which physical way holds which tag.
    """
    out = []
    for set_index in range(cache.geometry.num_sets):
        table = cache._tag_to_way[set_index]
        order_tags = tuple(
            cache._way_tag[set_index][way]
            for way in cache.policy._order[set_index]
        )
        dirty = {
            tag: cache._dirty[set_index][way] for tag, way in table.items()
        }
        out.append((
            frozenset(table), order_tags, dirty,
            len(cache._free_ways[set_index]),
        ))
    return out


def both_backends(trace, geometry, scheme="lru", **kwargs):
    """Run ``trace`` through both backends on fresh caches."""
    cache_py = make_scheme(scheme, geometry)
    result_py = run_trace(cache_py, trace, backend="python", **kwargs)
    cache_np = make_scheme(scheme, geometry)
    result_np = run_trace(cache_np, trace, backend="numpy", **kwargs)
    return cache_py, result_py, cache_np, result_np


def make_trace(addresses, writes=None, name="columnar-test"):
    return Trace(
        TraceMetadata(name=name, instructions=max(1, len(addresses) * 3)),
        addresses,
        writes,
    )


class TestExactnessPinning:
    """backend="numpy" is byte-identical to the scalar oracle."""

    def test_benchmark_trace_stats_manifest_rng_identical(self):
        geometry = CacheGeometry(num_sets=64, associativity=16, line_size=64)
        trace = make_benchmark_trace("omnetpp", num_sets=64, length=60_000)
        cache_py, result_py, cache_np, result_np = both_backends(
            trace, geometry
        )
        assert result_np.backend == "numpy"
        assert result_py.backend == "python"
        assert (result_np.stats.counter_snapshot()
                == result_py.stats.counter_snapshot())
        assert (result_np.manifest.content_hash
                == result_py.manifest.content_hash)
        assert result_np.metrics == result_py.metrics
        assert cache_np.rng.state == cache_py.rng.state
        assert semantic_state(cache_np) == semantic_state(cache_py)
        cache_np.check_invariants()

    def test_windowed_series_identical(self):
        trace = make_benchmark_trace("vpr", num_sets=16, length=24_000)
        geometry = CacheGeometry(num_sets=16, associativity=16, line_size=64)
        _, result_py, _, result_np = both_backends(
            trace, geometry, metrics_window=5_000
        )
        assert result_np.backend == "numpy"
        assert result_np.series.as_dict() == result_py.series.as_dict()

    def test_write_trace_dirty_state_and_writebacks_identical(self):
        rng = random.Random(11)
        addresses = random_addresses(GEOMETRY, 8_000, tag_space=24)
        writes = [rng.random() < 0.4 for _ in addresses]
        trace = make_trace(addresses, writes)
        cache_py, result_py, cache_np, result_np = both_backends(
            trace, GEOMETRY
        )
        assert result_np.backend == "numpy"
        assert result_py.stats.writebacks > 0  # the path under test ran
        assert (result_np.stats.counter_snapshot()
                == result_py.stats.counter_snapshot())
        assert semantic_state(cache_np) == semantic_state(cache_py)

    def test_continuation_after_sync_is_equivalent(self):
        # The synced cache must behave exactly like the scalar-run one
        # for any future accesses: hits, victims, write-backs, stats.
        trace = make_trace(random_addresses(GEOMETRY, 6_000, tag_space=24))
        cache_py, _, cache_np, _ = both_backends(trace, GEOMETRY)
        rng = random.Random(3)
        for _ in range(4_000):
            address = compose_address(
                GEOMETRY, rng.randrange(24), rng.randrange(16)
            )
            is_write = rng.random() < 0.3
            assert (cache_py.access(address, is_write)
                    == cache_np.access(address, is_write))
        assert (cache_py.stats.counter_snapshot()
                == cache_np.stats.counter_snapshot())

    def test_scalar_fallback_sets_are_exact(self):
        # A stream engineered so one set fails every ladder rung (few
        # distinct tags per lookback window, sporadic revisits of
        # ancient tags): those accesses run through the real cache
        # while other sets stay columnar, and the mix must still be
        # exact end to end.
        rng = random.Random(1)
        geometry = CacheGeometry(num_sets=2, associativity=8, line_size=64)
        addresses, writes = [], []
        for i in range(16_000):
            set_index = i % 2
            if set_index == 0:
                if rng.random() < 0.006:
                    tag = rng.randrange(60)
                else:
                    tag = 100 + (i // 2_000) % 2
            else:
                tag = rng.randrange(12)
            addresses.append(compose_address(geometry, tag, set_index))
            writes.append(rng.random() < 0.3)
        trace = make_trace(addresses, writes, name="adversarial")
        cache_py, result_py, cache_np, result_np = both_backends(
            trace, geometry, metrics_window=3_000
        )
        plan = trace._columnar_plans[(6, 1, 8, True)]
        assert list(plan["scalar_sets"]) == [0]  # the fallback fired
        assert result_np.backend == "numpy"
        assert (result_np.stats.counter_snapshot()
                == result_py.stats.counter_snapshot())
        assert result_np.series.as_dict() == result_py.series.as_dict()
        assert semantic_state(cache_np) == semantic_state(cache_py)
        cache_np.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_sets=st.sampled_from([2, 4, 8]),
        assoc=st.sampled_from([2, 3, 4, 8]),
        length=st.integers(1, 400),
        tag_space=st.sampled_from([3, 6, 20, 200]),
        warmup=st.sampled_from([0.0, 0.25]),
        with_writes=st.booleans(),
    )
    def test_fuzz_random_traces_are_exact(
        self, seed, num_sets, assoc, length, tag_space, warmup, with_writes
    ):
        rng = random.Random(seed)
        geometry = CacheGeometry(
            num_sets=num_sets, associativity=assoc, line_size=64
        )
        addresses = [
            compose_address(
                geometry, rng.randrange(tag_space), rng.randrange(num_sets)
            )
            for _ in range(length)
        ]
        writes = (
            [rng.random() < 0.4 for _ in range(length)]
            if with_writes else None
        )
        trace = make_trace(addresses, writes, name=f"fuzz-{seed}")
        cache_py, result_py, cache_np, result_np = both_backends(
            trace, geometry, warmup_fraction=warmup
        )
        assert result_np.backend == "numpy"
        assert (result_np.stats.counter_snapshot()
                == result_py.stats.counter_snapshot())
        assert (result_np.manifest.content_hash
                == result_py.manifest.content_hash)
        assert semantic_state(cache_np) == semantic_state(cache_py)
        cache_np.check_invariants()


class TestBackendResolution:
    """auto/python/numpy selection and transparent fallback."""

    def test_invalid_backend_raises(self):
        trace = make_trace(random_addresses(GEOMETRY, 100))
        with pytest.raises(ConfigError):
            run_trace(make_scheme("lru", GEOMETRY), trace, backend="cuda")

    def test_auto_picks_numpy_for_eligible_lru(self):
        trace = make_trace(random_addresses(GEOMETRY, 2_000))
        result = run_trace(make_scheme("lru", GEOMETRY), trace)
        assert result.backend == "numpy"

    @pytest.mark.parametrize("scheme", ["dip", "stem", "fifo", "random"])
    def test_schemes_without_kernel_fall_back_identically(self, scheme):
        # An explicit numpy request on a kernel-less scheme silently
        # runs scalar — and must be indistinguishable from asking for
        # scalar in the first place.
        trace = make_trace(random_addresses(GEOMETRY, 4_000, tag_space=32))
        cache_py, result_py, cache_np, result_np = both_backends(
            trace, GEOMETRY, scheme=scheme
        )
        assert result_np.backend == "python"
        assert (result_np.stats.counter_snapshot()
                == result_py.stats.counter_snapshot())
        assert (result_np.manifest.content_hash
                == result_py.manifest.content_hash)
        assert cache_np.rng.state == cache_py.rng.state

    def test_traced_cache_falls_back(self):
        # Event tracing needs per-access execution; the kernel would
        # silently drop the event stream, so eligibility rejects it.
        trace = make_trace(random_addresses(GEOMETRY, 1_000))
        cache = make_scheme("lru", GEOMETRY, tracer=Tracer(RingBufferSink()))
        result = run_trace(cache, trace, backend="numpy")
        assert result.backend == "python"

    def test_non_pristine_cache_falls_back(self):
        # The kernel derives state from the trace alone, so a cache
        # that has already served accesses must run scalar.
        trace = make_trace(random_addresses(GEOMETRY, 1_000))
        cache = make_scheme("lru", GEOMETRY)
        cache.access(compose_address(GEOMETRY, 1, 0))
        assert not columnar.kernel_eligible(cache)

    def test_instance_access_override_falls_back(self):
        # A spy/wrapper installed as an instance attribute expects to
        # see every access; the kernel would bypass it.
        cache = make_scheme("lru", GEOMETRY)
        cache.access_batch = lambda *args: None
        assert not columnar.kernel_eligible(cache)

    def test_missing_numpy_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        monkeypatch.setattr(columnar, "_warned_missing_numpy", False)
        trace = make_trace(random_addresses(GEOMETRY, 1_500))
        with pytest.warns(UserWarning, match="falls? back|fall back"):
            result = run_trace(make_scheme("lru", GEOMETRY), trace)
        assert result.backend == "python"
        # One warning per process: the second run stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = run_trace(make_scheme("lru", GEOMETRY), trace)
        assert again.backend == "python"

    def test_missing_numpy_python_backend_is_silent(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        monkeypatch.setattr(columnar, "_warned_missing_numpy", False)
        trace = make_trace(random_addresses(GEOMETRY, 1_500))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_trace(
                make_scheme("lru", GEOMETRY), trace, backend="python"
            )
        assert result.backend == "python"


class TestPlanCaching:
    """Plans amortise across runs and never leak into pickles."""

    def test_plan_cached_per_geometry_and_reused(self):
        trace = make_trace(random_addresses(GEOMETRY, 3_000))
        run_trace(make_scheme("lru", GEOMETRY), trace, backend="numpy")
        assert len(trace._columnar_plans) == 1
        plan = next(iter(trace._columnar_plans.values()))
        run_trace(make_scheme("lru", GEOMETRY), trace, backend="numpy")
        assert next(iter(trace._columnar_plans.values())) is plan

    def test_pickle_drops_plans(self):
        trace = make_trace(random_addresses(GEOMETRY, 3_000))
        run_trace(make_scheme("lru", GEOMETRY), trace, backend="numpy")
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._columnar_plans == {}
        assert clone.addresses == trace.addresses


class TestOrchestrationThreading:
    """backend flows through guarded_run, grids and cache keys."""

    def test_guarded_run_uses_backend(self):
        trace = make_trace(random_addresses(GEOMETRY, 3_000))
        outcome = guarded_run(
            lambda seed: make_scheme("lru", GEOMETRY, seed=seed),
            trace,
            scheme="lru",
            base_seed=7,
            backend="numpy",
        )
        assert outcome.backend == "numpy"

    def test_guarded_run_retries_force_scalar(self):
        # Attempt 1 fails (poisoned factory); attempt 2 must run the
        # scalar oracle even though numpy was requested.
        trace = make_trace(random_addresses(GEOMETRY, 2_000))
        attempts = []

        def factory(seed):
            attempts.append(seed)
            if len(attempts) == 1:
                raise RuntimeError("poisoned first attempt")
            return make_scheme("lru", GEOMETRY, seed=seed)

        outcome = guarded_run(
            factory,
            trace,
            scheme="lru",
            base_seed=7,
            retry=RetryPolicy(max_attempts=2),
            backend="numpy",
        )
        assert len(attempts) == 2
        assert outcome.backend == "python"

    def test_run_matrix_backends_agree(self):
        scale = ExperimentScale(
            num_sets=16, associativity=8, trace_length=6_000
        )
        traces = [make_trace(
            random_addresses(scale.geometry(), 6_000, tag_space=40),
            name="grid",
        )]
        matrix_py = run_matrix(
            traces, ["lru", "dip"], scale=scale, backend="python"
        )
        matrix_np = run_matrix(
            traces, ["lru", "dip"], scale=scale, backend="numpy"
        )
        table_py = matrix_py.metric_table(lambda result: result.mpki)
        table_np = matrix_np.metric_table(lambda result: result.mpki)
        assert table_py == table_np
        lru_np = matrix_np.get("grid", "LRU")
        assert lru_np.backend == "numpy"
        assert matrix_np.get("grid", "DIP").backend == "python"

    def test_campaign_spec_backend_parse_and_digest(self, tmp_path):
        import json

        from repro.common.errors import CampaignSpecError
        from repro.sim.campaign import load_campaign_spec

        base = {"schemes": ["lru"], "benchmarks": ["mcf"]}

        def write(document, name):
            path = tmp_path / name
            path.write_text(json.dumps(document), encoding="utf-8")
            return path

        plain = load_campaign_spec(write(base, "plain.json"))
        assert plain.backend is None
        explicit = load_campaign_spec(
            write({**base, "backend": "numpy"}, "plain.json")
        )
        assert explicit.backend == "numpy"
        # Specs predating the backend key keep their journal digests:
        # only an explicit backend changes the digest payload.
        assert explicit.digest() != plain.digest()
        with pytest.raises(CampaignSpecError):
            load_campaign_spec(write({**base, "backend": "cuda"}, "bad.json"))

    def test_cell_cache_key_ignores_backend(self):
        # A cached scalar result must satisfy a numpy request (and vice
        # versa): the exactness contract makes them the same result.
        trace = make_trace(random_addresses(GEOMETRY, 1_000))
        specs = [
            CellSpec(
                index=0, scheme="lru", label="lru", trace=trace,
                geometry=GEOMETRY, seed=7, backend=backend,
            )
            for backend in (None, "python", "numpy")
        ]
        keys = {cell_cache_key(spec) for spec in specs}
        assert len(keys) == 1
