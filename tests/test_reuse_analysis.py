"""Tests for the reuse-distance analyses."""

import pytest

from repro.analysis.reuse import (
    lru_miss_curve,
    summarize_reuse,
    working_set_sizes,
)
from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.synthetic import interleaved_cyclic_trace


def single_kind_trace(kind, ws, num_sets=8, length=4000, **kwargs):
    spec = WorkloadSpec(
        name="t",
        groups=(SetGroupSpec(fraction=1.0, weight=1.0, kind=kind,
                             ws_min=ws, ws_max=ws, **kwargs),),
    )
    return generate_trace(spec, num_sets=num_sets, length=length, seed=3)


class TestSummarizeReuse:
    def test_validation(self):
        trace = single_kind_trace("cyclic", 4)
        with pytest.raises(ConfigError):
            summarize_reuse(trace, num_sets=8, clamp=0)

    def test_streaming_is_all_cold(self):
        trace = single_kind_trace("streaming", 1)
        summary = summarize_reuse(trace, num_sets=8)
        assert summary.cold_fraction > 0.99

    def test_cyclic_distances_cluster_at_ws_minus_one(self):
        trace = single_kind_trace("cyclic", 6)
        summary = summarize_reuse(trace, num_sets=8)
        assert summary.median_distance == 5
        assert summary.cold_fraction < 0.05

    def test_recency_is_shallow(self):
        trace = single_kind_trace(
            "recency", 1, reuse_mean=4.0, new_fraction=0.1
        )
        summary = summarize_reuse(trace, num_sets=8)
        assert summary.median_distance < 8
        assert summary.distant_fraction < 0.1


class TestLruMissCurve:
    def test_validation(self):
        trace = single_kind_trace("cyclic", 4)
        with pytest.raises(ConfigError):
            lru_miss_curve(trace, num_sets=8, associativities=[])
        with pytest.raises(ConfigError):
            lru_miss_curve(trace, num_sets=8, associativities=[128],
                           clamp=64)

    def test_monotone_nonincreasing(self):
        trace = make_benchmark_trace("omnetpp", num_sets=32, length=20_000)
        curve = lru_miss_curve(trace, num_sets=32,
                               associativities=[2, 4, 8, 16, 32])
        values = [curve[a] for a in (2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_matches_real_lru_cache(self):
        trace = interleaved_cyclic_trace((6, 2), rounds=500)
        curve = lru_miss_curve(trace, num_sets=2, associativities=[4])
        geometry = CacheGeometry(num_sets=2, associativity=4)
        cache = SetAssociativeCache(geometry, LruPolicy())
        misses = sum(
            0 if cache.access(a).is_hit else 1 for a in trace.addresses
        )
        assert curve[4] == pytest.approx(misses / len(trace))


class TestWorkingSetSizes:
    def test_cyclic_sizes_exact(self):
        trace = interleaved_cyclic_trace((6, 2), rounds=200)
        sizes = working_set_sizes(trace, num_sets=2)
        assert sizes == [6, 2]

    def test_streaming_grows_with_length(self):
        short = single_kind_trace("streaming", 1, length=800)
        long = single_kind_trace("streaming", 1, length=4000)
        assert sum(working_set_sizes(long, 8)) > sum(
            working_set_sizes(short, 8)
        )
