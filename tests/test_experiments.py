"""Tests for the experiment modules (scaled down for speed)."""

import pytest

from repro.experiments import (
    ablations,
    evaluation,
    figure1,
    figure2,
    figure3,
    figure7,
    figure10,
    headline,
    table2,
    table3,
)
from repro.sim.config import ExperimentScale

SMOKE = ExperimentScale(num_sets=64, associativity=16, trace_length=40_000)


@pytest.fixture(autouse=True)
def _fresh_evaluation_cache():
    evaluation.clear_cache()
    yield
    evaluation.clear_cache()


class TestFigure1:
    def test_omnetpp_demand_is_spread(self):
        result = figure1.run(
            "omnetpp", scale=SMOKE, num_intervals=4, interval_length=8000
        )
        # Paper: about half the sets need no more than 16 lines.
        assert 0.25 <= result.fraction_le_16 <= 0.85
        # And a substantial share needs more than 16.
        assert result.fraction_le_16 < 0.95

    def test_ammp_has_small_demand_and_streaming_band(self):
        result = figure1.run(
            "ammp", scale=SMOKE, num_intervals=4, interval_length=8000
        )
        # Paper: about half the sets need no more than 4 lines.
        assert result.fraction_le_4 > 0.3
        zero_band = result.mean_bands[(0, 0)]
        assert zero_band > 0.05  # the streaming "blue band"

    def test_main_renders(self, capsys):
        figure1.main(scale=ExperimentScale(num_sets=32, trace_length=8000))
        output = capsys.readouterr().out
        assert "Figure 1" in output


class TestFigure2:
    def test_example1_matches_paper(self):
        result = figure2.run(1, rounds=2048)
        assert result.measured["LRU"] == pytest.approx(0.5, abs=0.02)
        assert result.measured["DIP"] == pytest.approx(0.25, abs=0.03)
        assert result.measured["SBC"] == pytest.approx(0.0, abs=0.02)
        assert result.measured["STEM"] == pytest.approx(0.0, abs=0.02)

    def test_example2_matches_paper(self):
        result = figure2.run(2, rounds=2048)
        assert result.measured["LRU"] == pytest.approx(0.5, abs=0.02)
        assert result.measured["DIP"] == pytest.approx(0.25, abs=0.03)
        assert result.measured["SBC"] == pytest.approx(1 / 3, abs=0.08)
        # The extensional claim: STEM beats both DIP and SBC here.
        assert result.measured["STEM"] < result.measured["SBC"]
        assert result.measured["STEM"] < result.measured["DIP"]

    def test_example3_matches_paper(self):
        result = figure2.run(3, rounds=2048)
        assert result.measured["LRU"] == pytest.approx(1.0, abs=0.01)
        assert result.measured["SBC"] == pytest.approx(1.0, abs=0.02)
        assert result.measured["DIP"] == pytest.approx(0.45, abs=0.05)
        # STEM's per-set duel matches oracle DIP without oracle help.
        assert result.measured["STEM"] < 0.6

    def test_main_renders(self, capsys):
        figure2.main(rounds=512)
        assert "Figure 2" in capsys.readouterr().out


class TestSweeps:
    def test_figure3_curves_have_paper_shape(self):
        result = figure3.run(
            "omnetpp",
            associativities=(2, 16, 32),
            scale=ExperimentScale(num_sets=64, trace_length=30_000),
        )
        lru = result.mpki["LRU"]
        dip = result.mpki["DIP"]
        sbc = result.mpki["SBC"]
        # Low associativity: DIP (temporal) beats SBC (no givers).
        assert dip[0] < sbc[0]
        # All schemes converge once capacity suffices.
        assert lru[2] == pytest.approx(dip[2], rel=0.25, abs=0.5)

    def test_figure10_adds_stem_and_stem_tracks_best(self):
        result = figure10.run(
            "omnetpp",
            associativities=(2, 16),
            scale=ExperimentScale(num_sets=64, trace_length=30_000),
        )
        assert "STEM" in result.mpki
        others_best = min(
            result.mpki[s][1] for s in result.mpki if s != "STEM"
        )
        assert result.mpki["STEM"][1] <= others_best * 1.25


class TestEvaluationFigures:
    def test_matrix_cached_between_figures(self):
        small = ExperimentScale(num_sets=32, trace_length=6000)
        first = evaluation.run_evaluation(
            scale=small, schemes=("LRU", "STEM"), benchmarks=("vpr",)
        )
        second = evaluation.run_evaluation(
            scale=small, schemes=("LRU", "STEM"), benchmarks=("vpr",)
        )
        assert first is second

    def test_figure7_normalized_and_geomean(self):
        small = ExperimentScale(num_sets=32, trace_length=6000)
        table = figure7.run(
            scale=small, schemes=("LRU", "STEM"), benchmarks=("vpr", "mcf")
        )
        assert table["vpr"]["LRU"] == pytest.approx(1.0)
        assert "Geomean" in table

    def test_headline_runs_on_small_scale(self):
        small = ExperimentScale(num_sets=32, trace_length=6000)
        evaluation.clear_cache()
        matrix = evaluation.run_evaluation(
            scale=small,
            schemes=("LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM"),
            benchmarks=("vpr", "mcf", "omnetpp"),
        )
        assert len(matrix.workloads) == 3


class TestTables:
    def test_table2_rows_cover_all_benchmarks(self):
        rows = table2.run(
            scale=ExperimentScale(num_sets=32, trace_length=5000),
            classify=False,
        )
        assert len(rows) == 15
        assert all(row.measured_mpki >= 0 for row in rows)

    def test_table3_reproduces_3_1_percent(self):
        reports = table3.run()
        assert reports["STEM"].overhead_percent == pytest.approx(
            table3.PAPER_STEM_OVERHEAD_PERCENT, abs=0.1
        )

    def test_table3_main_renders(self, capsys):
        table3.main()
        output = capsys.readouterr().out
        assert "3.1" in output or "3.16" in output


class TestAblations:
    def test_variants_run_and_differ(self):
        result = ablations.run(
            benchmarks=("omnetpp",),
            scale=ExperimentScale(num_sets=32, trace_length=8000),
        )
        row = result.mpki["omnetpp"]
        assert set(result.variants) == set(row)
        assert len({round(v, 6) for v in row.values()}) > 1
