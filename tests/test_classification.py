"""Tests for the Figure 6 workload classifier."""

import pytest

from repro.analysis.classification import classify_trace
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace
from repro.workloads.spec_like import make_benchmark_trace


def classify_spec(groups, num_sets=32, length=20_000, associativity=16):
    spec = WorkloadSpec(name="probe", groups=groups)
    trace = generate_trace(spec, num_sets=num_sets, length=length, seed=3)
    return classify_trace(
        trace, num_sets=num_sets, associativity=associativity
    )


class TestArchetypes:
    def test_bimodal_demand_is_class_one(self):
        result = classify_spec((
            SetGroupSpec(fraction=0.5, weight=1.0, kind="cyclic",
                         ws_min=2, ws_max=4),
            SetGroupSpec(fraction=0.5, weight=1.0, kind="recency",
                         reuse_mean=18.0, new_fraction=0.08),
        ))
        assert result.spatially_improvable
        assert result.giver_fraction > 0.3
        assert result.taker_fraction > 0.05

    def test_uniform_thrash_is_class_two(self):
        result = classify_spec((
            SetGroupSpec(fraction=1.0, weight=1.0, kind="cyclic",
                         ws_min=40, ws_max=48),
        ))
        assert result.temporally_improvable
        assert not result.spatially_improvable
        assert result.label in ("II", "I+II")

    def test_fitting_zipf_is_class_three(self):
        result = classify_spec((
            SetGroupSpec(fraction=1.0, weight=1.0, kind="zipf",
                         ws_min=8, ws_max=8, zipf_alpha=1.0),
        ))
        assert result.label == "III"
        assert not result.temporally_improvable
        assert result.thrash_fraction < 0.05

    def test_mixed_workload_can_be_both(self):
        # Reachable takers (ws in (a, 2a]) + givers -> spatial; an
        # unreachable thrashing group on top -> temporal as well.
        result = classify_spec((
            SetGroupSpec(fraction=0.4, weight=1.0, kind="cyclic",
                         ws_min=2, ws_max=4),
            SetGroupSpec(fraction=0.3, weight=1.0, kind="cyclic",
                         ws_min=20, ws_max=28),
            SetGroupSpec(fraction=0.3, weight=3.0, kind="cyclic",
                         ws_min=40, ws_max=48),
        ))
        assert result.spatially_improvable
        assert result.temporally_improvable
        assert result.label == "I+II"

    def test_unreachable_loops_are_not_givers(self):
        # A loop beyond the 32-way oracle has "zero demand" by the
        # Figure 1 definition but must not count as spare capacity.
        result = classify_spec((
            SetGroupSpec(fraction=1.0, weight=1.0, kind="cyclic",
                         ws_min=40, ws_max=48),
        ))
        assert result.giver_fraction < 0.1


class TestBenchmarkClassification:
    @pytest.mark.parametrize("name", ["omnetpp", "apsi"])
    def test_class_one_benchmarks_score_spatial(self, name):
        trace = make_benchmark_trace(name, num_sets=64, length=40_000)
        result = classify_trace(trace, num_sets=64, associativity=16)
        assert result.spatially_improvable

    @pytest.mark.parametrize("name", ["mcf", "sphinx3", "cactusADM"])
    def test_class_two_benchmarks_score_temporal(self, name):
        trace = make_benchmark_trace(name, num_sets=64, length=40_000)
        result = classify_trace(trace, num_sets=64, associativity=16)
        assert result.temporally_improvable

    @pytest.mark.parametrize("name", ["gobmk", "gromacs", "twolf", "vpr"])
    def test_class_three_benchmarks_score_neutral(self, name):
        trace = make_benchmark_trace(name, num_sets=64, length=40_000)
        result = classify_trace(trace, num_sets=64, associativity=16)
        assert not result.temporally_improvable
        assert result.label == "III"
