"""Tests for metrics, the latency model and the CPI model."""

import pytest

from repro.analysis.metrics import (
    evaluate_run,
    geomean,
    improvement_over_baseline,
    mpki,
    normalize_to_baseline,
)
from repro.cache.access import AccessKind
from repro.common.errors import ConfigError
from repro.common.stats import CacheStats
from repro.timing.cpi import PAPER_CPI, CpiModel
from repro.timing.latency import PAPER_LATENCY, LatencyModel


class TestLatencyModel:
    def test_paper_cycle_costs(self):
        # Section 5.1's exact numbers.
        model = PAPER_LATENCY
        assert model.local_hit_cycles == 14
        assert model.coop_hit_cycles == 20
        assert model.miss_cycles == 306
        assert model.miss_coop_cycles == 312

    def test_cycles_for_each_kind(self):
        model = PAPER_LATENCY
        assert model.cycles_for(AccessKind.LOCAL_HIT) == 14
        assert model.cycles_for(AccessKind.COOP_HIT) == 20
        assert model.cycles_for(AccessKind.MISS) == 306
        assert model.cycles_for(AccessKind.MISS_COOP) == 312

    def test_amat_weighted_average(self):
        stats = CacheStats(
            accesses=10,
            hits=6,
            misses=4,
            local_hits=5,
            cooperative_hits=1,
            misses_single_probe=3,
            misses_double_probe=1,
        )
        model = PAPER_LATENCY
        expected = (5 * 14 + 1 * 20 + 3 * 306 + 1 * 312) / 10
        assert model.amat(stats) == pytest.approx(expected)

    def test_amat_empty_stats(self):
        assert PAPER_LATENCY.amat(CacheStats()) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyModel(tag_cycles=0)


class TestCpiModel:
    def test_no_misses_floor(self):
        stats = CacheStats()
        assert PAPER_CPI.cpi(1000, stats, PAPER_LATENCY) == pytest.approx(
            PAPER_CPI.base_cpi
        )

    def test_stall_cycles_scale_with_misses(self):
        light = CacheStats(accesses=10, hits=10, misses=0, local_hits=10)
        heavy = CacheStats(
            accesses=10, hits=0, misses=10, misses_single_probe=10
        )
        cpi_light = PAPER_CPI.cpi(1000, light, PAPER_LATENCY)
        cpi_heavy = PAPER_CPI.cpi(1000, heavy, PAPER_LATENCY)
        assert cpi_heavy > cpi_light

    def test_validation(self):
        with pytest.raises(ConfigError):
            CpiModel(base_cpi=0.0)
        with pytest.raises(ConfigError):
            CpiModel(overlap=0.0)
        with pytest.raises(ConfigError):
            PAPER_CPI.cpi(0, CacheStats(), PAPER_LATENCY)


class TestMetrics:
    def test_mpki(self):
        assert mpki(misses=50, instructions=10_000) == pytest.approx(5.0)
        with pytest.raises(ConfigError):
            mpki(1, 0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            geomean([])
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])

    def test_normalize_to_baseline(self):
        table = {"LRU": 4.0, "STEM": 3.0, "DIP": 5.0}
        normalized = normalize_to_baseline(table)
        assert normalized["LRU"] == 1.0
        assert normalized["STEM"] == pytest.approx(0.75)
        assert normalized["DIP"] == pytest.approx(1.25)

    def test_normalize_missing_baseline(self):
        with pytest.raises(ConfigError):
            normalize_to_baseline({"STEM": 1.0}, baseline="LRU")

    def test_improvement_conversion(self):
        # The paper's phrasing: normalized 0.786 -> 21.4% improvement.
        assert improvement_over_baseline(0.786) == pytest.approx(21.4)
        assert improvement_over_baseline(1.092) == pytest.approx(-9.2)

    def test_evaluate_run_bundles_metrics(self):
        stats = CacheStats(
            accesses=100, hits=90, misses=10,
            local_hits=90, misses_single_probe=10,
        )
        metrics = evaluate_run("LRU", "demo", stats, instructions=5000)
        assert metrics.mpki == pytest.approx(2.0)
        assert metrics.miss_rate == pytest.approx(0.1)
        assert metrics.amat > 14
        assert metrics.cpi > PAPER_CPI.base_cpi
        assert set(metrics.as_dict()) == {"mpki", "amat", "cpi", "miss_rate"}
