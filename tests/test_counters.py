"""Unit tests for the saturating-counter family."""

import pytest
from hypothesis import given, strategies as st

from repro.common.counters import (
    PolicySelector,
    SaturatingCounter,
    SignedSaturatingCounter,
)
from repro.common.errors import ConfigError


class TestSaturatingCounter:
    def test_initial_state(self):
        counter = SaturatingCounter(4)
        assert counter.value == 0
        assert counter.max_value == 15
        assert not counter.saturated
        assert counter.msb == 0

    def test_saturates_at_maximum(self):
        counter = SaturatingCounter(4)
        for _ in range(100):
            counter.increment()
        assert counter.value == 15
        assert counter.saturated

    def test_clamps_at_zero(self):
        counter = SaturatingCounter(4, initial=2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_msb_threshold_is_half_range(self):
        # STEM's giver test: MSB == 0 below 2^(k-1) (Section 4.4).
        counter = SaturatingCounter(4)
        for value in range(16):
            counter.reset(value)
            assert counter.msb == (1 if value >= 8 else 0)

    def test_increment_amount(self):
        counter = SaturatingCounter(4)
        counter.increment(amount=9)
        assert counter.value == 9
        counter.increment(amount=9)
        assert counter.value == 15

    def test_reset_bounds_checked(self):
        counter = SaturatingCounter(4)
        with pytest.raises(ConfigError):
            counter.reset(16)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            SaturatingCounter(0)

    def test_rejects_bad_initial(self):
        with pytest.raises(ConfigError):
            SaturatingCounter(3, initial=8)

    @given(
        ops=st.lists(st.sampled_from(["inc", "dec"]), max_size=200),
        bits=st.integers(min_value=1, max_value=8),
    )
    def test_value_always_in_range(self, ops, bits):
        counter = SaturatingCounter(bits)
        for op in ops:
            if op == "inc":
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= counter.max_value


class TestPolicySelector:
    def test_starts_at_midpoint_favouring_policy1(self):
        psel = PolicySelector(bits=10)
        assert psel.value == 512
        assert psel.winner() == 1  # MSB of the midpoint is set

    def test_policy0_misses_push_toward_policy1(self):
        psel = PolicySelector(bits=4)
        for _ in range(8):
            psel.policy0_missed()
        assert psel.winner() == 1

    def test_policy1_misses_push_toward_policy0(self):
        psel = PolicySelector(bits=4)
        for _ in range(9):
            psel.policy1_missed()
        assert psel.winner() == 0

    def test_balanced_misses_hover_near_midpoint(self):
        psel = PolicySelector(bits=10)
        for _ in range(100):
            psel.policy0_missed()
            psel.policy1_missed()
        assert abs(psel.value - 512) <= 1


class TestSignedSaturatingCounter:
    def test_clamps_both_directions(self):
        counter = SignedSaturatingCounter(limit=5)
        for _ in range(20):
            counter.increment()
        assert counter.value == 5
        for _ in range(40):
            counter.decrement()
        assert counter.value == -5

    def test_reset(self):
        counter = SignedSaturatingCounter(limit=8)
        counter.reset(-3)
        assert counter.value == -3
        with pytest.raises(ConfigError):
            counter.reset(9)

    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigError):
            SignedSaturatingCounter(limit=0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ConfigError):
            SignedSaturatingCounter(limit=2, initial=3)
