"""Tests for the observability layer (:mod:`repro.obs`).

Covers the event bus end to end: typed events and their JSONL
round-trip, sink semantics, tracer fan-out, the zero-overhead-when-
disabled guarantee, run manifests (hash stability and seed
sensitivity), the inspection aggregates, and the profiler report.
"""

import json
from time import perf_counter

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.stats import CacheStats, counter_field_names
from repro.core.stem_cache import StemCache
from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    RingBufferSink,
    Tracer,
    build_manifest,
    load_events,
    summarize_events,
)
from repro.obs.events import (
    EVENT_TYPES,
    Coupling,
    Decoupling,
    Eviction,
    FaultInjected,
    PolicySwap,
    SafeModeEntry,
    ShadowHit,
    Spill,
    SpillReject,
    event_from_dict,
)
from repro.obs.inspect import (
    coupling_lifetimes,
    coupling_spans,
    event_clock,
    event_counts,
    per_set_counts,
    spill_fanout,
    swap_cadence,
)
from repro.obs.manifest import describe_scheme
from repro.obs.profile import PhaseTimer, RunProfiler
from repro.sim.config import make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace

GEOMETRY = CacheGeometry(num_sets=64, associativity=16)

SAMPLE_EVENTS = [
    Eviction(access=10, set_index=3, tag=0xBEEF, dirty=True,
             cooperative=False),
    Spill(access=11, set_index=3, giver=7, tag=0xCAFE, dirty=False),
    SpillReject(access=12, set_index=3, giver=7, tag=0xF00D),
    Coupling(access=13, set_index=3, giver=7),
    Decoupling(access=40, set_index=3, giver=7),
    PolicySwap(access=50, set_index=9, mode="BIP"),
    ShadowHit(access=60, set_index=9, signature=0x5A),
]


@pytest.fixture(scope="module")
def traced_run():
    """One STEM run on omnetpp with a full in-memory event log."""
    sink = RingBufferSink()
    tracer = Tracer(sink)
    cache = make_scheme("STEM", GEOMETRY, tracer=tracer)
    trace = make_benchmark_trace("omnetpp", num_sets=64, length=30_000)
    result = run_trace(cache, trace, warmup_fraction=0.0)
    return cache, trace, result, sink, tracer


class TestEvents:
    def test_registry_covers_all_kinds(self):
        assert set(EVENT_TYPES) == {
            "eviction", "spill", "spill_reject", "coupling",
            "coop_hit", "decoupling", "policy_swap", "shadow_hit",
            "fault_injected", "safe_mode",
        }

    def test_as_dict_tags_kind(self):
        record = SAMPLE_EVENTS[0].as_dict()
        assert record["kind"] == "eviction"
        assert record["access"] == 10
        assert record["set_index"] == 3
        assert record["dirty"] is True

    @pytest.mark.parametrize("event", SAMPLE_EVENTS,
                             ids=lambda e: e.kind)
    def test_dict_round_trip(self, event):
        assert event_from_dict(event.as_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown event kind"):
            event_from_dict({"kind": "meltdown", "access": 0,
                             "set_index": 0})

    def test_events_are_immutable(self):
        with pytest.raises(AttributeError):
            SAMPLE_EVENTS[0].access = 99


class TestTracer:
    def test_disabled_without_sinks(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit(SAMPLE_EVENTS[0])  # silently dropped
        assert tracer.events_emitted == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_add_sink_enables(self):
        tracer = Tracer()
        tracer.add_sink(RingBufferSink())
        assert tracer.enabled

    def test_fan_out_to_all_sinks(self):
        first, second = RingBufferSink(), RingBufferSink()
        tracer = Tracer(first, second)
        for event in SAMPLE_EVENTS:
            tracer.emit(event)
        assert tracer.events_emitted == len(SAMPLE_EVENTS)
        assert first.events == second.events == SAMPLE_EVENTS


class TestRingBufferSink:
    def test_capacity_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for event in SAMPLE_EVENTS:
            sink.record(event)
        assert len(sink) == 3
        assert sink.events == SAMPLE_EVENTS[-3:]
        assert sink.total_recorded == len(SAMPLE_EVENTS)
        assert sink.dropped == len(SAMPLE_EVENTS) - 3

    def test_clear_keeps_total(self):
        sink = RingBufferSink()
        sink.record(SAMPLE_EVENTS[0])
        sink.clear()
        assert len(sink) == 0
        assert sink.total_recorded == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_round_trip_typed_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.record(event)
        loaded = load_events(path)
        assert loaded == SAMPLE_EVENTS
        assert all(type(a) is type(b)
                   for a, b in zip(loaded, SAMPLE_EVENTS))

    def test_record_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ConfigError, match="closed"):
            sink.record(SAMPLE_EVENTS[0])

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "eviction", "access": 1\n')
        with pytest.raises(ConfigError, match="malformed"):
            load_events(path)


class TestLiveTracing:
    def test_multiple_event_kinds_observed(self, traced_run):
        _, _, _, sink, _ = traced_run
        kinds = set(event_counts(sink.events))
        assert len(kinds) >= 3
        assert "eviction" in kinds

    def test_event_counts_match_stats_counters(self, traced_run):
        """Each tracepoint mirrors its CacheStats counter exactly."""
        cache, _, _, sink, _ = traced_run
        counts = event_counts(sink.events)
        stats = cache.stats
        assert counts.get("eviction", 0) == stats.evictions
        assert counts.get("spill", 0) == stats.spills
        assert counts.get("spill_reject", 0) == stats.spill_rejects
        assert counts.get("coupling", 0) == stats.couplings
        assert counts.get("decoupling", 0) == stats.decouplings
        assert counts.get("policy_swap", 0) == stats.policy_swaps
        assert counts.get("shadow_hit", 0) == stats.shadow_hits

    def test_tracing_does_not_change_metrics(self, traced_run):
        """An attached tracer must be metric-invisible."""
        traced_cache, trace, traced_result, _, _ = traced_run
        plain = make_scheme("STEM", GEOMETRY)
        plain_result = run_trace(plain, trace, warmup_fraction=0.0)
        assert plain.stats.as_dict() == traced_cache.stats.as_dict()
        assert plain_result.mpki == traced_result.mpki
        assert plain_result.amat == traced_result.amat
        assert plain_result.cpi == traced_result.cpi

    def test_access_clock_is_monotonic(self, traced_run):
        _, _, _, sink, _ = traced_run
        clocks = [event.access for event in sink.events]
        assert clocks == sorted(clocks)


class TestNoOpOverhead:
    def test_default_tracer_emits_nothing(self):
        cache = StemCache(GEOMETRY)
        assert cache.tracer is NULL_TRACER
        trace = make_benchmark_trace("vpr", num_sets=64, length=5_000)
        for address in trace.addresses:
            cache.access(address)
        assert cache.tracer.events_emitted == 0

    def test_untraced_run_carries_no_ledger_state(self):
        """A plain run pays nothing for the capacity-flow ledger.

        Without ``ledger=True`` the result has no ledger, the cache's
        tracer stays the shared NULL_TRACER (never mutated in place),
        and the per-set attribution counters — maintained only under
        the tracer guard — remain all zeros.
        """
        cache = make_scheme("STEM", GEOMETRY)
        trace = make_benchmark_trace("vpr", num_sets=64, length=5_000)
        result = run_trace(cache, trace, warmup_fraction=0.0)
        assert result.ledger is None
        assert cache.tracer is NULL_TRACER
        assert not NULL_TRACER.enabled
        counters = cache.ledger_counters()
        assert set(counters) >= {"hits", "cooperative_hits"}
        for name, values in counters.items():
            assert not any(values), f"{name} counted without a tracer"

    def test_disabled_tracer_overhead_within_5_percent(self):
        """Explicit no-op tracer vs. default on a 50k-access trace.

        Both caches run the byte-identical guarded path (the default
        *is* a disabled tracer), so this bounds measurement noise and
        would catch any future unguarded tracepoint.  Interleaved
        rounds + min-of-N keep the assertion stable under CI jitter.
        """
        trace = make_benchmark_trace("omnetpp", num_sets=64,
                                     length=50_000)
        addresses = trace.addresses

        def timed_run(tracer):
            cache = StemCache(GEOMETRY, tracer=tracer)
            access = cache.access
            start = perf_counter()
            for address in addresses:
                access(address)
            return perf_counter() - start

        baseline, noop = [], []
        for _ in range(5):
            baseline.append(timed_run(None))
            noop.append(timed_run(Tracer()))
        assert min(noop) <= min(baseline) * 1.05


class TestManifest:
    def _result(self, seed=0xACE1):
        cache = make_scheme("STEM", GEOMETRY, seed=seed)
        trace = make_benchmark_trace("vpr", num_sets=64, length=8_000)
        return run_trace(cache, trace)

    def test_attached_to_run_result(self):
        result = self._result()
        manifest = result.manifest
        assert manifest is not None
        assert manifest.scheme == "STEM"
        assert manifest.trace_name == "vpr"
        assert manifest.seed == 0xACE1
        assert manifest.measured_accesses > 0
        assert manifest.measured_seconds > 0.0
        assert manifest.wall_clock_seconds >= manifest.measured_seconds
        assert manifest.accesses_per_second > 0.0

    def test_hash_stable_across_identical_runs(self):
        first = self._result().manifest
        second = self._result().manifest
        assert first.content_hash == second.content_hash
        assert len(first.content_hash) == 64  # sha256 hex

    def test_hash_changes_with_seed(self):
        first = self._result(seed=1).manifest
        second = self._result(seed=2).manifest
        assert first.content_hash != second.content_hash

    def test_hash_changes_with_scheme_config(self):
        base = self._result().manifest
        cache = make_scheme("STEM", CacheGeometry(num_sets=64,
                                                  associativity=8))
        trace = make_benchmark_trace("vpr", num_sets=64, length=8_000)
        other = run_trace(cache, trace).manifest
        assert base.content_hash != other.content_hash

    def test_wall_clock_outside_hash(self):
        payload = self._result().manifest.hashed_payload()
        assert "measured_seconds" not in payload
        assert "platform" not in payload

    def test_as_dict_is_json_serialisable(self):
        record = self._result().manifest.as_dict()
        round_tripped = json.loads(json.dumps(record))
        assert round_tripped["content_hash"] == record["content_hash"]
        assert round_tripped["accesses_per_second"] > 0.0

    def test_describe_scheme_captures_knobs(self):
        cache = make_scheme("STEM", GEOMETRY)
        description = describe_scheme(cache)
        assert description["class"] == "StemCache"
        assert description["geometry"]["num_sets"] == 64
        assert "config" in description

    def test_build_manifest_explicit_seed_wins(self):
        cache = StemCache(GEOMETRY)
        trace = make_benchmark_trace("vpr", num_sets=64, length=2_000)
        manifest = build_manifest(cache, trace, seed=42)
        assert manifest.seed == 42


class TestInspect:
    def test_event_counts(self):
        counts = event_counts(SAMPLE_EVENTS)
        assert counts["eviction"] == 1
        assert sum(counts.values()) == len(SAMPLE_EVENTS)

    def test_per_set_counts_filters_by_kind(self):
        assert per_set_counts(SAMPLE_EVENTS)[3] == 5
        assert per_set_counts(SAMPLE_EVENTS, kind="policy_swap") == {9: 1}

    def test_coupling_spans_pair_up(self):
        spans = coupling_spans(SAMPLE_EVENTS)
        assert len(spans) == 1
        span = spans[0]
        assert (span.taker, span.giver) == (3, 7)
        assert span.lifetime == 40 - 13

    def test_open_span_has_no_lifetime(self):
        events = [Coupling(access=5, set_index=1, giver=2)]
        spans = coupling_spans(events)
        assert spans[0].end_access is None
        assert spans[0].lifetime is None
        assert coupling_lifetimes(events) == []

    def test_spill_fanout(self):
        events = [
            Spill(access=1, set_index=3, giver=7),
            Spill(access=2, set_index=3, giver=7),
            Spill(access=3, set_index=3, giver=9),
            Spill(access=4, set_index=5, giver=7),
        ]
        fanout = spill_fanout(events)
        assert fanout == {3: {7: 2, 9: 1}, 5: {7: 1}}

    def test_swap_cadence_gaps(self):
        events = [
            PolicySwap(access=100, set_index=4, mode="BIP"),
            PolicySwap(access=350, set_index=4, mode="LRU"),
            PolicySwap(access=600, set_index=4, mode="BIP"),
            PolicySwap(access=50, set_index=8, mode="BIP"),
        ]
        cadence = swap_cadence(events)
        assert cadence[4] == [250, 250]
        assert cadence[8] == []  # swapped once: no gap yet

    def test_summarize_events(self):
        digest = summarize_events(SAMPLE_EVENTS)
        assert "eviction" in digest
        assert "couplings: 1 pairs" in digest
        assert summarize_events([]) == "no events recorded"

    def test_summarize_fault_only_log(self):
        """A `repro faults` JSONL can hold nothing but fault events."""
        events = [
            FaultInjected(access=5, set_index=3, target="sc_s",
                          detail="bit 2"),
            FaultInjected(access=9, set_index=3, target="sc_s"),
            FaultInjected(access=12, set_index=-1, target="trace"),
        ]
        digest = summarize_events(events)
        assert "faults: 3 injected across 2 target(s)" in digest
        assert "sc_s=2" in digest and "trace=1" in digest
        assert "1 set(s) directly hit" in digest

    def test_summarize_safe_mode_only_log(self):
        events = [
            SafeModeEntry(access=7, set_index=4, reason="heap"),
            SafeModeEntry(access=9, set_index=4, reason="heap"),
            SafeModeEntry(access=11, set_index=6, reason="counter"),
        ]
        digest = summarize_events(events)
        assert "safe mode: 3 entries pinned 2 set(s)" in digest

    def test_event_clock_prefers_global_access(self):
        stamped = Coupling(access=3, set_index=1, giver=2,
                           global_access=503)
        legacy = Coupling(access=3, set_index=1, giver=2)
        assert event_clock(stamped) == 503
        assert event_clock(legacy) == 3

    def test_old_jsonl_records_still_load(self):
        # Pre-global_access payloads must rebuild with the default 0.
        record = {"kind": "eviction", "access": 10, "set_index": 3,
                  "tag": 7, "dirty": False, "cooperative": False}
        event = event_from_dict(record)
        assert event.global_access == 0
        assert event_clock(event) == 10

    def test_coupling_spans_use_global_clock(self):
        # access rewinds (warm-up reset) but global_access does not;
        # the lifetime must come from the monotonic clock.
        events = [
            Coupling(access=900, set_index=3, giver=7,
                     global_access=900),
            Decoupling(access=150, set_index=3, giver=7,
                       global_access=1_150),
        ]
        assert coupling_lifetimes(events) == [250]
        swaps = [
            PolicySwap(access=800, set_index=4, mode="BIP",
                       global_access=800),
            PolicySwap(access=100, set_index=4, mode="LRU",
                       global_access=1_100),
        ]
        assert swap_cadence(swaps)[4] == [300]


class TestProfiler:
    def test_phase_timer_measures(self):
        with PhaseTimer("busy") as timer:
            sum(range(1000))
        assert timer.seconds > 0.0

    def test_add_reads_manifest(self):
        cache = make_scheme("LRU", GEOMETRY)
        trace = make_benchmark_trace("vpr", num_sets=64, length=6_000)
        result = run_trace(cache, trace)
        profiler = RunProfiler()
        record = profiler.add(result)
        assert record is not None
        assert record.scheme == "LRU"
        assert record.measured_seconds > 0.0
        table = profiler.per_scheme()
        assert table["LRU"]["runs"] == 1
        assert table["LRU"]["accesses_per_sec"] > 0.0
        assert "acc/sec" in profiler.render()
        assert "LRU" in profiler.render()

    def test_add_without_manifest_is_noop(self):
        class Bare:
            scheme = "X"
            trace_name = "y"
            manifest = None

        profiler = RunProfiler()
        assert profiler.add(Bare()) is None
        assert profiler.records == []

    def test_bench_json_shape(self, tmp_path):
        cache = make_scheme("LRU", GEOMETRY)
        trace = make_benchmark_trace("vpr", num_sets=64, length=6_000)
        profiler = RunProfiler()
        profiler.add(run_trace(cache, trace))
        path = tmp_path / "bench.json"
        profiler.save_bench_json(path)
        document = json.loads(path.read_text())
        assert "machine_info" in document
        (bench,) = document["benchmarks"]
        assert bench["name"] == "LRU[vpr]"
        assert bench["stats"]["rounds"] == 1
        assert bench["stats"]["ops"] > 0.0


class TestStatsDerivation:
    """Satellites: merge/as_dict/timeline derive from dataclass fields."""

    def test_counter_field_names_cover_every_counter(self):
        names = counter_field_names()
        assert "extra" not in names
        assert {"accesses", "hits", "misses", "spill_rejects",
                "policy_swaps", "total_latency_cycles"} <= set(names)

    def test_merge_accumulates_every_field(self):
        names = counter_field_names()
        left = CacheStats()
        right = CacheStats()
        for offset, name in enumerate(names):
            setattr(left, name, offset + 1)
            setattr(right, name, 100)
        right.bump("ad_hoc", 3)
        left.merge(right)
        for offset, name in enumerate(names):
            assert getattr(left, name) == offset + 1 + 100, name
        assert left.extra["ad_hoc"] == 3

    def test_as_dict_reports_every_field(self):
        table = CacheStats().as_dict()
        for name in counter_field_names():
            assert name in table
        assert "miss_rate" in table

    def test_timeline_tracks_derived_counters(self):
        from repro.sim.timeline import run_timeline

        cache = make_scheme("STEM", GEOMETRY)
        trace = make_benchmark_trace("vpr", num_sets=64, length=6_000)
        timeline = run_timeline(cache, trace, window_length=2_000)
        for name in counter_field_names():
            assert name in timeline.series, name
        assert len(timeline.series["spill_rejects"]) == timeline.num_windows
