"""Tests for trace containers and persistence."""

import pytest

from repro.common.errors import TraceError
from repro.workloads.trace import Trace, TraceMetadata


def make_trace(n=10, writes=False, name="t"):
    metadata = TraceMetadata(name=name, instructions=n * 50)
    addresses = [i * 64 for i in range(n)]
    write_mask = [i % 3 == 0 for i in range(n)] if writes else None
    return Trace(metadata, addresses, write_mask)


class TestTraceBasics:
    def test_len_and_iter(self):
        trace = make_trace(5)
        assert len(trace) == 5
        assert list(trace) == [0, 64, 128, 192, 256]

    def test_apki(self):
        trace = make_trace(10)  # 10 accesses / 500 instructions
        assert trace.accesses_per_kilo_instruction == pytest.approx(20.0)

    def test_metadata_validation(self):
        with pytest.raises(TraceError):
            TraceMetadata(name="bad", instructions=0)

    def test_writes_length_checked(self):
        metadata = TraceMetadata(name="t", instructions=10)
        with pytest.raises(TraceError):
            Trace(metadata, [0, 64], [True])


class TestSlicing:
    def test_slice_bounds(self):
        trace = make_trace(10)
        with pytest.raises(TraceError):
            trace.slice(5, 3)
        with pytest.raises(TraceError):
            trace.slice(0, 11)

    def test_slice_prorates_instructions(self):
        trace = make_trace(10)
        half = trace.slice(0, 5)
        assert len(half) == 5
        assert half.metadata.instructions == 250
        # MPKI denominators stay comparable: APKI is preserved.
        assert half.accesses_per_kilo_instruction == pytest.approx(
            trace.accesses_per_kilo_instruction
        )

    def test_slice_carries_writes(self):
        trace = make_trace(9, writes=True)
        part = trace.slice(3, 6)
        assert part.writes == trace.writes[3:6]


class TestPersistence:
    def test_roundtrip_without_writes(self, tmp_path):
        trace = make_trace(20)
        path = tmp_path / "plain.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.addresses == trace.addresses
        assert loaded.writes is None
        assert loaded.metadata.name == trace.metadata.name
        assert loaded.metadata.instructions == trace.metadata.instructions

    def test_roundtrip_with_writes(self, tmp_path):
        trace = make_trace(20, writes=True)
        path = tmp_path / "writes.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.writes == trace.writes

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n1000\n")
        with pytest.raises(TraceError, match="header"):
            Trace.load(path)

    def test_malformed_address_rejected(self, tmp_path):
        path = tmp_path / "bad2.trace"
        path.write_text(
            '{"name": "x", "instructions": 10}\nzz\n'
        )
        with pytest.raises(TraceError, match="bad address"):
            Trace.load(path)
