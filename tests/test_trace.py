"""Tests for trace containers and persistence."""

import json
import random

import pytest

from repro.common.errors import TraceError
from repro.workloads.trace import Trace, TraceMetadata


def make_trace(n=10, writes=False, name="t"):
    metadata = TraceMetadata(name=name, instructions=n * 50)
    addresses = [i * 64 for i in range(n)]
    write_mask = [i % 3 == 0 for i in range(n)] if writes else None
    return Trace(metadata, addresses, write_mask)


class TestTraceBasics:
    def test_len_and_iter(self):
        trace = make_trace(5)
        assert len(trace) == 5
        assert list(trace) == [0, 64, 128, 192, 256]

    def test_apki(self):
        trace = make_trace(10)  # 10 accesses / 500 instructions
        assert trace.accesses_per_kilo_instruction == pytest.approx(20.0)

    def test_metadata_validation(self):
        with pytest.raises(TraceError):
            TraceMetadata(name="bad", instructions=0)

    def test_writes_length_checked(self):
        metadata = TraceMetadata(name="t", instructions=10)
        with pytest.raises(TraceError):
            Trace(metadata, [0, 64], [True])


class TestSlicing:
    def test_slice_bounds(self):
        trace = make_trace(10)
        with pytest.raises(TraceError):
            trace.slice(5, 3)
        with pytest.raises(TraceError):
            trace.slice(0, 11)

    def test_slice_prorates_instructions(self):
        trace = make_trace(10)
        half = trace.slice(0, 5)
        assert len(half) == 5
        assert half.metadata.instructions == 250
        # MPKI denominators stay comparable: APKI is preserved.
        assert half.accesses_per_kilo_instruction == pytest.approx(
            trace.accesses_per_kilo_instruction
        )

    def test_slice_carries_writes(self):
        trace = make_trace(9, writes=True)
        part = trace.slice(3, 6)
        assert part.writes == trace.writes[3:6]


class TestPersistence:
    def test_roundtrip_without_writes(self, tmp_path):
        trace = make_trace(20)
        path = tmp_path / "plain.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.addresses == trace.addresses
        assert loaded.writes is None
        assert loaded.metadata.name == trace.metadata.name
        assert loaded.metadata.instructions == trace.metadata.instructions

    def test_roundtrip_with_writes(self, tmp_path):
        trace = make_trace(20, writes=True)
        path = tmp_path / "writes.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.writes == trace.writes

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n1000\n")
        with pytest.raises(TraceError, match="header"):
            Trace.load(path)

    def test_malformed_address_rejected(self, tmp_path):
        path = tmp_path / "bad2.trace"
        path.write_text(
            '{"name": "x", "instructions": 10}\nzz\n'
        )
        with pytest.raises(TraceError, match="bad address"):
            Trace.load(path)


class TestLoadRobustness:
    """Malformed inputs raise TraceError naming the file — never leak
    a bare KeyError/ValueError from the parser internals."""

    @pytest.mark.parametrize("missing", ["name", "instructions"])
    def test_missing_required_key(self, tmp_path, missing):
        header = {"name": "x", "instructions": 10}
        del header[missing]
        path = tmp_path / "missing.trace"
        path.write_text(json.dumps(header) + "\n40\n")
        with pytest.raises(TraceError, match=missing) as excinfo:
            Trace.load(path)
        assert str(path) in str(excinfo.value)

    def test_non_object_header(self, tmp_path):
        path = tmp_path / "list.trace"
        path.write_text("[1, 2, 3]\n40\n")
        with pytest.raises(TraceError, match="not a JSON object"):
            Trace.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceError, match="header"):
            Trace.load(path)

    def test_ill_typed_header_values(self, tmp_path):
        path = tmp_path / "typed.trace"
        path.write_text('{"name": "x", "instructions": "lots"}\n40\n')
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_negative_address_rejected(self, tmp_path):
        path = tmp_path / "neg.trace"
        path.write_text('{"name": "x", "instructions": 10}\n-40\n')
        with pytest.raises(TraceError, match="negative address"):
            Trace.load(path)

    def test_address_wider_than_address_bits(self, tmp_path):
        path = tmp_path / "wide.trace"
        path.write_text(
            '{"name": "x", "instructions": 10, "address_bits": 8}\n1ff\n'
        )
        with pytest.raises(TraceError, match="wider than address_bits"):
            Trace.load(path)
        # The error names the offending line.
        with pytest.raises(TraceError, match=":2:"):
            Trace.load(path)

    def test_boundary_address_accepted(self, tmp_path):
        path = tmp_path / "edge.trace"
        path.write_text(
            '{"name": "x", "instructions": 10, "address_bits": 8}\nff\n'
        )
        assert Trace.load(path).addresses == [0xFF]

    def test_fuzz_corrupted_files_never_leak_raw_errors(self, tmp_path):
        """Random corruption either loads or raises TraceError — no
        KeyError/ValueError/IndexError escapes the parser."""
        rng = random.Random(0xF417)
        base = make_trace(30, writes=True, name="fuzz").save(
            tmp_path / "base.trace"
        )
        original = (tmp_path / "base.trace").read_text()
        junk = "zx-{}[]\"', \n"
        for round_number in range(50):
            chars = list(original)
            for _ in range(rng.randint(1, 6)):
                position = rng.randrange(len(chars))
                if rng.random() < 0.5:
                    chars[position] = rng.choice(junk)
                else:
                    del chars[position]
            if rng.random() < 0.3:  # simulate a truncating crash too
                chars = chars[: rng.randrange(1, len(chars))]
            path = tmp_path / f"fuzz{round_number}.trace"
            path.write_text("".join(chars))
            try:
                Trace.load(path)
            except TraceError:
                pass  # the only acceptable failure mode
