"""Single source of truth for the package version.

Kept in its own module so leaf packages (``repro.obs`` stamps run
manifests with the version) can import it without pulling in the whole
:mod:`repro` namespace.
"""

__version__ = "1.9.0"
