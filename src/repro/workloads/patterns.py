"""Classic access-pattern generators for cache studies.

Beyond the paper's SPEC-like models, a cache-simulation library needs
the canonical microbenchmark patterns — the shapes every replacement
paper reasons about.  Each generator returns a standard
:class:`~repro.workloads.trace.Trace` so everything downstream
(simulators, profilers, timelines) applies unchanged.

* :func:`sequential_scan` — a linear walk over an array, optionally
  repeated: pure spatial streaming, the canonical LRU-poison when the
  array exceeds the cache;
* :func:`strided_scan` — the same walk with a power-of-two stride,
  which concentrates pressure on a subset of sets (the conflict-miss
  classic);
* :func:`pointer_chase` — a random permutation cycle: maximal reuse
  distance, no spatial locality, the memory-latency-bound archetype;
* :func:`tiled_matrix_traversal` — blocked 2-D traversal: high reuse
  within a tile, a working set per tile, the capacity-vs-tiling story;
* :func:`hot_cold` — a hot region absorbing most accesses over a cold
  backdrop: the frequency-locality archetype.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import SplitMix
from repro.workloads.trace import Trace, TraceMetadata


def _trace(name: str, addresses: List[int], line_size: int,
           accesses_per_kilo_instruction: float, description: str) -> Trace:
    instructions = max(
        1, round(len(addresses) * 1000.0 / accesses_per_kilo_instruction)
    )
    metadata = TraceMetadata(
        name=name,
        instructions=instructions,
        line_size=line_size,
        description=description,
    )
    return Trace(metadata, addresses)


def sequential_scan(
    array_bytes: int,
    passes: int = 1,
    element_bytes: int = 8,
    line_size: int = 64,
    base_address: int = 0,
    accesses_per_kilo_instruction: float = 250.0,
) -> Trace:
    """Walk an array front to back, ``passes`` times."""
    if array_bytes <= 0 or passes <= 0 or element_bytes <= 0:
        raise ConfigError("array_bytes, passes, element_bytes must be > 0")
    addresses: List[int] = []
    elements = array_bytes // element_bytes
    for _ in range(passes):
        for index in range(elements):
            addresses.append(base_address + index * element_bytes)
    return _trace(
        "sequential-scan", addresses, line_size,
        accesses_per_kilo_instruction,
        f"{passes} pass(es) over {array_bytes} bytes",
    )


def strided_scan(
    array_bytes: int,
    stride_bytes: int,
    passes: int = 1,
    line_size: int = 64,
    base_address: int = 0,
    accesses_per_kilo_instruction: float = 250.0,
) -> Trace:
    """Walk an array with a fixed stride (conflict-miss generator)."""
    if stride_bytes <= 0:
        raise ConfigError(f"stride_bytes must be > 0, got {stride_bytes}")
    if array_bytes <= 0 or passes <= 0:
        raise ConfigError("array_bytes and passes must be > 0")
    addresses: List[int] = []
    for _ in range(passes):
        position = 0
        while position < array_bytes:
            addresses.append(base_address + position)
            position += stride_bytes
    return _trace(
        "strided-scan", addresses, line_size,
        accesses_per_kilo_instruction,
        f"stride {stride_bytes} over {array_bytes} bytes x{passes}",
    )


def pointer_chase(
    num_nodes: int,
    hops: int,
    node_bytes: int = 64,
    line_size: int = 64,
    base_address: int = 0,
    seed: int = 7,
    accesses_per_kilo_instruction: float = 100.0,
) -> Trace:
    """Follow a random permutation cycle through ``num_nodes`` nodes."""
    if num_nodes <= 1 or hops <= 0:
        raise ConfigError("num_nodes must be > 1 and hops > 0")
    rng = SplitMix(seed=seed)
    order = list(range(num_nodes))
    rng.shuffle(order)
    next_node = [0] * num_nodes
    for position, node in enumerate(order):
        next_node[node] = order[(position + 1) % num_nodes]
    addresses: List[int] = []
    node = order[0]
    for _ in range(hops):
        addresses.append(base_address + node * node_bytes)
        node = next_node[node]
    return _trace(
        "pointer-chase", addresses, line_size,
        accesses_per_kilo_instruction,
        f"{hops} hops over a {num_nodes}-node permutation cycle",
    )


def tiled_matrix_traversal(
    matrix_rows: int,
    matrix_cols: int,
    tile: int,
    sweeps_per_tile: int = 4,
    element_bytes: int = 8,
    line_size: int = 64,
    base_address: int = 0,
    accesses_per_kilo_instruction: float = 200.0,
) -> Trace:
    """Blocked row-major traversal: reuse within each tile."""
    if matrix_rows <= 0 or matrix_cols <= 0:
        raise ConfigError("matrix dimensions must be positive")
    if tile <= 0 or sweeps_per_tile <= 0:
        raise ConfigError("tile and sweeps_per_tile must be positive")
    addresses: List[int] = []
    for tile_row in range(0, matrix_rows, tile):
        for tile_col in range(0, matrix_cols, tile):
            for _ in range(sweeps_per_tile):
                for row in range(tile_row, min(tile_row + tile, matrix_rows)):
                    for col in range(
                        tile_col, min(tile_col + tile, matrix_cols)
                    ):
                        offset = (row * matrix_cols + col) * element_bytes
                        addresses.append(base_address + offset)
    return _trace(
        "tiled-matrix", addresses, line_size,
        accesses_per_kilo_instruction,
        f"{matrix_rows}x{matrix_cols} matrix, {tile}x{tile} tiles, "
        f"{sweeps_per_tile} sweeps",
    )


def hot_cold(
    hot_bytes: int,
    cold_bytes: int,
    length: int,
    hot_fraction: float = 0.9,
    element_bytes: int = 64,
    line_size: int = 64,
    base_address: int = 0,
    seed: int = 11,
    accesses_per_kilo_instruction: float = 150.0,
) -> Trace:
    """Random accesses: ``hot_fraction`` hit a small hot region."""
    if hot_bytes <= 0 or cold_bytes <= 0 or length <= 0:
        raise ConfigError("hot_bytes, cold_bytes, length must be positive")
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigError(
            f"hot_fraction must lie in (0, 1), got {hot_fraction}"
        )
    rng = SplitMix(seed=seed)
    hot_elements = max(1, hot_bytes // element_bytes)
    cold_elements = max(1, cold_bytes // element_bytes)
    cold_base = base_address + hot_elements * element_bytes
    addresses: List[int] = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            index = rng.randint(0, hot_elements - 1)
            addresses.append(base_address + index * element_bytes)
        else:
            index = rng.randint(0, cold_elements - 1)
            addresses.append(cold_base + index * element_bytes)
    return _trace(
        "hot-cold", addresses, line_size,
        accesses_per_kilo_instruction,
        f"{hot_fraction:.0%} of accesses in {hot_bytes} hot bytes",
    )
