"""Memory traces: the unit of work every experiment consumes.

A :class:`Trace` is a flat list of physical block addresses (optionally
with per-access write flags) plus :class:`TraceMetadata` describing the
program it stands for — most importantly the instruction count, which
turns miss counts into the paper's MPKI metric.  Traces are plain data:
generators build them, simulators iterate them, and they round-trip
through a small text format for archiving.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.common.io import atomic_write


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive metadata accompanying a trace.

    ``instructions`` is the number of dynamic instructions the trace
    represents; generators derive it from their accesses-per-kilo-
    instruction parameter so MPKI is well defined (DESIGN.md §7).
    """

    name: str
    instructions: int
    line_size: int = 64
    address_bits: int = 44
    description: str = ""
    spec_class: str = ""  # 'I', 'II', 'III' or '' for non-benchmark traces

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise TraceError(
                f"instructions must be positive, got {self.instructions}"
            )


@dataclass
class Trace:
    """A sequence of memory accesses with program-level metadata."""

    metadata: TraceMetadata
    addresses: List[int]
    writes: Optional[List[bool]] = field(default=None)
    #: (offset_bits, index_bits) -> (set_indices, tags); derived, never
    #: compared, pickled, or persisted.
    _geometry_cache: Dict[Tuple[int, int], Tuple[List[int], List[int]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _content_digest: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: (offset_bits, index_bits, associativity, have_writes) -> columnar
    #: replay plan (or False for declined builds); derived, never
    #: compared, pickled, or persisted.  See repro.sim.columnar.
    _columnar_plans: Dict[Tuple[int, int, int, bool], object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.writes is not None and len(self.writes) != len(self.addresses):
            raise TraceError(
                "writes mask length does not match the address stream: "
                f"{len(self.writes)} vs {len(self.addresses)}"
            )

    def __getstate__(self) -> dict:
        # Derived caches can be large (two ints per access per geometry);
        # drop them so parallel-worker job payloads stay small.  Workers
        # recompute lazily on first use.
        state = dict(self.__dict__)
        state["_geometry_cache"] = {}
        state["_columnar_plans"] = {}
        return state

    def precompute_geometry(
        self, mapper
    ) -> Tuple[List[int], List[int]]:
        """Split every address through ``mapper`` once, with caching.

        Returns ``(set_indices, tags)`` lists index-aligned with
        :attr:`addresses`, so hot loops can skip the per-access
        shift/mask work entirely.  Results are cached per
        ``(offset_bits, index_bits)`` geometry; mutating
        :attr:`addresses` after the first call is unsupported.
        """
        key = (mapper.offset_bits, mapper.index_bits)
        cached = self._geometry_cache.get(key)
        if cached is not None:
            return cached
        offset_bits, index_bits = key
        index_mask = (1 << index_bits) - 1
        set_indices: List[int] = []
        tags: List[int] = []
        append_index = set_indices.append
        append_tag = tags.append
        for address in self.addresses:
            block = address >> offset_bits
            append_index(block & index_mask)
            append_tag(block >> index_bits)
        entry = (set_indices, tags)
        self._geometry_cache[key] = entry
        return entry

    def content_digest(self) -> str:
        """SHA-256 digest over the raw access stream.

        Covers addresses and write flags (not metadata); used as the
        trace component of content-addressed run-cache keys, where the
        *data* fed to the simulator is what must match.
        """
        if self._content_digest is None:
            hasher = hashlib.sha256()
            hasher.update(array("Q", self.addresses).tobytes())
            if self.writes is not None:
                hasher.update(b"w")
                hasher.update(bytes(bytearray(self.writes)))
            self._content_digest = hasher.hexdigest()
        return self._content_digest

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    @property
    def name(self) -> str:
        """Convenience passthrough to the metadata name."""
        return self.metadata.name

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """APKI — the paper's bridge between misses and MPKI."""
        return len(self.addresses) * 1000.0 / self.metadata.instructions

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace over ``[start, stop)`` with scaled instructions.

        Instruction counts are prorated so MPKI computed on the slice
        remains comparable with the full trace.
        """
        if not 0 <= start <= stop <= len(self.addresses):
            raise TraceError(
                f"slice [{start}, {stop}) out of bounds for {len(self)} accesses"
            )
        fraction = (stop - start) / max(1, len(self.addresses))
        scaled = max(1, round(self.metadata.instructions * fraction))
        metadata = TraceMetadata(
            name=self.metadata.name,
            instructions=scaled,
            line_size=self.metadata.line_size,
            address_bits=self.metadata.address_bits,
            description=self.metadata.description,
            spec_class=self.metadata.spec_class,
        )
        writes = self.writes[start:stop] if self.writes is not None else None
        return Trace(metadata, self.addresses[start:stop], writes)

    # ------------------------------------------------------------------
    # Persistence: a line-oriented text format with a JSON header
    # ------------------------------------------------------------------

    def save(self, path: "Path | str") -> None:
        """Write the trace as '<json header>\\n<hex addr>[ w]\\n...'."""
        path = Path(path)
        header = {
            "name": self.metadata.name,
            "instructions": self.metadata.instructions,
            "line_size": self.metadata.line_size,
            "address_bits": self.metadata.address_bits,
            "description": self.metadata.description,
            "spec_class": self.metadata.spec_class,
        }
        # Write-then-rename so a crash mid-save can never leave a
        # truncated trace where a complete one is expected.
        with atomic_write(path) as handle:
            handle.write(json.dumps(header) + "\n")
            if self.writes is None:
                for address in self.addresses:
                    handle.write(f"{address:x}\n")
            else:
                for address, write in zip(self.addresses, self.writes):
                    suffix = " w" if write else ""
                    handle.write(f"{address:x}{suffix}\n")

    @classmethod
    def load(cls, path: "Path | str") -> "Trace":
        """Read a trace previously written by :meth:`save`.

        Every malformation — a corrupt or incomplete header, a missing
        required key, a non-hex address, a negative address, or an
        address wider than the header's ``address_bits`` — raises
        :class:`TraceError` naming the file (and line), never a bare
        ``KeyError`` or ``ValueError``.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            header_line = handle.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"malformed trace header in {path}") from exc
            if not isinstance(header, dict):
                raise TraceError(
                    f"trace header in {path} is not a JSON object"
                )
            for required in ("name", "instructions"):
                if required not in header:
                    raise TraceError(
                        f"trace header in {path} is missing the "
                        f"{required!r} key"
                    )
            try:
                metadata = TraceMetadata(
                    name=header["name"],
                    instructions=header["instructions"],
                    line_size=header.get("line_size", 64),
                    address_bits=header.get("address_bits", 44),
                    description=header.get("description", ""),
                    spec_class=header.get("spec_class", ""),
                )
            except TypeError as exc:
                raise TraceError(
                    f"trace header in {path} has ill-typed values: {exc}"
                ) from exc
            address_limit = 1 << metadata.address_bits
            addresses: List[int] = []
            writes: List[bool] = []
            any_write = False
            for line_number, line in enumerate(handle, start=2):
                parts = line.split()
                if not parts:
                    continue
                try:
                    address = int(parts[0], 16)
                except ValueError as exc:
                    raise TraceError(
                        f"{path}:{line_number}: bad address {parts[0]!r}"
                    ) from exc
                if address < 0:
                    raise TraceError(
                        f"{path}:{line_number}: negative address "
                        f"{parts[0]!r}"
                    )
                if address >= address_limit:
                    raise TraceError(
                        f"{path}:{line_number}: address {parts[0]!r} wider "
                        f"than address_bits={metadata.address_bits}"
                    )
                addresses.append(address)
                is_write = len(parts) > 1 and parts[1] == "w"
                writes.append(is_write)
                any_write = any_write or is_write
        return cls(metadata, addresses, writes if any_write else None)
