"""SPEC-like benchmark models — the paper's 15 workloads, synthesised.

The paper evaluates 15 SPEC CPU 2000/2006 benchmarks (Table 2) grouped
into three classes by their set-level capacity-demand features
(Figure 6).  Real SPEC traces are unavailable here, so each benchmark
is modelled as a :class:`~repro.workloads.generators.WorkloadSpec`
whose *set-level statistics* match what the paper reports about it
(DESIGN.md §4 documents this substitution):

* **Class I** (ammp, apsi, astar, omnetpp, xalancbmk): non-uniform
  set-level demand — a population of small/fitting working sets
  (givers) coexists with looping working sets that overflow their sets
  (takers), which is where spatial schemes can shine.  ``astar``
  additionally carries a large recency-friendly population plus a
  heavily-accessed thrashing minority, reproducing the paper's
  DIP/PeLIFO pathology (the global duel picks BIP and hurts the
  recency sets).
* **Class II** (art, cactusADM, galgel, mcf, sphinx3): poor temporal
  locality — looping working sets so large (mostly > 2x the nominal
  16 ways) that even pairwise cooperation cannot retain them, leaving
  insertion-policy management (BIP/DIP) as the only lever.  ``art``
  is the documented exception: its working sets fit at 2 MB, its
  misses are compulsory/streaming, and no scheme helps.
* **Class III** (gobmk, gromacs, soplex, twolf, vpr): uniform demand
  and good locality; LRU suffices and every scheme should be neutral.

The per-benchmark ``accesses_per_kilo_instruction`` values are
calibrated so the 16-way LRU MPKI approximates Table 2's numbers; the
reproduction targets *shape* (who wins and by roughly what factor),
not absolute MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class BenchmarkSpec:
    """One modelled SPEC benchmark."""

    name: str
    spec_class: str  # 'I', 'II' or 'III'
    paper_mpki_lru: float  # Table 2's MPKI under LRU
    accesses_per_kilo_instruction: float
    groups: Tuple[SetGroupSpec, ...]
    seed: int
    description: str = ""

    def workload(self, write_fraction: float = 0.0) -> WorkloadSpec:
        """The generator spec for this benchmark.

        ``write_fraction`` marks that share of accesses as writes; the
        headline experiments run read-only (hit/miss behaviour is
        write-agnostic under write-allocate), while the traffic
        experiment uses writes to exercise write-back accounting.
        """
        return WorkloadSpec(
            name=self.name,
            groups=self.groups,
            accesses_per_kilo_instruction=self.accesses_per_kilo_instruction,
            description=self.description,
            spec_class=self.spec_class,
            write_fraction=write_fraction,
        )


def _g(fraction: float, weight: float, kind: str, ws_min: int = 1,
       ws_max: Optional[int] = None, **kwargs) -> SetGroupSpec:
    """Terse SetGroupSpec constructor for the tables below."""
    return SetGroupSpec(
        fraction=fraction,
        weight=weight,
        kind=kind,
        ws_min=ws_min,
        ws_max=ws_max if ws_max is not None else ws_min,
        **kwargs,
    )


BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    BENCHMARKS[spec.name] = spec


# ----------------------------------------------------------------------
# Class I: set-level non-uniform capacity demand (spatially improvable)
# ----------------------------------------------------------------------

_register(BenchmarkSpec(
    name="ammp",
    spec_class="I",
    paper_mpki_lru=2.535,
    accesses_per_kilo_instruction=11.7,
    seed=101,
    description="half the sets need <=4 ways (incl. streaming), rest loop",
    groups=(
        _g(0.15, 0.4, "streaming"),
        _g(0.35, 1.0, "cyclic", 2, 4),
        _g(0.50, 2.0, "recency", reuse_mean=8.0, new_fraction=0.05),
    ),
))

_register(BenchmarkSpec(
    name="apsi",
    spec_class="I",
    paper_mpki_lru=5.453,
    accesses_per_kilo_instruction=13.2,
    seed=102,
    description="bimodal demand: small givers vs looping takers",
    groups=(
        _g(0.50, 1.0, "cyclic", 4, 8),
        _g(0.50, 2.0, "recency", reuse_mean=20.0, new_fraction=0.08),
    ),
))

_register(BenchmarkSpec(
    name="astar",
    spec_class="I",
    paper_mpki_lru=2.622,
    accesses_per_kilo_instruction=5.1,
    seed=103,
    description=(
        "recency-friendly majority + heavily-accessed thrashing minority: "
        "global BIP selection backfires (the paper's DIP pathology)"
    ),
    groups=(
        _g(0.60, 1.0, "recency", reuse_mean=6.0, new_fraction=0.08),
        _g(0.30, 2.0, "recency", reuse_mean=20.0, new_fraction=0.10),
        _g(0.10, 3.0, "cyclic", 60, 80),
    ),
))

_register(BenchmarkSpec(
    name="omnetpp",
    spec_class="I",
    paper_mpki_lru=11.553,
    accesses_per_kilo_instruction=18.4,
    seed=104,
    description="Figure 1(a): demand spread across 8..32 ways",
    groups=(
        _g(0.15, 1.0, "cyclic", 4, 8),
        _g(0.15, 1.0, "cyclic", 9, 14),
        _g(0.20, 1.5, "cyclic", 15, 16),
        _g(0.30, 2.0, "cyclic", 17, 24),
        _g(0.20, 2.0, "cyclic", 25, 32),
    ),
))

_register(BenchmarkSpec(
    name="xalancbmk",
    spec_class="I",
    paper_mpki_lru=14.789,
    accesses_per_kilo_instruction=29.1,
    seed=105,
    description="mixed demand: hot zipf, looping takers, small givers",
    groups=(
        _g(0.25, 1.0, "zipf", 12, 12, zipf_alpha=0.8),
        _g(0.20, 2.0, "cyclic", 20, 26),
        _g(0.20, 2.0, "recency", reuse_mean=18.0, new_fraction=0.08),
        _g(0.25, 1.0, "cyclic", 4, 8),
        _g(0.10, 0.5, "streaming"),
    ),
))

# ----------------------------------------------------------------------
# Class II: poor temporal locality (temporally improvable; art excepted)
# ----------------------------------------------------------------------

_register(BenchmarkSpec(
    name="art",
    spec_class="II",
    paper_mpki_lru=16.769,
    accesses_per_kilo_instruction=45.5,
    seed=201,
    description=(
        "working sets fit at 2 MB; misses are streaming/compulsory, so "
        "no scheme improves it (paper Section 5.2)"
    ),
    groups=(
        _g(1.00, 1.0, "cyclic", 8, 10, stream_fraction=0.30),
    ),
))

_register(BenchmarkSpec(
    name="cactusADM",
    spec_class="II",
    paper_mpki_lru=3.459,
    accesses_per_kilo_instruction=5.0,
    seed=202,
    description="uniform loops beyond 2x associativity + hot zipf sets",
    groups=(
        _g(0.90, 1.0, "cyclic", 36, 44),
        _g(0.10, 4.0, "zipf", 10, 10, zipf_alpha=0.9),
    ),
))

_register(BenchmarkSpec(
    name="galgel",
    spec_class="II",
    paper_mpki_lru=1.426,
    accesses_per_kilo_instruction=11.3,
    seed=203,
    description="small thrashing fraction over a frequency-local majority",
    groups=(
        _g(0.30, 1.0, "cyclic", 34, 38),
        _g(0.70, 3.0, "zipf", 8, 8, zipf_alpha=1.0),
    ),
))

_register(BenchmarkSpec(
    name="mcf",
    spec_class="II",
    paper_mpki_lru=59.993,
    accesses_per_kilo_instruction=62.6,
    seed=204,
    description="huge uniform loops (3-4x associativity): the thrash king",
    groups=(
        _g(0.85, 2.0, "cyclic", 48, 64),
        _g(0.15, 0.5, "zipf", 6, 6, zipf_alpha=0.9),
    ),
))

_register(BenchmarkSpec(
    name="sphinx3",
    spec_class="II",
    paper_mpki_lru=10.969,
    accesses_per_kilo_instruction=11.9,
    seed=205,
    description="uniform loops beyond pairing reach + streaming tail",
    groups=(
        _g(0.70, 1.5, "cyclic", 34, 44),
        _g(0.20, 1.0, "streaming"),
        _g(0.10, 1.0, "zipf", 8, 8, zipf_alpha=0.9),
    ),
))

# ----------------------------------------------------------------------
# Class III: uniform demand, good locality (LRU suffices)
# ----------------------------------------------------------------------

_register(BenchmarkSpec(
    name="gobmk",
    spec_class="III",
    paper_mpki_lru=2.236,
    accesses_per_kilo_instruction=54.6,
    seed=301,
    description="frequency-local working sets that fit; streaming tail",
    groups=(
        _g(1.00, 1.0, "zipf", 10, 10, zipf_alpha=0.9, stream_fraction=0.04),
    ),
))

_register(BenchmarkSpec(
    name="gromacs",
    spec_class="III",
    paper_mpki_lru=1.099,
    accesses_per_kilo_instruction=54.4,
    seed=302,
    description="small hot working sets, almost no capacity pressure",
    groups=(
        _g(1.00, 1.0, "zipf", 8, 8, zipf_alpha=1.0, stream_fraction=0.02),
    ),
))

_register(BenchmarkSpec(
    name="soplex",
    spec_class="III",
    paper_mpki_lru=24.298,
    accesses_per_kilo_instruction=38.8,
    seed=303,
    description="compulsory-miss dominated: high MPKI nobody can fix",
    groups=(
        _g(1.00, 1.0, "zipf", 12, 12, zipf_alpha=0.8, stream_fraction=0.45),
    ),
))

_register(BenchmarkSpec(
    name="twolf",
    spec_class="III",
    paper_mpki_lru=3.793,
    accesses_per_kilo_instruction=27.4,
    seed=304,
    description="recency-friendly references with a warm zipf backdrop",
    groups=(
        _g(1.00, 1.0, "recency", reuse_mean=5.0, new_fraction=0.06,
           stream_fraction=0.02),
    ),
))

_register(BenchmarkSpec(
    name="vpr",
    spec_class="III",
    paper_mpki_lru=3.306,
    accesses_per_kilo_instruction=18.0,
    seed=305,
    description="recency-friendly references over a fitting working set",
    groups=(
        _g(1.00, 1.0, "recency", reuse_mean=6.0, new_fraction=0.08,
           stream_fraction=0.01),
    ),
))


def benchmark_names(spec_class: Optional[str] = None) -> "list[str]":
    """Benchmark names, optionally filtered by class, in paper order."""
    order = [
        "ammp", "apsi", "astar", "omnetpp", "xalancbmk",
        "art", "cactusADM", "galgel", "mcf", "sphinx3",
        "gobmk", "gromacs", "soplex", "twolf", "vpr",
    ]
    if spec_class is None:
        return order
    return [n for n in order if BENCHMARKS[n].spec_class == spec_class]


def make_benchmark_trace(
    name: str,
    num_sets: int = 256,
    length: int = 400_000,
    line_size: int = 64,
    address_bits: int = 44,
    seed_offset: int = 0,
    write_fraction: float = 0.0,
) -> Trace:
    """Generate the modelled trace for one of the 15 benchmarks.

    ``num_sets`` scales the LLC (the per-set streams are unchanged, so
    behaviour is set-count invariant); ``length`` is the number of L2
    accesses to synthesise; ``write_fraction`` optionally marks a share
    of accesses as writes for write-back studies.
    """
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {', '.join(benchmark_names())}"
        )
    return generate_trace(
        spec.workload(write_fraction=write_fraction),
        num_sets=num_sets,
        length=length,
        line_size=line_size,
        address_bits=address_bits,
        seed=spec.seed + seed_offset,
    )
