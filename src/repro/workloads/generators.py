"""Parametric workload generation with controlled set-level demand.

The paper's whole argument rests on *set-level non-uniformity of
capacity demands* (Section 3), so the generator framework is organised
around it: a workload is a partition of the cache's sets into *groups*,
each group giving its sets a per-set reference stream with a chosen
reuse structure and working-set size, plus an access weight.  The
resulting interleaved trace exercises exactly the behaviours the
evaluated schemes differ on:

* ``cyclic``    — a looping working set; thrashes LRU when the set size
  exceeds the associativity (the paper's Figure 2 streams), the bread
  and butter of BIP/DIP;
* ``zipf``      — skewed popularity with frequency (not recency)
  locality; friendly to every policy once the hot blocks fit;
* ``streaming`` — never-reused blocks; pure compulsory misses that no
  policy can remove, and "zero capacity demand" in Figure 1's terms;
* ``recency``   — short geometric reuse distances over a moving frontier;
  LRU-friendly and *insertion-hostile* (BIP evicts new blocks before
  their imminent reuse), the pattern behind the paper's ``astar``
  pathology.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.common.rng import SplitMix
from repro.workloads.trace import Trace, TraceMetadata

_STREAM_KINDS = ("cyclic", "zipf", "streaming", "recency")


@dataclass(frozen=True)
class SetGroupSpec:
    """One group of sets sharing a reference-stream shape.

    Parameters
    ----------
    fraction:
        Share of the cache's sets assigned to this group; the fractions
        of all groups in a workload must sum to 1 (within rounding).
    weight:
        Relative access frequency *per set* in this group.
    kind:
        One of ``cyclic``, ``zipf``, ``streaming``, ``recency``.
    ws_min / ws_max:
        Working-set size range in blocks; each set draws its own size
        uniformly from the inclusive range (ignored for ``streaming``).
    zipf_alpha:
        Skew of the zipf popularity law (``kind='zipf'`` only).
    reuse_mean:
        Mean geometric reuse distance in distinct blocks
        (``kind='recency'`` only).
    new_fraction:
        Probability that a ``recency`` access touches a brand-new block.
    stream_fraction:
        Probability that any access is instead a never-reused
        (compulsory-miss) block.  Injecting these *within* each set
        keeps the miss pressure uniform across sets — the signature of
        the paper's Class II/III workloads, where no under-saturated
        sets exist for spatial schemes to exploit.
    """

    fraction: float
    weight: float
    kind: str
    ws_min: int = 1
    ws_max: int = 1
    zipf_alpha: float = 0.8
    reuse_mean: float = 6.0
    new_fraction: float = 0.25
    stream_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(f"fraction must lie in (0, 1], got {self.fraction}")
        if self.weight <= 0.0:
            raise ConfigError(f"weight must be positive, got {self.weight}")
        if self.kind not in _STREAM_KINDS:
            raise ConfigError(
                f"kind must be one of {_STREAM_KINDS}, got {self.kind!r}"
            )
        if self.ws_min <= 0 or self.ws_max < self.ws_min:
            raise ConfigError(
                f"bad working-set range [{self.ws_min}, {self.ws_max}]"
            )
        if not 0.0 < self.new_fraction <= 1.0:
            raise ConfigError(
                f"new_fraction must lie in (0, 1], got {self.new_fraction}"
            )
        if self.reuse_mean <= 0.0:
            raise ConfigError(
                f"reuse_mean must be positive, got {self.reuse_mean}"
            )
        if not 0.0 <= self.stream_fraction < 1.0:
            raise ConfigError(
                f"stream_fraction must lie in [0, 1), got {self.stream_fraction}"
            )


class _SetStream:
    """Per-set tag stream state (one instance per cache set)."""

    __slots__ = ("kind", "ws_size", "position", "zipf_cdf", "reuse_mean",
                 "new_fraction", "frontier", "stream_fraction", "stream_next")

    #: Tag offset for injected compulsory-miss blocks: far above any
    #: working-set tag so the two populations never alias.
    _STREAM_BASE = 1 << 24

    def __init__(self, spec: SetGroupSpec, ws_size: int) -> None:
        self.kind = spec.kind
        self.ws_size = ws_size
        self.position = 0
        self.frontier = 0
        self.stream_fraction = spec.stream_fraction
        self.stream_next = self._STREAM_BASE
        self.reuse_mean = spec.reuse_mean
        self.new_fraction = spec.new_fraction
        self.zipf_cdf: Optional[List[float]] = None
        if spec.kind == "zipf":
            masses = [1.0 / (rank ** spec.zipf_alpha)
                      for rank in range(1, ws_size + 1)]
            total = sum(masses)
            running = 0.0
            cdf = []
            for mass in masses:
                running += mass / total
                cdf.append(running)
            cdf[-1] = 1.0
            self.zipf_cdf = cdf

    def next_tag(self, rng: SplitMix) -> int:
        """Produce the next tag referenced by this set's working set."""
        if self.stream_fraction > 0.0 and rng.random() < self.stream_fraction:
            tag = self.stream_next
            self.stream_next += 1
            return tag
        kind = self.kind
        if kind == "cyclic":
            tag = self.position
            self.position += 1
            if self.position >= self.ws_size:
                self.position = 0
            return tag
        if kind == "zipf":
            return bisect_right(self.zipf_cdf, rng.random())
        if kind == "streaming":
            tag = self.position
            self.position += 1
            return tag
        # recency: geometric reuse over a moving frontier of new blocks.
        if self.frontier == 0 or rng.random() < self.new_fraction:
            tag = self.frontier
            self.frontier += 1
            return tag
        distance = 0
        escape = 1.0 / self.reuse_mean
        while rng.random() > escape and distance < self.frontier - 1:
            distance += 1
        return self.frontier - 1 - distance


@dataclass
class WorkloadSpec:
    """A full synthetic workload: groups + interleaving parameters."""

    name: str
    groups: Sequence[SetGroupSpec]
    accesses_per_kilo_instruction: float = 20.0
    description: str = ""
    spec_class: str = ""
    write_fraction: float = 0.0
    shuffle_sets: bool = True

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigError("a workload needs at least one set group")
        total = sum(group.fraction for group in self.groups)
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(
                f"group fractions must sum to 1, got {total:.6f}"
            )
        if self.accesses_per_kilo_instruction <= 0.0:
            raise ConfigError("accesses_per_kilo_instruction must be positive")
        if not 0.0 <= self.write_fraction < 1.0:
            raise ConfigError(
                f"write_fraction must lie in [0, 1), got {self.write_fraction}"
            )


def generate_trace(
    spec: WorkloadSpec,
    num_sets: int,
    length: int,
    line_size: int = 64,
    address_bits: int = 44,
    seed: int = 1,
) -> Trace:
    """Materialise ``length`` accesses of ``spec`` over ``num_sets`` sets.

    Sets are dealt to groups proportionally to each group's fraction
    (optionally shuffled so groups interleave across the index space,
    which keeps DIP's leader-set sampling representative), then accesses
    pick a set by weighted sampling and extend that set's stream.
    """
    if length <= 0:
        raise ConfigError(f"length must be positive, got {length}")
    mapper = AddressMapper(
        num_sets=num_sets, line_size=line_size, address_bits=address_bits
    )
    rng = SplitMix(seed=seed)
    set_indices = list(range(num_sets))
    if spec.shuffle_sets:
        rng.shuffle(set_indices)
    # Deal sets to groups.
    streams: List[Optional[_SetStream]] = [None] * num_sets
    weights: List[float] = [0.0] * num_sets
    cursor = 0
    for group_number, group in enumerate(spec.groups):
        if group_number == len(spec.groups) - 1:
            count = num_sets - cursor  # absorb rounding in the last group
        else:
            count = max(1, round(group.fraction * num_sets))
        for set_index in set_indices[cursor:cursor + count]:
            ws_size = rng.randint(group.ws_min, group.ws_max)
            streams[set_index] = _SetStream(group, ws_size)
            weights[set_index] = group.weight
        cursor += count
        if cursor >= num_sets:
            break
    # Rounding can leave a set unassigned (tiny configurations); give it
    # a zero-weight streaming stream so a boundary tie in the sampler
    # below still produces a valid access.
    fallback = SetGroupSpec(fraction=1.0, weight=1.0, kind="streaming")
    for set_index in range(num_sets):
        if streams[set_index] is None:
            streams[set_index] = _SetStream(fallback, 1)
    # Weighted set selection via a cumulative table + binary search.
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    total_weight = running
    addresses: List[int] = []
    writes: Optional[List[bool]] = [] if spec.write_fraction > 0.0 else None
    append = addresses.append
    compose = mapper.compose
    for _ in range(length):
        set_index = bisect_right(cumulative, rng.random() * total_weight)
        if set_index >= num_sets:
            set_index = num_sets - 1
        tag = streams[set_index].next_tag(rng)
        append(compose(tag, set_index))
        if writes is not None:
            writes.append(rng.random() < spec.write_fraction)
    instructions = max(1, round(length * 1000.0
                                / spec.accesses_per_kilo_instruction))
    metadata = TraceMetadata(
        name=spec.name,
        instructions=instructions,
        line_size=line_size,
        address_bits=address_bits,
        description=spec.description,
        spec_class=spec.spec_class,
    )
    return Trace(metadata, addresses, writes)
