"""Workloads: traces, synthetic streams and SPEC-like benchmark models."""

from repro.workloads.benchmark_sets import (
    BENCHMARK_SETS,
    benchmark_set_names,
    resolve_benchmarks,
)
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace
from repro.workloads.mixes import concatenate_traces, phased_trace
from repro.workloads.patterns import (
    hot_cold,
    pointer_chase,
    sequential_scan,
    strided_scan,
    tiled_matrix_traversal,
)
from repro.workloads.spec_like import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    make_benchmark_trace,
)
from repro.workloads.synthetic import (
    FIGURE2_WORKING_SETS,
    bip_cyclic_miss_rate,
    figure2_expected_miss_rates,
    figure2_trace,
    interleaved_cyclic_trace,
    lru_cyclic_miss_rate,
)
from repro.workloads.trace import Trace, TraceMetadata

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_SETS",
    "BenchmarkSpec",
    "benchmark_set_names",
    "resolve_benchmarks",
    "FIGURE2_WORKING_SETS",
    "SetGroupSpec",
    "Trace",
    "TraceMetadata",
    "WorkloadSpec",
    "benchmark_names",
    "bip_cyclic_miss_rate",
    "concatenate_traces",
    "figure2_expected_miss_rates",
    "figure2_trace",
    "generate_trace",
    "hot_cold",
    "interleaved_cyclic_trace",
    "lru_cyclic_miss_rate",
    "make_benchmark_trace",
    "phased_trace",
    "pointer_chase",
    "sequential_scan",
    "strided_scan",
    "tiled_matrix_traversal",
]
