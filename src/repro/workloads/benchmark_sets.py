"""Named benchmark sets with SPEC-style set algebra.

Campaign specs (and anything else that wants "run the integer
benchmarks") name their workloads through this registry instead of
spelling out lists: a selection is a sequence of *tokens*, each either
a set name (``int``, ``fp``, ``all``, ``class_i`` ...) or an individual
benchmark name, and :func:`resolve_benchmarks` expands it the way the
SPEC harnesses do — multiple sets and individual benchmarks may be
mixed freely, duplicates are removed, and the result is sorted, so the
same selection always yields the same ordered workload list no matter
how it was written.

The ``int``/``fp`` split follows the SPEC CPU 2000/2006 suites the
paper's 15 workloads were drawn from; the ``class_*`` sets mirror the
paper's Figure 6 capacity-demand classification (already encoded in
:mod:`repro.workloads.spec_like`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.workloads.spec_like import benchmark_names

#: SPEC integer-suite members among the paper's 15 workloads.
_INT = ("astar", "gobmk", "mcf", "omnetpp", "twolf", "vpr", "xalancbmk")

#: SPEC floating-point-suite members among the paper's 15 workloads.
_FP = (
    "ammp", "apsi", "art", "cactusADM", "galgel", "gromacs", "soplex",
    "sphinx3",
)


def _sorted(names: Sequence[str]) -> Tuple[str, ...]:
    return tuple(sorted(names))


#: Every named set, each stored sorted.  ``class_i``/``class_ii``/
#: ``class_iii`` are the paper's capacity-demand classes.
BENCHMARK_SETS: Dict[str, Tuple[str, ...]] = {
    "all": _sorted(benchmark_names()),
    "int": _sorted(_INT),
    "fp": _sorted(_FP),
    "class_i": _sorted(benchmark_names("I")),
    "class_ii": _sorted(benchmark_names("II")),
    "class_iii": _sorted(benchmark_names("III")),
}


def benchmark_set_names() -> List[str]:
    """The registered set names, sorted."""
    return sorted(BENCHMARK_SETS)


def resolve_benchmarks(tokens: Sequence[str]) -> List[str]:
    """Expand set names and benchmark names into one sorted list.

    Each token is either a registered set name or an individual
    benchmark; duplicates (a benchmark named directly *and* through a
    set, or two overlapping sets) are removed and the final list is
    sorted — the SPEC target idiom.  An unknown token raises
    :class:`~repro.common.errors.ConfigError` naming the token and the
    accepted vocabulary.
    """
    if not tokens:
        raise ConfigError("benchmark selection is empty")
    known = set(benchmark_names())
    selected: set = set()
    for token in tokens:
        names = BENCHMARK_SETS.get(token)
        if names is not None:
            selected.update(names)
        elif token in known:
            selected.add(token)
        else:
            raise ConfigError(
                f"unknown benchmark or set {token!r}; "
                f"sets: {', '.join(benchmark_set_names())}; "
                f"benchmarks: {', '.join(benchmark_names())}"
            )
    return sorted(selected)
