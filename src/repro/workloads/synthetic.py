"""The paper's Figure 2 synthetic workloads and their analytic miss rates.

Figure 2 studies a 4-way LLC with two sets receiving strictly
interleaved cyclic working sets:

* Example #1 — set 0 cycles A→B→…→F (6 blocks), set 1 cycles a→b
  (2 blocks): LRU 1/2, DIP 1/4, SBC 0;
* Example #2 — set 1 grows to {a, b, c}: LRU 1/2, DIP 1/4, SBC 1/3;
* Example #3 — set 1 grows to {a…e}: LRU 1, DIP 1/4 + 1/5, SBC 1;
* the extensional example — a spatiotemporal scheme (STEM) can push
  Example #2 below 1/6 by combining coop capacity with BIP-style
  retention.

This module builds those exact traces and provides the closed-form
steady-state miss rates used to verify the simulators against the
paper's numbers.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.workloads.trace import Trace, TraceMetadata

#: Working-set sizes (set 0, set 1) for Figure 2's three examples.
FIGURE2_WORKING_SETS = {1: (6, 2), 2: (6, 3), 3: (6, 5)}


def interleaved_cyclic_trace(
    working_set_sizes: Sequence[int],
    rounds: int,
    num_sets: int = 2,
    line_size: int = 64,
    address_bits: int = 44,
    name: str = "interleaved-cyclic",
    accesses_per_kilo_instruction: float = 500.0,
) -> Trace:
    """Strictly interleave independent cyclic working sets, one per set.

    ``working_set_sizes[i]`` is the number of distinct blocks cycling
    through set ``i``; each "round" emits one access per set in order,
    reproducing the paper's A→a→B→b→… reference stream.
    """
    if len(working_set_sizes) > num_sets:
        raise ConfigError(
            f"{len(working_set_sizes)} working sets need at least as many sets"
        )
    if rounds <= 0:
        raise ConfigError(f"rounds must be positive, got {rounds}")
    mapper = AddressMapper(
        num_sets=num_sets, line_size=line_size, address_bits=address_bits
    )
    positions = [0] * len(working_set_sizes)
    addresses: List[int] = []
    for _ in range(rounds):
        for set_index, size in enumerate(working_set_sizes):
            tag = positions[set_index]
            positions[set_index] = (tag + 1) % size
            addresses.append(mapper.compose(tag, set_index))
    instructions = max(
        1, round(len(addresses) * 1000.0 / accesses_per_kilo_instruction)
    )
    metadata = TraceMetadata(
        name=name,
        instructions=instructions,
        line_size=line_size,
        address_bits=address_bits,
        description=(
            "strictly interleaved cyclic working sets "
            f"{tuple(working_set_sizes)}"
        ),
    )
    return Trace(metadata, addresses)


def figure2_trace(example: int, rounds: int = 4096) -> Trace:
    """The exact reference stream of Figure 2's Example #``example``."""
    if example not in FIGURE2_WORKING_SETS:
        raise ConfigError(
            f"example must be one of {sorted(FIGURE2_WORKING_SETS)}, got {example}"
        )
    sizes = FIGURE2_WORKING_SETS[example]
    return interleaved_cyclic_trace(
        sizes, rounds=rounds, name=f"figure2-example{example}"
    )


# ----------------------------------------------------------------------
# Closed-form steady-state miss rates (used as test oracles)
# ----------------------------------------------------------------------


def lru_cyclic_miss_rate(working_set: int, ways: int) -> float:
    """Steady-state LRU miss rate of one cyclic working set.

    A cyclic sequence over ``working_set`` distinct blocks thrashes LRU
    completely whenever the set does not hold the whole loop.
    """
    if working_set <= 0 or ways <= 0:
        raise ConfigError("working_set and ways must be positive")
    return 0.0 if working_set <= ways else 1.0


def bip_cyclic_miss_rate(working_set: int, ways: int) -> float:
    """Steady-state BIP/LIP miss rate of one cyclic working set.

    LIP-style insertion pins ``ways - 1`` loop blocks while the
    remaining references stream through the LRU position, hitting
    ``(ways - 1) / working_set`` of the time (Qureshi et al., 2007).
    The 1/32 bimodal MRU insertions perturb this negligibly.
    """
    if working_set <= 0 or ways <= 0:
        raise ConfigError("working_set and ways must be positive")
    if working_set <= ways:
        return 0.0
    return 1.0 - (ways - 1) / working_set


def figure2_expected_miss_rates(example: int, ways: int = 4) -> dict:
    """The paper's steady-state miss rates for one Figure 2 example.

    Returns per-scheme overall miss rates for the interleaved stream
    (both sets receive exactly half the accesses).  'DIP' here is the
    paper's oracle DIP — each set independently runs the better of
    LRU/BIP — and 'SBC' follows the paper's trace analysis.
    """
    ws0, ws1 = FIGURE2_WORKING_SETS[example]
    lru = 0.5 * lru_cyclic_miss_rate(ws0, ways) + 0.5 * lru_cyclic_miss_rate(
        ws1, ways
    )
    dip = 0.5 * min(
        lru_cyclic_miss_rate(ws0, ways), bip_cyclic_miss_rate(ws0, ways)
    ) + 0.5 * min(
        lru_cyclic_miss_rate(ws1, ways), bip_cyclic_miss_rate(ws1, ways)
    )
    sbc_by_example = {1: 0.0, 2: 1.0 / 3.0, 3: 1.0}
    return {"LRU": lru, "DIP": dip, "SBC": sbc_by_example[example]}
