"""Phased and concatenated workloads — adaptivity stress tests.

The paper's schemes are *dynamic*: STEM swaps per-set policies, couples
and decouples pairs as demand shifts.  These helpers build traces whose
demand changes over time so tests and ablation benches can verify that
the adaptive machinery actually tracks phase changes (e.g. a taker set
turning into a giver must eventually decouple, Section 4.7).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import ConfigError, TraceError
from repro.workloads.generators import WorkloadSpec, generate_trace
from repro.workloads.trace import Trace, TraceMetadata


def concatenate_traces(traces: Sequence[Trace], name: str = "") -> Trace:
    """Join traces back-to-back (they must share the address geometry)."""
    if not traces:
        raise ConfigError("need at least one trace to concatenate")
    first = traces[0].metadata
    for trace in traces[1:]:
        if (trace.metadata.line_size != first.line_size
                or trace.metadata.address_bits != first.address_bits):
            raise TraceError(
                "cannot concatenate traces with different address geometry"
            )
    addresses: List[int] = []
    instructions = 0
    any_writes = any(trace.writes is not None for trace in traces)
    writes: List[bool] = []
    for trace in traces:
        addresses.extend(trace.addresses)
        instructions += trace.metadata.instructions
        if any_writes:
            if trace.writes is None:
                writes.extend([False] * len(trace.addresses))
            else:
                writes.extend(trace.writes)
    metadata = TraceMetadata(
        name=name or "+".join(trace.name for trace in traces),
        instructions=instructions,
        line_size=first.line_size,
        address_bits=first.address_bits,
        description="concatenation of " + ", ".join(t.name for t in traces),
    )
    return Trace(metadata, addresses, writes if any_writes else None)


def phased_trace(
    phases: Sequence[WorkloadSpec],
    phase_length: int,
    num_sets: int,
    line_size: int = 64,
    address_bits: int = 44,
    seed: int = 1,
    name: str = "phased",
) -> Trace:
    """One trace whose workload spec changes every ``phase_length`` accesses.

    Each phase draws a fresh set-to-group assignment, so a set that was
    a giver in one phase can become a taker in the next — exercising
    decoupling, role flips and per-set policy swaps.
    """
    if phase_length <= 0:
        raise ConfigError(f"phase_length must be positive, got {phase_length}")
    pieces = [
        generate_trace(
            spec,
            num_sets=num_sets,
            length=phase_length,
            line_size=line_size,
            address_bits=address_bits,
            seed=seed + phase_number,
        )
        for phase_number, spec in enumerate(phases)
    ]
    return concatenate_traces(pieces, name=name)
