"""V-Way — Variable-Way Set Associativity (Qureshi et al., ISCA 2005).

The V-Way cache decouples the tag store from the data store: every set
owns ``tag_ratio`` times more tag entries than the baseline
associativity, while the global pool of data lines stays the same size.
Forward pointers (tag entry -> data line) and reverse pointers (data
line -> tag entry) tie the two together.  Because any data line can back
any tag entry, a set with a hot working set can accumulate more than
``associativity`` lines — demand-based associativity.

Replacement is two-level, as published:

* *tag replacement* within a set uses LRU over the set's tag entries and
  only triggers when the set has no invalid tag entry; the victim's own
  data line is reused, so the fill stays local;
* *data replacement* is global **reuse replacement**: every data line
  carries a small saturating reuse counter, incremented on hits; a clock
  hand scans the data array, decrementing non-zero counters, and evicts
  the first zero-reuse line (invalidating its owner tag entry via the
  reverse pointer).

The STEM paper's critique — the implicit "access count" metric can
misjudge capacity demand — falls out of this structure naturally: hot
streaming sets hoard lines they do not benefit from.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import (
    ConfigError,
    InvariantViolation,
    SimulationError,
)
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.obs.events import Eviction
from repro.obs.tracer import NULL_TRACER, Tracer

_INVALID = -1


class VwayCache:
    """Variable-way cache with global reuse replacement."""

    name = "V-Way"

    def __init__(
        self,
        geometry: CacheGeometry,
        tag_ratio: int = 2,
        reuse_bits: int = 2,
        rng: Optional[Lfsr] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if tag_ratio < 2:
            raise ConfigError(f"tag_ratio must be >= 2, got {tag_ratio}")
        if reuse_bits <= 0:
            raise ConfigError(f"reuse_bits must be positive, got {reuse_bits}")
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.rng = rng if rng is not None else Lfsr()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tag_ratio = tag_ratio
        self.max_reuse = (1 << reuse_bits) - 1
        self.stats = CacheStats()
        # Lifetime accesses folded in by reset_stats() (event clock).
        self._access_base = 0
        num_sets = geometry.num_sets
        self.entries_per_set = geometry.associativity * tag_ratio
        num_entries = num_sets * self.entries_per_set
        num_lines = geometry.num_lines
        # Tag store: entry id = set * entries_per_set + slot.
        self._entry_tag: List[int] = [_INVALID] * num_entries
        self._entry_line: List[int] = [_INVALID] * num_entries  # fptr
        self._tag_to_entry: List[dict] = [{} for _ in range(num_sets)]
        self._tag_order: List[List[int]] = [[] for _ in range(num_sets)]
        self._free_entries: List[List[int]] = [
            list(
                range(
                    (s + 1) * self.entries_per_set - 1,
                    s * self.entries_per_set - 1,
                    -1,
                )
            )
            for s in range(num_sets)
        ]
        # Data store: global pool with reverse pointers and reuse bits.
        self._line_entry: List[int] = [_INVALID] * num_lines  # rptr
        self._line_reuse: List[int] = [0] * num_lines
        self._line_dirty: List[bool] = [False] * num_lines
        self._free_lines: List[int] = list(range(num_lines - 1, -1, -1))
        self._clock_hand = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Look up ``address``; fill (possibly stealing a global data
        line from another set) on miss."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        entry = self._tag_to_entry[set_index].get(tag)
        if entry is not None:
            stats.hits += 1
            stats.local_hits += 1
            line = self._entry_line[entry]
            if self._line_reuse[line] < self.max_reuse:
                self._line_reuse[line] += 1
            if is_write:
                self._line_dirty[line] = True
            order = self._tag_order[set_index]
            order.remove(entry)
            order.append(entry)
            return AccessKind.LOCAL_HIT
        stats.misses += 1
        stats.misses_single_probe += 1
        free = self._free_entries[set_index]
        if free:
            entry = free.pop()
            line = self._allocate_line()
        else:
            # Tag replacement: reuse the set-LRU entry's own data line.
            entry = self._tag_order[set_index].pop(0)
            old_tag = self._entry_tag[entry]
            del self._tag_to_entry[set_index][old_tag]
            line = self._entry_line[entry]
            self._retire_line(line, set_index, old_tag)
        self._entry_tag[entry] = tag
        self._entry_line[entry] = line
        self._tag_to_entry[set_index][tag] = entry
        self._tag_order[set_index].append(entry)
        self._line_entry[line] = entry
        self._line_reuse[line] = 0
        self._line_dirty[line] = is_write
        return AccessKind.MISS

    def _retire_line(self, line: int, set_index: int, tag: int) -> None:
        """Account for evicting the block currently held by ``line``."""
        self.stats.evictions += 1
        dirty = self._line_dirty[line]
        if dirty:
            self.stats.writebacks += 1
            self._line_dirty[line] = False
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                tag=tag,
                dirty=dirty,
            ))

    def _allocate_line(self) -> int:
        """Hand out a data line, running reuse replacement if needed."""
        if self._free_lines:
            return self._free_lines.pop()
        num_lines = self.geometry.num_lines
        reuse = self._line_reuse
        hand = self._clock_hand
        # Bounded sweep: after max_reuse + 1 laps a zero is guaranteed.
        for _ in range(num_lines * (self.max_reuse + 1) + 1):
            if reuse[hand] == 0:
                break
            reuse[hand] -= 1
            hand = hand + 1 if hand + 1 < num_lines else 0
        else:
            raise SimulationError("reuse replacement failed to find a victim")
        line = hand
        self._clock_hand = hand + 1 if hand + 1 < num_lines else 0
        owner = self._line_entry[line]
        owner_set = owner // self.entries_per_set
        owner_tag = self._entry_tag[owner]
        del self._tag_to_entry[owner_set][owner_tag]
        self._tag_order[owner_set].remove(owner)
        self._entry_tag[owner] = _INVALID
        self._entry_line[owner] = _INVALID
        self._free_entries[owner_set].append(owner)
        self._retire_line(line, owner_set, owner_tag)
        self._line_entry[line] = _INVALID
        return line

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def lines_owned_by(self, set_index: int) -> int:
        """How many data lines the set currently backs (its "ways")."""
        return len(self._tag_to_entry[set_index])

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Views of the blocks currently owned by ``set_index``."""
        views = []
        for tag, entry in sorted(self._tag_to_entry[set_index].items()):
            line = self._entry_line[entry]
            views.append(
                BlockView(
                    set_index=set_index,
                    way=entry - set_index * self.entries_per_set,
                    tag=tag,
                    dirty=self._line_dirty[line],
                )
            )
        return views

    @property
    def global_accesses(self) -> int:
        """Lifetime access count; reset_stats() does not rewind it."""
        return self._access_base + self.stats.accesses

    def reset_stats(self) -> None:
        """Zero statistics (e.g. after warm-up); the event clock keeps running."""
        self._access_base += self.stats.accesses
        self.stats = CacheStats()

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on broken fptr/rptr links."""
        used_lines = 0
        for set_index in range(self.geometry.num_sets):
            table = self._tag_to_entry[set_index]
            for tag, entry in table.items():
                if self._entry_tag[entry] != tag:
                    raise InvariantViolation(
                        f"entry {entry}: stored tag disagrees with table"
                    )
                line = self._entry_line[entry]
                if line == _INVALID:
                    raise InvariantViolation(
                        f"entry {entry} valid but has no data line"
                    )
                if self._line_entry[line] != entry:
                    raise InvariantViolation(f"broken rptr for line {line}")
                used_lines += 1
            if sorted(self._tag_order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order out of sync with table"
                )
            if (len(table) + len(self._free_entries[set_index])
                    != self.entries_per_set):
                raise InvariantViolation(
                    f"set {set_index}: valid+free != entries_per_set"
                )
        if used_lines + len(self._free_lines) != self.geometry.num_lines:
            raise InvariantViolation("used+free data lines != num_lines")
