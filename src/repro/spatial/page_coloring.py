"""Page coloring with a pollute buffer — the ROCS baseline (§6.3).

The paper's Related Work discusses the OS-level alternative to
hardware spatial management: ROCS (Soares et al., MICRO 2008) monitors
per-page LLC miss rates and *re-colors* pages with persistently high
miss rates into a small dedicated cache region (the "pollute buffer"),
so streaming/polluting pages stop evicting useful blocks elsewhere.

This module reproduces that mechanism at trace level so the software
approach can be compared against the hardware schemes:

* addresses are grouped into 4 KB pages (64 lines of 64 B);
* an epoch-based monitor tracks per-page miss rates;
* pages crossing ``hot_threshold`` are re-colored into the pollute
  region (the top ``pollute_fraction`` of the sets); pages that cool
  down are un-colored the next epoch;
* re-coloring cost: the paper notes this software path is expensive
  (page flush + migration).  We count re-color events; stale copies
  left under the old color are not flushed — they simply age out,
  briefly wasting capacity, which under-charges ROCS slightly and is
  documented here.

Lookups key on the *full block address*, so re-colored blocks can
never alias blocks that map to the pollute sets natively.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.access import AccessKind
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, InvariantViolation
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats

#: 4 KB pages of 64 B lines: 64 blocks per page.
PAGE_BLOCKS_BITS = 6


class PageColoringCache:
    """An LRU LLC fronted by a ROCS-style page re-coloring layer."""

    name = "ROCS"

    def __init__(
        self,
        geometry: CacheGeometry,
        pollute_fraction: float = 1 / 16,
        epoch_length: int = 20_000,
        hot_threshold: float = 0.75,
        cool_threshold: float = 0.375,
        min_samples: int = 16,
        rng: Optional[Lfsr] = None,
    ) -> None:
        if not 0.0 < pollute_fraction < 1.0:
            raise ConfigError(
                f"pollute_fraction must lie in (0, 1), got {pollute_fraction}"
            )
        if epoch_length <= 0:
            raise ConfigError(
                f"epoch_length must be positive, got {epoch_length}"
            )
        if not 0.0 < cool_threshold <= hot_threshold <= 1.0:
            raise ConfigError(
                "thresholds must satisfy 0 < cool <= hot <= 1, got "
                f"cool={cool_threshold}, hot={hot_threshold}"
            )
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.rng = rng if rng is not None else Lfsr()
        self.epoch_length = epoch_length
        self.hot_threshold = hot_threshold
        self.cool_threshold = cool_threshold
        self.min_samples = min_samples
        num_sets = geometry.num_sets
        self.pollute_sets = max(1, int(num_sets * pollute_fraction))
        self._pollute_base = num_sets - self.pollute_sets
        assoc = geometry.associativity
        self.stats = CacheStats()
        # Contents keyed by full block address (re-color safe).
        self._lookup: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self._way_block: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]
        # Page monitor state.
        self._colored: Dict[int, int] = {}  # page -> pollute set
        self._page_accesses: Dict[int, int] = {}
        self._page_misses: Dict[int, int] = {}
        self._epoch_position = 0
        self.recolor_events = 0
        self.uncolor_events = 0

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def _page_of(self, block: int) -> int:
        return block >> PAGE_BLOCKS_BITS

    def _set_of(self, block: int, page: int) -> int:
        pollute_set = self._colored.get(page)
        if pollute_set is not None:
            return pollute_set
        return block & (self.geometry.num_sets - 1)

    def is_colored(self, page: int) -> bool:
        """True when ``page`` currently lives in the pollute buffer."""
        return page in self._colored

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Service one access through the re-coloring layer."""
        block = self.mapper.block_address(address)
        page = self._page_of(block)
        set_index = self._set_of(block, page)
        stats = self.stats
        stats.accesses += 1
        self._page_accesses[page] = self._page_accesses.get(page, 0) + 1
        way = self._lookup[set_index].get(block)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            order = self._order[set_index]
            order.remove(way)
            order.append(way)
            self._tick_epoch()
            return AccessKind.LOCAL_HIT
        stats.misses += 1
        stats.misses_single_probe += 1
        self._page_misses[page] = self._page_misses.get(page, 0) + 1
        free = self._free[set_index]
        if free:
            way = free.pop()
        else:
            way = self._order[set_index].pop(0)
            victim = self._way_block[set_index][way]
            del self._lookup[set_index][victim]
            stats.evictions += 1
            if self._dirty[set_index][way]:
                stats.writebacks += 1
        self._lookup[set_index][block] = way
        self._way_block[set_index][way] = block
        self._dirty[set_index][way] = is_write
        self._order[set_index].append(way)
        self._tick_epoch()
        return AccessKind.MISS

    # ------------------------------------------------------------------
    # Epoch-based page classification
    # ------------------------------------------------------------------

    def _tick_epoch(self) -> None:
        self._epoch_position += 1
        if self._epoch_position < self.epoch_length:
            return
        self._epoch_position = 0
        self._reclassify()

    def _reclassify(self) -> None:
        """Re-color hot-missing pages; un-color cooled ones."""
        for page, accesses in self._page_accesses.items():
            if accesses < self.min_samples:
                continue
            rate = self._page_misses.get(page, 0) / accesses
            colored = page in self._colored
            if not colored and rate >= self.hot_threshold:
                pollute_set = self._pollute_base + (
                    page % self.pollute_sets
                )
                self._colored[page] = pollute_set
                self.recolor_events += 1
            elif colored and rate < self.cool_threshold:
                del self._colored[page]
                self.uncolor_events += 1
        self._page_accesses.clear()
        self._page_misses.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def colored_pages(self) -> int:
        """Pages currently mapped into the pollute buffer."""
        return len(self._colored)

    def reset_stats(self) -> None:
        """Zero statistics (coloring state is preserved)."""
        self.stats = CacheStats()

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on structural inconsistency."""
        for set_index in range(self.geometry.num_sets):
            table = self._lookup[set_index]
            for block, way in table.items():
                if self._way_block[set_index][way] != block:
                    raise InvariantViolation(
                        f"block/way mismatch in set {set_index} way {way}"
                    )
            occupancy = len(table) + len(self._free[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
            if sorted(self._order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order out of sync with table"
                )
