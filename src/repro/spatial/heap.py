"""The hardware heap of candidate giver sets.

STEM keeps "a small number of uncoupled giver sets that are less
saturated than others" in a hardware heap (Section 4.5), similar to
SBC's Destination Set Selector.  When a giver posts itself, the heap
either fills an invalid entry or replaces its most-saturated entry if
the newcomer is less saturated.  When a taker requests a partner, the
heap returns its least-saturated entry that still passes a validity
check (uncoupled, still a giver) — entries are validated lazily at pop
time, the way real tables tolerate stale metadata.

Capacity is small (16 entries by default) so the linear scans below
model exactly what a hardware priority structure would do in parallel.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigError

#: Accepts a candidate set index; False drops the stale entry.
Validator = Callable[[int], bool]


class GiverHeap:
    """Bounded least-saturation-first pool of candidate giver sets."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._saturation: Dict[int, int] = {}
        self.offers = 0
        self.replacements = 0

    def __len__(self) -> int:
        return len(self._saturation)

    def __contains__(self, set_index: int) -> bool:
        return set_index in self._saturation

    def offer(self, set_index: int, saturation: int) -> bool:
        """Post a giver set; returns True if it is (now) tracked."""
        self.offers += 1
        entries = self._saturation
        if set_index in entries:
            entries[set_index] = saturation
            return True
        if len(entries) < self.capacity:
            entries[set_index] = saturation
            return True
        worst_index = max(entries, key=entries.get)
        if entries[worst_index] > saturation:
            del entries[worst_index]
            entries[set_index] = saturation
            self.replacements += 1
            return True
        return False

    def remove(self, set_index: int) -> None:
        """Drop an entry (e.g. the set just got coupled)."""
        self._saturation.pop(set_index, None)

    def entries(self) -> Dict[int, int]:
        """Snapshot of {set_index: saturation} (tests, fault injection)."""
        return dict(self._saturation)

    def force_entry(self, set_index: int, saturation: int) -> None:
        """Write one entry unconditionally — the fault-injection surface.

        Bypasses capacity and replacement so a campaign can model a
        glitched heap slot (stale index, even one naming a set that does
        not exist); :meth:`pop_best`'s lazy validation is what makes the
        real design tolerate exactly this kind of garbage.
        """
        self._saturation[set_index] = saturation

    def pop_best(self, validator: Validator) -> Optional[int]:
        """Return and remove the least-saturated valid giver, if any.

        Entries failing ``validator`` are discarded as stale, mirroring
        how the controller re-checks a candidate's monitor state before
        actually coupling with it.
        """
        entries = self._saturation
        while entries:
            best_index = min(entries, key=entries.get)
            del entries[best_index]
            if validator(best_index):
                return best_index
        return None
