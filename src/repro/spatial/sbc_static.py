"""Static SBC — the fixed-pairing variant of the Set Balancing Cache.

The SBC proposal (Rolán et al., MICRO 2009) comes in two flavours: the
*dynamic* SBC our :class:`~repro.spatial.sbc.SbcCache` models (pairs
chosen at run time by a Destination Set Selector) and a *static* SBC
where every set is permanently married to the set whose index differs
in the most significant index bit.  A saturated set displaces its LRU
victims into its fixed partner whenever the partner is less saturated,
and lookups probe the partner for cooperatively cached blocks.

Static SBC needs no selector or association table (the partner is a
wire), making it the cheapest spatial baseline — and a useful ablation
for how much SBC's dynamic partner choice is worth.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, InvariantViolation
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.obs.events import Eviction, Spill
from repro.obs.tracer import NULL_TRACER, Tracer


class StaticSbcCache:
    """Set Balancing Cache with fixed MSB-complement pairing."""

    name = "StaticSBC"

    def __init__(
        self,
        geometry: CacheGeometry,
        saturation_limit: Optional[int] = None,
        rng: Optional[Lfsr] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if geometry.num_sets < 2:
            raise ConfigError("static SBC needs at least two sets")
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.rng = rng if rng is not None else Lfsr()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        assoc = geometry.associativity
        num_sets = geometry.num_sets
        self.saturation_limit = (
            saturation_limit if saturation_limit is not None else 2 * assoc
        )
        if self.saturation_limit <= 0:
            raise ConfigError("saturation_limit must be positive")
        self.stats = CacheStats()
        # Lifetime accesses folded in by reset_stats() (event clock).
        self._access_base = 0
        self._partner_mask = num_sets >> 1
        self._lookup: List[dict] = [{} for _ in range(num_sets)]
        self._way_key: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]
        self._saturation: List[int] = [0] * num_sets
        self._cc_count: List[int] = [0] * num_sets

    def partner_of(self, set_index: int) -> int:
        """The fixed partner: MSB-complement of the set index."""
        return set_index ^ self._partner_mask

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Probe the home set, then the fixed partner for CC blocks."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        way = self._lookup[set_index].get(tag << 1)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            self._saturation[set_index] = max(
                0, self._saturation[set_index] - 1
            )
            if is_write:
                self._dirty[set_index][way] = True
            self._promote(set_index, way)
            return AccessKind.LOCAL_HIT
        partner = self.partner_of(set_index)
        probed_coop = self._cc_count[partner] > 0
        if probed_coop:
            coop_way = self._lookup[partner].get((tag << 1) | 1)
            if coop_way is not None:
                stats.hits += 1
                stats.cooperative_hits += 1
                self._saturation[set_index] = max(
                    0, self._saturation[set_index] - 1
                )
                if is_write:
                    self._dirty[partner][coop_way] = True
                self._promote(partner, coop_way)
                return AccessKind.COOP_HIT
        stats.misses += 1
        if probed_coop:
            stats.misses_double_probe += 1
        else:
            stats.misses_single_probe += 1
        self._saturation[set_index] = min(
            self.saturation_limit, self._saturation[set_index] + 1
        )
        self._fill(set_index, tag, is_write)
        return AccessKind.MISS_COOP if probed_coop else AccessKind.MISS

    def _promote(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def _fill(self, set_index: int, tag: int, is_write: bool) -> None:
        free = self._free[set_index]
        if free:
            way = free.pop()
        else:
            way = self._order[set_index][0]
            self._evict_for_fill(set_index, way)
        self._install(set_index, way, tag << 1, is_write)

    def _evict_for_fill(self, set_index: int, way: int) -> None:
        key = self._way_key[set_index][way]
        dirty = self._dirty[set_index][way]
        self._remove(set_index, way)
        if key & 1:
            # A cooperatively cached block leaves the chip.
            self._cc_count[set_index] -= 1
            if dirty:
                self.stats.writebacks += 1
            return
        partner = self.partner_of(set_index)
        source_saturated = (
            self._saturation[set_index] >= self.saturation_limit
        )
        partner_relaxed = (
            self._saturation[partner] < self._saturation[set_index]
        )
        if source_saturated and partner_relaxed:
            self._spill(set_index, partner, key >> 1, dirty)
            return
        if dirty:
            self.stats.writebacks += 1

    def _spill(self, source: int, partner: int, tag: int, dirty: bool) -> None:
        self.stats.spills += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Spill(
                access=self.stats.accesses,
                set_index=source,
                global_access=self._access_base + self.stats.accesses,
                giver=partner,
                tag=tag,
                dirty=dirty,
            ))
        free = self._free[partner]
        if free:
            way = free.pop()
        else:
            way = self._order[partner][0]
            victim_key = self._way_key[partner][way]
            victim_dirty = self._dirty[partner][way]
            self._remove(partner, way)
            if victim_key & 1:
                self._cc_count[partner] -= 1
            if victim_dirty:
                self.stats.writebacks += 1
        self._install(partner, way, (tag << 1) | 1, dirty)
        self._cc_count[partner] += 1

    def _install(self, set_index: int, way: int, key: int, dirty: bool) -> None:
        self._lookup[set_index][key] = way
        self._way_key[set_index][way] = key
        self._dirty[set_index][way] = dirty
        self._order[set_index].append(way)

    def _remove(self, set_index: int, way: int) -> None:
        key = self._way_key[set_index][way]
        del self._lookup[set_index][key]
        self._way_key[set_index][way] = None
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                tag=key >> 1,
                dirty=self._dirty[set_index][way],
                cooperative=bool(key & 1),
            ))
        self._dirty[set_index][way] = False
        self._order[set_index].remove(way)
        self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def saturation_of(self, set_index: int) -> int:
        """Current saturation level (for tests)."""
        return self._saturation[set_index]

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Views of the valid blocks in ``set_index``."""
        views = []
        for key, way in sorted(self._lookup[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=key >> 1,
                    dirty=self._dirty[set_index][way],
                    cooperative=bool(key & 1),
                )
            )
        return views

    @property
    def global_accesses(self) -> int:
        """Lifetime access count; reset_stats() does not rewind it."""
        return self._access_base + self.stats.accesses

    def reset_stats(self) -> None:
        """Zero statistics (e.g. after warm-up); the event clock keeps running."""
        self._access_base += self.stats.accesses
        self.stats = CacheStats()

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on structural inconsistency."""
        for set_index in range(self.geometry.num_sets):
            table = self._lookup[set_index]
            cc_blocks = sum(1 for key in table if key & 1)
            if cc_blocks != self._cc_count[set_index]:
                raise InvariantViolation(
                    f"set {set_index}: cc bookkeeping mismatch"
                )
            occupancy = len(table) + len(self._free[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
            if sorted(self._order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order out of sync with table"
                )
