"""Spatial LLC management: V-Way, SBC and their shared structures."""

from repro.spatial.association import AssociationTable
from repro.spatial.heap import GiverHeap
from repro.spatial.page_coloring import PageColoringCache
from repro.spatial.sbc import SbcCache
from repro.spatial.sbc_static import StaticSbcCache
from repro.spatial.victim_cache import VictimCache
from repro.spatial.vway import VwayCache

__all__ = [
    "AssociationTable",
    "GiverHeap",
    "PageColoringCache",
    "SbcCache",
    "StaticSbcCache",
    "VictimCache",
    "VwayCache",
]
