"""SBC — the (dynamic) Set Balancing Cache (Rolán et al., MICRO 2009).

SBC measures each set's *saturation level* — the difference between its
miss and hit counts, kept in a saturating counter — and couples a
highly-saturated *source* set with a lowly-saturated *destination* set
chosen by a Destination Set Selector.  While coupled, the source
displaces its LRU victims into the destination (MRU insertion), and a
lookup that misses in the source probes the destination for
cooperatively cached blocks.

We implement the behaviour the STEM paper describes and critiques
(Sections 3.1, 4.6, 6.2):

* the saturation metric is the miss/hit count difference;
* receiving is **unconditional** while the pair is associated — the
  destination cannot refuse spills (STEM's "pollution" critique);
* the pair dissolves when the destination has evicted every
  cooperatively cached block (Section 4.7's description of SBC).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, InvariantViolation
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.obs.events import CoopHit, Coupling, Decoupling, Eviction, Spill
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spatial.association import AssociationTable
from repro.spatial.heap import GiverHeap

_ROLE_NONE = 0
_ROLE_SOURCE = 1
_ROLE_DEST = 2


class SbcCache:
    """Dynamic Set Balancing Cache over an LRU substrate."""

    name = "SBC"

    def __init__(
        self,
        geometry: CacheGeometry,
        heap_capacity: int = 16,
        saturation_limit: Optional[int] = None,
        couple_threshold: Optional[int] = None,
        rng: Optional[Lfsr] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.rng = rng if rng is not None else Lfsr()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        assoc = geometry.associativity
        num_sets = geometry.num_sets
        if num_sets < 2:
            raise ConfigError("SBC needs at least two sets to balance")
        # Saturation counter range and the "low saturation" bar for
        # destination eligibility (half of the maximum, as in the SBC
        # proposal's notion of less-saturated sets).
        self.saturation_limit = (
            saturation_limit if saturation_limit is not None else 2 * assoc
        )
        if self.saturation_limit <= 0:
            raise ConfigError("saturation_limit must be positive")
        self.couple_threshold = (
            couple_threshold
            if couple_threshold is not None
            else self.saturation_limit // 2
        )
        self.stats = CacheStats()
        # Lifetime accesses folded in by reset_stats() (event clock).
        self._access_base = 0
        self.association = AssociationTable(num_sets)
        self.heap = GiverHeap(heap_capacity)
        # Per-set block state: key = (tag << 1) | cc_bit  ->  way.
        self._lookup: List[dict] = [{} for _ in range(num_sets)]
        self._way_key: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]
        self._saturation: List[int] = [0] * num_sets
        self._role: List[int] = [_ROLE_NONE] * num_sets
        self._cc_count: List[int] = [0] * num_sets
        # Ledger attribution counters (tracer-guarded, reset with the
        # stats; underscore-prefixed so the manifest hash ignores them).
        self._led_hits: List[int] = [0] * num_sets
        self._led_coop: List[int] = [0] * num_sets

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Look up ``address`` in its home set and, for coupled sources,
        the associated destination set; fill on miss."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        local_key = tag << 1
        way = self._lookup[set_index].get(local_key)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if self.tracer.enabled:
                self._led_hits[set_index] += 1
            self._on_set_hit(set_index)
            if is_write:
                self._dirty[set_index][way] = True
            self._promote(set_index, way)
            return AccessKind.LOCAL_HIT
        probed_coop = False
        if self._role[set_index] == _ROLE_SOURCE:
            dest = self.association.partner_of(set_index)
            probed_coop = True
            coop_way = self._lookup[dest].get((tag << 1) | 1)
            if coop_way is not None:
                stats.hits += 1
                stats.cooperative_hits += 1
                tracer = self.tracer
                if tracer.enabled:
                    self._led_hits[set_index] += 1
                    self._led_coop[set_index] += 1
                    tracer.emit(CoopHit(
                        access=stats.accesses,
                        set_index=set_index,
                        global_access=self._access_base + stats.accesses,
                        giver=dest,
                    ))
                self._on_set_hit(set_index)
                if is_write:
                    self._dirty[dest][coop_way] = True
                self._promote(dest, coop_way)
                return AccessKind.COOP_HIT
        stats.misses += 1
        if probed_coop:
            stats.misses_double_probe += 1
        else:
            stats.misses_single_probe += 1
        saturation = min(self.saturation_limit, self._saturation[set_index] + 1)
        self._saturation[set_index] = saturation
        self._fill(set_index, tag, is_write)
        return AccessKind.MISS_COOP if probed_coop else AccessKind.MISS

    def _on_set_hit(self, set_index: int) -> None:
        """Hit accounting: saturation decays; low sets post to the DSS."""
        saturation = max(0, self._saturation[set_index] - 1)
        self._saturation[set_index] = saturation
        if (
            saturation < self.couple_threshold
            and self._role[set_index] == _ROLE_NONE
        ):
            self.heap.offer(set_index, saturation)

    def _promote(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    # ------------------------------------------------------------------
    # Fill / spill machinery
    # ------------------------------------------------------------------

    def _fill(self, set_index: int, tag: int, is_write: bool) -> None:
        free = self._free[set_index]
        if free:
            way = free.pop()
        else:
            way = self._order[set_index][0]
            self._evict_for_fill(set_index, way)
        self._install(set_index, way, (tag << 1), is_write)

    def _evict_for_fill(self, set_index: int, way: int) -> None:
        """Evict the LRU block of ``set_index`` ahead of a demand fill."""
        key = self._way_key[set_index][way]
        dirty = self._dirty[set_index][way]
        self._remove(set_index, way)
        if key & 1:
            # A cooperatively cached block: it belongs to the coupled
            # source; its loss may dissolve the pair.
            self._drop_cooperative(set_index, dirty)
            return
        if self._role[set_index] == _ROLE_SOURCE:
            self._spill(set_index, key >> 1, dirty)
            return
        if (
            self._role[set_index] == _ROLE_NONE
            and self._saturation[set_index] >= self.saturation_limit
        ):
            dest = self._try_couple(set_index)
            if dest is not None:
                self._spill(set_index, key >> 1, dirty)
                return
        self._evict_off_chip(dirty)

    def _drop_cooperative(self, dest_index: int, dirty: bool) -> None:
        self._evict_off_chip(dirty)
        self._cc_count[dest_index] -= 1
        if self._cc_count[dest_index] == 0:
            source = self.association.partner_of(dest_index)
            self._decouple(source, dest_index)

    def _spill(self, source_index: int, tag: int, dirty: bool) -> None:
        """Displace a source victim into the destination at MRU."""
        dest = self.association.partner_of(source_index)
        self.stats.spills += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Spill(
                access=self.stats.accesses,
                set_index=source_index,
                global_access=self._access_base + self.stats.accesses,
                giver=dest,
                tag=tag,
                dirty=dirty,
            ))
        free = self._free[dest]
        if free:
            way = free.pop()
        else:
            way = self._order[dest][0]
            victim_key = self._way_key[dest][way]
            victim_dirty = self._dirty[dest][way]
            self._remove(dest, way)
            self._evict_off_chip(victim_dirty)
            if victim_key & 1:
                # Replacing one cooperative block with another keeps the
                # pair alive: adjust the count without a decouple check
                # because the insert below restores it.
                self._cc_count[dest] -= 1
        self._install(dest, way, (tag << 1) | 1, dirty)
        self._cc_count[dest] += 1

    def _install(self, set_index: int, way: int, key: int, dirty: bool) -> None:
        self._lookup[set_index][key] = way
        self._way_key[set_index][way] = key
        self._dirty[set_index][way] = dirty
        self._order[set_index].append(way)  # SBC inserts at MRU.

    def _remove(self, set_index: int, way: int) -> None:
        key = self._way_key[set_index][way]
        del self._lookup[set_index][key]
        self._way_key[set_index][way] = None
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                tag=key >> 1,
                dirty=self._dirty[set_index][way],
                cooperative=bool(key & 1),
            ))
        self._dirty[set_index][way] = False
        self._order[set_index].remove(way)
        self.stats.evictions += 1

    def _evict_off_chip(self, dirty: bool) -> None:
        if dirty:
            self.stats.writebacks += 1

    # ------------------------------------------------------------------
    # Coupling management
    # ------------------------------------------------------------------

    def _try_couple(self, source_index: int) -> Optional[int]:
        def _valid(candidate: int) -> bool:
            return (
                candidate != source_index
                and self._role[candidate] == _ROLE_NONE
                and self._saturation[candidate] < self.couple_threshold
            )

        dest = self.heap.pop_best(_valid)
        if dest is None:
            return None
        self.association.couple(source_index, dest)
        self._role[source_index] = _ROLE_SOURCE
        self._role[dest] = _ROLE_DEST
        self.heap.remove(source_index)
        self.stats.couplings += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Coupling(
                access=self.stats.accesses,
                set_index=source_index,
                global_access=self._access_base + self.stats.accesses,
                giver=dest,
            ))
        return dest

    def _decouple(self, source_index: int, dest_index: int) -> None:
        self.association.decouple(source_index, dest_index)
        self._role[source_index] = _ROLE_NONE
        self._role[dest_index] = _ROLE_NONE
        self.stats.decouplings += 1
        tracer = self.tracer
        if tracer.enabled:
            # SBC dissolves a pair only when the destination drains its
            # last cooperative block.  A destination whose saturation
            # climbed back above the coupling bar stopped looking like
            # a lender — its demand recovered (role change); one still
            # below it simply aged the source's blocks out.
            reason = (
                "giver_drained"
                if self._saturation[dest_index] < self.couple_threshold
                else "role_change"
            )
            tracer.emit(Decoupling(
                access=self.stats.accesses,
                set_index=source_index,
                global_access=self._access_base + self.stats.accesses,
                giver=dest_index,
                reason=reason,
            ))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def saturation_of(self, set_index: int) -> int:
        """Current saturation level of ``set_index`` (for tests)."""
        return self._saturation[set_index]

    def role_of(self, set_index: int) -> str:
        """'none', 'source' or 'dest' (for tests and analyses)."""
        return ("none", "source", "dest")[self._role[set_index]]

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Views of the valid blocks in ``set_index``."""
        views = []
        for key, way in sorted(self._lookup[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=key >> 1,
                    dirty=self._dirty[set_index][way],
                    cooperative=bool(key & 1),
                )
            )
        return views

    @property
    def global_accesses(self) -> int:
        """Lifetime access count; reset_stats() does not rewind it."""
        return self._access_base + self.stats.accesses

    def ledger_counters(self) -> Dict[str, List[int]]:
        """Per-set attribution counters for the capacity-flow ledger.

        Tracer-guarded and window-aligned like
        :meth:`repro.core.stem_cache.StemCache.ledger_counters`; SBC
        has no policy swaps, so there is no ``swapped_policy_hits``
        row and its temporal component is structurally zero.
        """
        return {
            "hits": list(self._led_hits),
            "cooperative_hits": list(self._led_coop),
        }

    def reset_stats(self) -> None:
        """Zero statistics (e.g. after warm-up); the event clock keeps running."""
        self._access_base += self.stats.accesses
        self.stats = CacheStats()
        num_sets = self.geometry.num_sets
        self._led_hits = [0] * num_sets
        self._led_coop = [0] * num_sets

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on structural inconsistency."""
        self.association.check_invariants()
        for set_index in range(self.geometry.num_sets):
            table = self._lookup[set_index]
            cc_blocks = sum(1 for key in table if key & 1)
            if self._role[set_index] == _ROLE_DEST:
                if cc_blocks != self._cc_count[set_index]:
                    raise InvariantViolation(
                        f"set {set_index}: cc bookkeeping mismatch"
                    )
                if not self.association.is_coupled(set_index):
                    raise InvariantViolation(
                        f"set {set_index}: dest role without a coupling"
                    )
            elif cc_blocks != 0:
                raise InvariantViolation(
                    f"set {set_index}: cooperative blocks outside a dest set"
                )
            occupancy = len(table) + len(self._free[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
            if sorted(self._order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order out of sync with table"
                )
