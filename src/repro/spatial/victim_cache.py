"""Victim cache — Jouppi's classic global spill buffer (extension).

The oldest spatial capacity mechanism: a small fully-associative
buffer catches every block the main cache evicts; a main-cache miss
probes the buffer and, on a hit, swaps the block back into its home
set.  It attacks the same set-level non-uniformity STEM targets — hot
sets effectively borrow the buffer's capacity — but with a single
shared pool instead of pairwise cooperation, and with no notion of
temporal management at all.  Included as an extension baseline; the
buffer probe costs a second tag access, so buffer hits map onto the
paper's "second hit" (20-cycle) timing class.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, InvariantViolation
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats


class VictimCache:
    """Set-associative LRU main cache + fully-associative victim buffer."""

    name = "Victim"

    def __init__(
        self,
        geometry: CacheGeometry,
        buffer_entries: int = 64,
        rng: Optional[Lfsr] = None,
    ) -> None:
        if buffer_entries <= 0:
            raise ConfigError(
                f"buffer_entries must be positive, got {buffer_entries}"
            )
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.rng = rng if rng is not None else Lfsr()
        self.buffer_entries = buffer_entries
        self.stats = CacheStats()
        num_sets = geometry.num_sets
        assoc = geometry.associativity
        self._lookup: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self._way_tag: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]
        # Victim buffer: block address -> dirty, in LRU insertion order.
        self._buffer: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Probe the home set, then the victim buffer; fill on miss."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        way = self._lookup[set_index].get(tag)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            order = self._order[set_index]
            order.remove(way)
            order.append(way)
            return AccessKind.LOCAL_HIT
        block = self.mapper.block_address(address)
        buffered_dirty = self._buffer.pop(block, None)
        if buffered_dirty is not None:
            # Buffer hit: swap the block back into its home set.
            stats.hits += 1
            stats.cooperative_hits += 1
            self._fill(set_index, tag, buffered_dirty or is_write)
            return AccessKind.COOP_HIT
        stats.misses += 1
        stats.misses_double_probe += 1  # the buffer probe happened
        self._fill(set_index, tag, is_write)
        return AccessKind.MISS_COOP

    def _fill(self, set_index: int, tag: int, dirty: bool) -> None:
        free = self._free[set_index]
        if free:
            way = free.pop()
        else:
            way = self._order[set_index].pop(0)
            victim_tag = self._way_tag[set_index][way]
            victim_dirty = self._dirty[set_index][way]
            del self._lookup[set_index][victim_tag]
            self.stats.evictions += 1
            self._spill_to_buffer(
                self.mapper.compose(victim_tag, set_index)
                >> self.mapper.offset_bits,
                victim_dirty,
            )
        self._lookup[set_index][tag] = way
        self._way_tag[set_index][way] = tag
        self._dirty[set_index][way] = dirty
        self._order[set_index].append(way)

    def _spill_to_buffer(self, block: int, dirty: bool) -> None:
        """File a main-cache victim; the buffer's LRU leaves the chip."""
        self.stats.spills += 1
        if block in self._buffer:
            dirty = dirty or self._buffer.pop(block)
        elif len(self._buffer) >= self.buffer_entries:
            oldest = next(iter(self._buffer))
            oldest_dirty = self._buffer.pop(oldest)
            if oldest_dirty:
                self.stats.writebacks += 1
        self._buffer[block] = dirty

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def buffer_occupancy(self) -> int:
        """Blocks currently held by the victim buffer."""
        return len(self._buffer)

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Views of the valid blocks in ``set_index`` (main cache)."""
        views = []
        for tag, way in sorted(self._lookup[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=tag,
                    dirty=self._dirty[set_index][way],
                )
            )
        return views

    def reset_stats(self) -> None:
        """Zero statistics."""
        self.stats = CacheStats()

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on structural inconsistency."""
        if len(self._buffer) > self.buffer_entries:
            raise InvariantViolation("victim buffer exceeds its capacity")
        for set_index in range(self.geometry.num_sets):
            table = self._lookup[set_index]
            for tag, way in table.items():
                if self._way_tag[set_index][way] != tag:
                    raise InvariantViolation(
                        f"tag/way mismatch in set {set_index} way {way}"
                    )
                # Exclusivity: a resident block is never also buffered.
                block = (
                    self.mapper.compose(tag, set_index)
                    >> self.mapper.offset_bits
                )
                if block in self._buffer:
                    raise InvariantViolation(
                        f"block {block:#x} resident and buffered at once"
                    )
            occupancy = len(table) + len(self._free[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
            if sorted(self._order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order out of sync with table"
                )
