"""Association table: the pairing state for inter-set cooperation.

Both SBC and STEM keep a table with one entry per set holding the index
of the set it is coupled with; an uncoupled set's entry holds its own
index (Section 4.5, following the SBC design).  Table 3 sizes it at
2048 entries x 11 bits.  The table enforces the schemes' structural
invariants: pairing is symmetric, one-to-one, and never self-coupled
while marked as a pair.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError, InvariantViolation, SimulationError


class AssociationTable:
    """Symmetric one-to-one set pairing."""

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ConfigError(f"num_sets must be positive, got {num_sets}")
        self.num_sets = num_sets
        self._partner: List[int] = list(range(num_sets))
        self.couplings = 0
        self.decouplings = 0

    def is_coupled(self, set_index: int) -> bool:
        """True when ``set_index`` is currently paired with another set."""
        return self._partner[set_index] != set_index

    def partner_of(self, set_index: int) -> Optional[int]:
        """The coupled partner of ``set_index``, or None if uncoupled."""
        partner = self._partner[set_index]
        return None if partner == set_index else partner

    def couple(self, first: int, second: int) -> None:
        """Pair two currently-uncoupled distinct sets."""
        if first == second:
            raise SimulationError(f"cannot couple set {first} with itself")
        if self.is_coupled(first) or self.is_coupled(second):
            raise SimulationError(
                f"couple({first}, {second}): a participant is already coupled"
            )
        self._partner[first] = second
        self._partner[second] = first
        self.couplings += 1

    def decouple(self, first: int, second: int) -> None:
        """Dissolve an existing pair, resetting both entries (§4.7)."""
        if self._partner[first] != second or self._partner[second] != first:
            raise SimulationError(
                f"decouple({first}, {second}): sets are not coupled together"
            )
        self._partner[first] = first
        self._partner[second] = second
        self.decouplings += 1

    def check_invariants(self) -> None:
        """Verify the pairing relation is a symmetric partial matching.

        Raises :class:`InvariantViolation` (rather than ``assert``-ing,
        so the check survives ``python -O``) on the first bad entry.
        """
        for index in range(self.num_sets):
            partner = self._partner[index]
            if not isinstance(partner, int) or not 0 <= partner < self.num_sets:
                raise InvariantViolation(
                    f"association entry {index} points outside the table: "
                    f"{partner!r}"
                )
            if partner != index and self._partner[partner] != index:
                raise InvariantViolation(
                    f"asymmetric pairing: {index} -> {partner} -> "
                    f"{self._partner[partner]}"
                )

    # ------------------------------------------------------------------
    # Fault-injection and recovery surface
    # ------------------------------------------------------------------

    def raw_entry(self, set_index: int) -> int:
        """The stored entry for ``set_index``, however corrupt."""
        return self._partner[set_index]

    def force_entry(self, set_index: int, value: int) -> None:
        """Overwrite one entry with no consistency checks.

        This is the fault-injection surface (a bit flip in the table
        RAM) and the recovery surface (safe mode resetting an entry to
        identity); normal coupling must go through :meth:`couple`.
        """
        self._partner[set_index] = value

    def repair(self) -> List[int]:
        """Reset every out-of-range or asymmetric entry to identity.

        Returns the indices whose entries were repaired, so the caller
        (STEM's safe mode) knows which sets lost their pairing state.
        """
        repaired: List[int] = []
        for index in range(self.num_sets):
            partner = self._partner[index]
            if not isinstance(partner, int) or not 0 <= partner < self.num_sets:
                self._partner[index] = index
                repaired.append(index)
        for index in range(self.num_sets):
            partner = self._partner[index]
            if partner != index and self._partner[partner] != index:
                self._partner[index] = index
                repaired.append(index)
        return repaired

    def storage_bits(self) -> int:
        """Storage cost of the table (Table 3: entries x index width)."""
        index_bits = max(1, (self.num_sets - 1).bit_length())
        return self.num_sets * index_bits
