"""repro — a reproduction of "STEM: Spatiotemporal Management of
Capacity for Intra-Core Last Level Caches" (Zhan, Jiang & Seth,
MICRO 2010).

The package builds the paper's whole experimental stack in pure Python:

* :mod:`repro.core` — the STEM LLC itself (shadow-set monitors,
  saturating counters, set coupling, per-set LRU/BIP dueling);
* :mod:`repro.policies` — the temporal baselines (LRU, LIP, BIP, DIP,
  PeLIFO, …) plus Belady's OPT oracle;
* :mod:`repro.spatial` — the spatial baselines (V-Way, SBC);
* :mod:`repro.cache` — the set-associative substrate, hierarchy, DRAM;
* :mod:`repro.workloads` — synthetic and SPEC-like trace generation;
* :mod:`repro.analysis` / :mod:`repro.timing` — capacity-demand
  profiling, MPKI/AMAT/CPI models, hardware overhead accounting;
* :mod:`repro.sim` / :mod:`repro.experiments` — the runner and one
  module per paper figure/table;
* :mod:`repro.obs` — observability: typed event tracing, run
  manifests/provenance, and hot-loop profiling;
* :mod:`repro.resilience` — deterministic fault injection, safe-mode
  degradation, and the crash-tolerant run harness.

Quickstart::

    from repro import CacheGeometry, StemCache, make_benchmark_trace, run_trace

    geometry = CacheGeometry(num_sets=256, associativity=16)
    cache = StemCache(geometry)
    result = run_trace(cache, make_benchmark_trace("omnetpp"))
    print(result.mpki, result.amat, result.cpi)
"""

from repro.cache import (
    AccessKind,
    CacheGeometry,
    CacheHierarchy,
    MainMemory,
    SetAssociativeCache,
)
from repro.core import StemCache, StemConfig
from repro.obs import (
    JsonlSink,
    LedgerSink,
    NULL_TRACER,
    RingBufferSink,
    RunLedger,
    RunManifest,
    RunProfiler,
    TraceEvent,
    Tracer,
    attribute,
    build_manifest,
    load_events,
    summarize_events,
)
from repro.policies import available_policies, make_policy
from repro.resilience import FaultPlan, RetryPolicy, run_fault_campaign
from repro.sim import (
    ExperimentScale,
    PAPER_SCHEMES,
    available_schemes,
    make_scheme,
    run_benchmarks,
    run_trace,
)
from repro.spatial import SbcCache, VwayCache
from repro.workloads import (
    Trace,
    benchmark_names,
    figure2_trace,
    generate_trace,
    make_benchmark_trace,
)

from repro._version import __version__

__all__ = [
    "AccessKind",
    "CacheGeometry",
    "CacheHierarchy",
    "ExperimentScale",
    "FaultPlan",
    "JsonlSink",
    "LedgerSink",
    "MainMemory",
    "NULL_TRACER",
    "PAPER_SCHEMES",
    "RetryPolicy",
    "RingBufferSink",
    "RunLedger",
    "RunManifest",
    "RunProfiler",
    "SbcCache",
    "SetAssociativeCache",
    "StemCache",
    "StemConfig",
    "Trace",
    "TraceEvent",
    "Tracer",
    "VwayCache",
    "attribute",
    "available_policies",
    "available_schemes",
    "benchmark_names",
    "build_manifest",
    "figure2_trace",
    "generate_trace",
    "load_events",
    "make_benchmark_trace",
    "make_policy",
    "make_scheme",
    "run_benchmarks",
    "run_fault_campaign",
    "run_trace",
    "summarize_events",
    "__version__",
]
