"""Belady's optimal replacement (OPT/MIN) — the offline oracle.

The paper invokes "Belady's optimal algorithm" as the ideal every
hardware policy approximates (Section 2.2), and the set-level capacity
demand characterisation of Figure 1 is defined against the conflict
misses an oracle-capacity set would incur.  This module provides:

* :func:`opt_misses` — the minimum achievable misses for one reference
  stream and a given capacity, via the classic farthest-next-use rule;
* :class:`OptSimulator` — a per-set OPT evaluator for whole traces,
  used by analyses and tests as a lower bound.

OPT here is *demand-fetch* OPT: every cold reference still misses.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence

from repro.common.errors import ConfigError

#: Sentinel "next use" for blocks never referenced again.
_NEVER = 1 << 62


def _next_use_chain(stream: Sequence[int]) -> List[int]:
    """next_use[i] = index of the next reference to stream[i], or _NEVER."""
    next_use = [_NEVER] * len(stream)
    last_seen: Dict[int, int] = {}
    for index in range(len(stream) - 1, -1, -1):
        block = stream[index]
        next_use[index] = last_seen.get(block, _NEVER)
        last_seen[block] = index
    return next_use


def opt_misses(stream: Sequence[int], capacity: int) -> int:
    """Minimum misses for ``stream`` under a ``capacity``-block cache.

    Implements Belady's MIN with a lazy max-heap of (next-use, block)
    pairs; stale heap entries are skipped at pop time, keeping the whole
    computation O(N log N).
    """
    if capacity <= 0:
        raise ConfigError(f"capacity must be positive, got {capacity}")
    next_use = _next_use_chain(stream)
    resident: Dict[int, int] = {}  # block -> next use index
    heap: List["tuple[int, int]"] = []  # (-next_use, block)
    misses = 0
    for index, block in enumerate(stream):
        upcoming = next_use[index]
        if block in resident:
            resident[block] = upcoming
            heapq.heappush(heap, (-upcoming, block))
            continue
        misses += 1
        if len(resident) >= capacity:
            while True:
                neg_use, candidate = heapq.heappop(heap)
                if resident.get(candidate) == -neg_use:
                    del resident[candidate]
                    break
        resident[block] = upcoming
        heapq.heappush(heap, (-upcoming, block))
    return misses


def opt_miss_curve(stream: Sequence[int], capacities: Iterable[int]) -> Dict[int, int]:
    """OPT misses for several capacities over the same stream."""
    return {capacity: opt_misses(stream, capacity) for capacity in capacities}


class OptSimulator:
    """Per-set OPT evaluation of a full block-address trace.

    Splits the trace into per-set reference streams with the supplied
    mapper and runs :func:`opt_misses` on each, giving the trace-wide
    optimal miss count for a conventional (non-cooperative) cache.
    """

    def __init__(self, mapper, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigError(
                f"associativity must be positive, got {associativity}"
            )
        self.mapper = mapper
        self.associativity = associativity

    def misses(self, addresses: Sequence[int]) -> int:
        """Total OPT misses across all sets for ``addresses``."""
        streams: Dict[int, List[int]] = {}
        for address in addresses:
            set_index, tag = self.mapper.split(address)
            streams.setdefault(set_index, []).append(tag)
        return sum(
            opt_misses(stream, self.associativity)
            for stream in streams.values()
        )
