"""Temporal LLC management: the replacement-policy family.

LRU/LIP/BIP/DIP/FIFO/Random/NRU/SRRIP are online policies pluggable
into :class:`repro.cache.basecache.SetAssociativeCache`; PeLIFO adds
fill-stack learning; :mod:`repro.policies.belady` provides the offline
OPT oracle used by analyses.
"""

from repro.policies.base import RecencyPolicy, ReplacementPolicy
from repro.policies.belady import OptSimulator, opt_miss_curve, opt_misses
from repro.policies.bip import BipPolicy
from repro.policies.dip import DipPolicy
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import FifoPolicy, LipPolicy, LruPolicy
from repro.policies.pelifo import PeLifoPolicy
from repro.policies.registry import available_policies, make_policy, register_policy
from repro.policies.simple import NruPolicy, RandomPolicy, SrripPolicy

__all__ = [
    "BipPolicy",
    "DipPolicy",
    "DrripPolicy",
    "FifoPolicy",
    "LipPolicy",
    "LruPolicy",
    "NruPolicy",
    "OptSimulator",
    "PeLifoPolicy",
    "RandomPolicy",
    "RecencyPolicy",
    "ReplacementPolicy",
    "SrripPolicy",
    "available_policies",
    "make_policy",
    "opt_miss_curve",
    "opt_misses",
    "register_policy",
]
