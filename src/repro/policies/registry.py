"""Name-based factory for replacement policies.

Experiments and the CLI-style example scripts refer to policies by the
names the paper uses ("LRU", "DIP", "PeLIFO", ...); this registry turns
those names into fresh policy objects.  Fresh objects matter: policies
carry per-set state, so they must never be shared across caches.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.policies.base import ReplacementPolicy
from repro.policies.bip import BipPolicy
from repro.policies.dip import DipPolicy
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import FifoPolicy, LipPolicy, LruPolicy
from repro.policies.pelifo import PeLifoPolicy
from repro.policies.simple import NruPolicy, RandomPolicy, SrripPolicy

_FACTORIES: Dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LruPolicy,
    "lip": LipPolicy,
    "bip": BipPolicy,
    "dip": DipPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "nru": NruPolicy,
    "srrip": SrripPolicy,
    "drrip": DrripPolicy,
    "pelifo": PeLifoPolicy,
}


def available_policies() -> List[str]:
    """Canonical (lower-case) names of every registered policy."""
    return sorted(_FACTORIES)


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate the policy registered under ``name`` (case-insensitive)."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise ConfigError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        )
    return factory()


def register_policy(name: str, factory: Callable[[], ReplacementPolicy]) -> None:
    """Register a custom policy factory (mainly for user extensions)."""
    key = name.lower()
    if key in _FACTORIES:
        raise ConfigError(f"policy {name!r} is already registered")
    _FACTORIES[key] = factory
