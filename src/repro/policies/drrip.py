"""DRRIP — Dynamic RRIP via set dueling (Jaleel et al., ISCA 2010).

An extension policy beyond the paper's evaluated set (DESIGN.md §6
lists it under the ablation/extension targets): SRRIP inserts blocks
with a "long" re-reference prediction, BRRIP inserts "distant" with a
1/32 bimodal exception (the RRIP analogue of BIP), and a PSEL counter
trained on leader sets picks the winner for the followers — exactly
DIP's dueling structure transplanted onto RRIP, which makes it a
natural extra baseline for STEM's set-level adaptivity.
"""

from __future__ import annotations

from typing import List

from repro.common.counters import PolicySelector
from repro.common.errors import ConfigError, SimulationError
from repro.policies.base import ReplacementPolicy

_SRRIP_LEADER = 0
_BRRIP_LEADER = 1
_FOLLOWER = 2


class DrripPolicy(ReplacementPolicy):
    """Set-dueling dynamic RRIP between SRRIP and BRRIP."""

    name = "DRRIP"

    def __init__(
        self,
        rrpv_bits: int = 2,
        leaders_per_policy: int = 32,
        psel_bits: int = 10,
        throttle_bits: int = 5,
    ) -> None:
        super().__init__()
        if rrpv_bits <= 0:
            raise ConfigError(f"rrpv_bits must be positive, got {rrpv_bits}")
        if leaders_per_policy <= 0:
            raise ConfigError(
                f"leaders_per_policy must be positive, got {leaders_per_policy}"
            )
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1
        self.leaders_per_policy = leaders_per_policy
        self.psel = PolicySelector(bits=psel_bits)
        self.throttle_bits = throttle_bits
        self._rrpv: List[List[int]] = []
        self._roles: List[int] = []

    def _allocate(self) -> None:
        self._rrpv = [
            [self.max_rrpv] * self.associativity for _ in range(self.num_sets)
        ]
        leaders = min(
            self.leaders_per_policy, max(1, self.num_sets // 32)
        )
        stride = max(2, self.num_sets // leaders)
        self._roles = [_FOLLOWER] * self.num_sets
        for index in range(0, self.num_sets, stride):
            self._roles[index] = _SRRIP_LEADER
        half = stride // 2
        for index in range(half, self.num_sets, stride):
            if self._roles[index] == _FOLLOWER:
                self._roles[index] = _BRRIP_LEADER

    def role_of(self, set_index: int) -> str:
        """'srrip-leader', 'brrip-leader' or 'follower' (for tests)."""
        return ("srrip-leader", "brrip-leader", "follower")[
            self._roles[set_index]
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_miss(self, set_index: int) -> None:
        role = self._roles[set_index]
        if role == _SRRIP_LEADER:
            self.psel.policy0_missed()
        elif role == _BRRIP_LEADER:
            self.psel.policy1_missed()

    def victim(self, set_index: int) -> int:
        values = self._rrpv[set_index]
        for _ in range(self.max_rrpv + 1):
            for way, value in enumerate(values):
                if value == self.max_rrpv:
                    return way
            for way in range(self.associativity):
                values[way] += 1
        raise SimulationError(
            f"DRRIP failed to converge on a victim in set {set_index}"
        )

    def _insert_long(self, set_index: int) -> bool:
        """True -> insert with 'long' RRPV (SRRIP behaviour)."""
        role = self._roles[set_index]
        if role == _SRRIP_LEADER:
            return True
        if role == _BRRIP_LEADER:
            return self.rng.one_in(self.throttle_bits)
        if self.psel.winner() == 0:
            return True
        return self.rng.one_in(self.throttle_bits)

    def on_fill(self, set_index: int, way: int) -> None:
        if self._insert_long(set_index):
            self._rrpv[set_index][way] = self.max_rrpv - 1
        else:
            self._rrpv[set_index][way] = self.max_rrpv

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.max_rrpv
