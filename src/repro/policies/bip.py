"""BIP — Bimodal Insertion Policy (Qureshi et al., ISCA 2007).

BIP behaves like LIP but inserts at MRU with a small probability
``1/2**throttle_bits`` (1/32 in the original paper and here), which lets
a slowly-changing working set eventually rotate through the protected
positions while still resisting thrashing.

The STEM paper calls this policy "Binomial Insertion Policy" in
Section 4.1; it is the same BIP of the DIP proposal, and it is the
second half of STEM's per-set LRU/BIP duel.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.policies.base import RecencyPolicy

#: 1/32 MRU-insertion probability, the DIP paper's epsilon.
DEFAULT_THROTTLE_BITS = 5


class BipPolicy(RecencyPolicy):
    """Bimodal insertion: MRU with probability 1/2**throttle_bits."""

    name = "BIP"

    def __init__(self, throttle_bits: int = DEFAULT_THROTTLE_BITS) -> None:
        super().__init__()
        if throttle_bits < 0:
            raise ConfigError(
                f"throttle_bits must be >= 0, got {throttle_bits}"
            )
        self.throttle_bits = throttle_bits

    def _insert_at_mru(self, set_index: int) -> bool:
        return self.rng.one_in(self.throttle_bits)
