"""Random, NRU and SRRIP — additional baseline policies.

Random and NRU are classic cheap policies used in the test suite as
sanity baselines; SRRIP (Jaleel et al., ISCA 2010) is included as an
"extension" temporal policy beyond the paper's evaluated set, useful in
the ablation benches.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError, SimulationError
from repro.policies.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection."""

    name = "Random"

    def on_hit(self, set_index: int, way: int) -> None:
        return None

    def victim(self, set_index: int) -> int:
        bits = max(1, (self.associativity - 1).bit_length())
        # Rejection-sample so every way is equally likely.
        while True:
            candidate = self.rng.next_bits(bits)
            if candidate < self.associativity:
                return candidate

    def on_fill(self, set_index: int, way: int) -> None:
        return None


class NruPolicy(ReplacementPolicy):
    """Not Recently Used: one reference bit per line, clock-style scan."""

    name = "NRU"

    def __init__(self) -> None:
        super().__init__()
        self._ref_bits: List[List[bool]] = []

    def _allocate(self) -> None:
        self._ref_bits = [
            [False] * self.associativity for _ in range(self.num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._ref_bits[set_index][way] = True

    def victim(self, set_index: int) -> int:
        bits = self._ref_bits[set_index]
        for way, referenced in enumerate(bits):
            if not referenced:
                return way
        # Everyone was referenced: clear the epoch and take way 0.
        for way in range(self.associativity):
            bits[way] = False
        return 0

    def on_fill(self, set_index: int, way: int) -> None:
        self._ref_bits[set_index][way] = True

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._ref_bits[set_index][way] = False


class SrripPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion (Jaleel et al., 2010).

    Blocks are inserted with a "long" re-reference prediction
    (``max_rrpv - 1``), promoted to "near-immediate" (0) on a hit, and
    the victim is the first block predicted "distant" (``max_rrpv``),
    aging every block when none qualifies.
    """

    name = "SRRIP"

    def __init__(self, rrpv_bits: int = 2) -> None:
        super().__init__()
        if rrpv_bits <= 0:
            raise ConfigError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = []

    def _allocate(self) -> None:
        self._rrpv = [
            [self.max_rrpv] * self.associativity for _ in range(self.num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def victim(self, set_index: int) -> int:
        values = self._rrpv[set_index]
        for _ in range(self.max_rrpv + 1):
            for way, value in enumerate(values):
                if value == self.max_rrpv:
                    return way
            for way in range(self.associativity):
                values[way] += 1
        raise SimulationError(
            f"SRRIP failed to converge on a victim in set {set_index}"
        )

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.max_rrpv - 1

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.max_rrpv
