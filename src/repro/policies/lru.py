"""LRU, LIP and FIFO — the plain recency-family baselines."""

from __future__ import annotations

from repro.policies.base import RecencyPolicy


class LruPolicy(RecencyPolicy):
    """Least Recently Used: insert at MRU, evict from LRU.

    The paper's baseline; every figure normalises against it.
    """

    name = "LRU"
    batch_insert_mru = True

    def _insert_at_mru(self, set_index: int) -> bool:
        return True


class LipPolicy(RecencyPolicy):
    """LRU Insertion Policy: insert at LRU, promote to MRU on hit.

    The thrash-proof endpoint of the DIP family — a block earns MRU
    status only by being re-referenced.
    """

    name = "LIP"
    batch_insert_mru = False

    def _insert_at_mru(self, set_index: int) -> bool:
        return False


class FifoPolicy(RecencyPolicy):
    """First-In First-Out: insertion order only, hits do not promote."""

    name = "FIFO"
    batch_insert_mru = True
    batch_hit_noop = True

    def _insert_at_mru(self, set_index: int) -> bool:
        return True

    def on_hit(self, set_index: int, way: int) -> None:
        # FIFO ignores hits: eviction order is purely fill order.
        return None
