"""DIP — Dynamic Insertion Policy via set dueling (Qureshi et al., 2007).

DIP dedicates two small groups of *leader* sets to LRU and BIP
respectively.  Misses in LRU leaders increment a PSEL saturating
counter, misses in BIP leaders decrement it, and every *follower* set
uses whichever policy the PSEL's MSB currently favours.  This is the
application/LLC-level adaptivity the STEM paper contrasts with its own
set-level adaptivity (Section 5.2's ``astar`` discussion shows exactly
the failure mode: one global winner imposed on heterogeneous sets).

Leader selection uses the "constituency" layout of the original paper:
with ``num_sets / leaders_per_policy = K``, set ``i`` is an LRU leader
when ``i % K == 0`` and a BIP leader when ``i % K == K // 2``.
"""

from __future__ import annotations

from repro.common.counters import PolicySelector
from repro.common.errors import ConfigError
from repro.policies.base import RecencyPolicy
from repro.policies.bip import DEFAULT_THROTTLE_BITS

#: Target number of leader sets per policy (DIP paper uses 32).
DEFAULT_LEADERS_PER_POLICY = 32

#: Width of the dueling counter (DIP paper uses 10 bits).
DEFAULT_PSEL_BITS = 10

_LRU_LEADER = 0
_BIP_LEADER = 1
_FOLLOWER = 2


class DipPolicy(RecencyPolicy):
    """Set-dueling dynamic insertion between LRU and BIP."""

    name = "DIP"

    def __init__(
        self,
        leaders_per_policy: int = DEFAULT_LEADERS_PER_POLICY,
        psel_bits: int = DEFAULT_PSEL_BITS,
        throttle_bits: int = DEFAULT_THROTTLE_BITS,
    ) -> None:
        super().__init__()
        if leaders_per_policy <= 0:
            raise ConfigError(
                f"leaders_per_policy must be positive, got {leaders_per_policy}"
            )
        self.leaders_per_policy = leaders_per_policy
        self.psel = PolicySelector(bits=psel_bits)
        self.throttle_bits = throttle_bits
        self._roles: list = []

    def _allocate(self) -> None:
        super()._allocate()
        # Scale the leader population down with the cache so dedicated
        # sets stay a small sample (the DIP paper uses 32 of 2048); tiny
        # test caches keep at least one leader per policy.
        leaders = min(
            self.leaders_per_policy,
            max(1, self.num_sets // 32),
        )
        stride = max(2, self.num_sets // leaders)
        self._roles = [_FOLLOWER] * self.num_sets
        for index in range(0, self.num_sets, stride):
            self._roles[index] = _LRU_LEADER
        half = stride // 2
        for index in range(half, self.num_sets, stride):
            if self._roles[index] == _FOLLOWER:
                self._roles[index] = _BIP_LEADER

    def role_of(self, set_index: int) -> str:
        """Role label for tests: 'lru-leader', 'bip-leader' or 'follower'."""
        return ("lru-leader", "bip-leader", "follower")[self._roles[set_index]]

    def on_miss(self, set_index: int) -> None:
        role = self._roles[set_index]
        if role == _LRU_LEADER:
            self.psel.policy0_missed()
        elif role == _BIP_LEADER:
            self.psel.policy1_missed()

    def _insert_at_mru(self, set_index: int) -> bool:
        role = self._roles[set_index]
        if role == _LRU_LEADER:
            return True
        if role == _BIP_LEADER:
            return self.rng.one_in(self.throttle_bits)
        if self.psel.winner() == 0:
            return True
        return self.rng.one_in(self.throttle_bits)
