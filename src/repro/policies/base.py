"""Replacement-policy interface used by every set-associative cache.

A policy object is *cache-level*: it owns per-set ranking state for all
sets and is driven by the cache through a small event protocol:

* ``attach(num_sets, associativity, rng)`` — allocate per-set state.
* ``on_hit(set_index, way)`` — a resident block was referenced.
* ``on_miss(set_index)`` — a lookup missed (fires before the fill; DIP
  uses it to train its PSEL dueling counter).
* ``victim(set_index)`` — choose a way to evict; only called when every
  way of the set is valid.
* ``on_fill(set_index, way)`` — a new block was installed in ``way``;
  the policy records its initial rank (this is where insertion policies
  such as BIP differ from LRU).
* ``on_invalidate(set_index, way)`` — a block was removed without
  replacement (cooperative-caching schemes move blocks between sets).

Keeping the policy outside the cache lets the same
:class:`~repro.cache.basecache.SetAssociativeCache` host every temporal
scheme in the paper, and lets STEM drive two rankings (LLC set + shadow
set) from one implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.common.rng import Lfsr


class ReplacementPolicy(ABC):
    """Abstract base for set-level replacement policies."""

    #: Human-readable policy name used in result tables.
    name = "base"

    #: True when ``on_hit`` is a no-op, letting batched loops skip the
    #: call entirely (FIFO is the only stock policy that qualifies).
    batch_hit_noop = False

    def __init__(self) -> None:
        self.num_sets = 0
        self.associativity = 0
        self.rng: Optional[Lfsr] = None

    def attach(self, num_sets: int, associativity: int, rng: Lfsr) -> None:
        """Size the per-set state for a cache of the given shape."""
        self.num_sets = num_sets
        self.associativity = associativity
        self.rng = rng
        self._allocate()

    def _allocate(self) -> None:
        """Hook for subclasses to build per-set state after sizing."""

    @abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        """Record a hit on ``way`` of ``set_index``."""

    def on_miss(self, set_index: int) -> None:
        """Record a miss in ``set_index`` (default: no-op)."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Pick the way to evict from a full set."""

    @abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record that a new block was installed in ``way``."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Record that ``way`` was invalidated (default: no-op)."""


class RecencyPolicy(ReplacementPolicy):
    """Shared machinery for recency-stack policies (LRU/LIP/BIP/DIP).

    Each set keeps an ordering of its valid ways: index 0 is the LRU
    position, the final index is the MRU position.  Subclasses only
    decide whether a *fill* lands at MRU or LRU — the famous one-bit
    difference that separates LRU from LIP/BIP (Qureshi et al., 2007).
    """

    #: Constant insertion position for the batched fast path: True (MRU),
    #: False (LRU) or None when the decision is dynamic and
    #: :meth:`_insert_at_mru` must be consulted per fill (BIP/DIP).
    batch_insert_mru: Optional[bool] = None

    def __init__(self) -> None:
        super().__init__()
        self._order: List[List[int]] = []

    def _allocate(self) -> None:
        self._order = [[] for _ in range(self.num_sets)]

    def recency_order(self, set_index: int) -> "tuple[int, ...]":
        """LRU-to-MRU way ordering (exposed for tests and analyses)."""
        return tuple(self._order[set_index])

    def _insert_at_mru(self, set_index: int) -> bool:
        """Decide the insertion position for a fill in ``set_index``."""
        raise NotImplementedError

    def on_hit(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def victim(self, set_index: int) -> int:
        order = self._order[set_index]
        if not order:
            raise SimulationError(
                f"victim() on empty ranking for set {set_index}"
            )
        return order[0]

    def on_fill(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        if way in order:
            order.remove(way)
        if self._insert_at_mru(set_index):
            order.append(way)
        else:
            order.insert(0, way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        if way in order:
            order.remove(way)
