"""PeLIFO — probabilistic escape LIFO (Chaudhuri, MICRO 2009).

PeLIFO ranks the blocks of a set by *fill order* (a fill stack) and
learns, from the distribution of hit depths in that stack, how far into
the stack blocks keep "escaping" (receiving hits).  It then evicts from
a learned shallow position instead of always evicting the LRU block,
which pins long-lived blocks at the bottom of the stack the way LIP/BIP
do, while set dueling against LRU protects recency-friendly workloads.

Reproduction notes (documented substitution, see DESIGN.md §4): the
original design tracks several candidate escape points with per-point
dueling monitors.  We reproduce the same structure in a compact form:

* every set keeps a fill stack (top = most recently filled);
* a global histogram of hit depths, periodically halved, yields the
  escape probability ``pe(d)`` = fraction of hits at depth >= d;
* three candidate policies duel on interleaved leader sets — LRU,
  pure LIFO (evict the top of the fill stack) and *learned-depth*
  (evict at the shallowest depth whose escape probability falls below
  ``theta``); follower sets copy the current best leader group.

This preserves the published behaviour that matters to the STEM
comparison: PeLIFO matches LRU on recency-friendly workloads and
behaves like an insertion-throttled policy on thrashing ones, while
remaining an application-level (not set-level) mechanism.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError, SimulationError
from repro.policies.base import ReplacementPolicy

_MODE_LRU = 0
_MODE_LIFO = 1
_MODE_LEARNED = 2
_MODES = (_MODE_LRU, _MODE_LIFO, _MODE_LEARNED)


class PeLifoPolicy(ReplacementPolicy):
    """Fill-stack replacement with learned probabilistic escape points."""

    name = "PeLIFO"

    def __init__(
        self,
        theta: float = 1.0 / 16.0,
        epoch_length: int = 4096,
        leaders_per_mode: int = 16,
    ) -> None:
        super().__init__()
        if not 0.0 < theta < 1.0:
            raise ConfigError(f"theta must lie in (0, 1), got {theta}")
        if epoch_length <= 0:
            raise ConfigError(
                f"epoch_length must be positive, got {epoch_length}"
            )
        self.theta = theta
        self.epoch_length = epoch_length
        self.leaders_per_mode = leaders_per_mode
        self._fill_stack: List[List[int]] = []
        self._recency: List[List[int]] = []
        self._roles: List[int] = []
        self._depth_hits: List[int] = []
        self._mode_misses = [0, 0, 0]
        self._mode_accesses = [0, 0, 0]
        self._events = 0
        self._best_mode = _MODE_LRU

    def _allocate(self) -> None:
        self._fill_stack = [[] for _ in range(self.num_sets)]
        self._recency = [[] for _ in range(self.num_sets)]
        self._depth_hits = [0] * self.associativity
        self._mode_misses = [0, 0, 0]
        self._mode_accesses = [0, 0, 0]
        self._events = 0
        self._best_mode = _MODE_LRU
        # Keep the dedicated sample small relative to the cache, as the
        # original design does; tiny test caches get one leader per mode.
        leaders = min(self.leaders_per_mode, max(2, self.num_sets // 32))
        stride = max(3, self.num_sets // leaders)
        # -1 marks followers; leaders rotate through the three modes.
        self._roles = [-1] * self.num_sets
        third = max(1, stride // 3)
        for base in range(0, self.num_sets, stride):
            for offset, mode in ((0, _MODE_LRU), (third, _MODE_LIFO),
                                 (2 * third, _MODE_LEARNED)):
                index = base + offset
                if index < self.num_sets and self._roles[index] == -1:
                    self._roles[index] = mode

    # ------------------------------------------------------------------
    # Learning machinery
    # ------------------------------------------------------------------

    def _mode_for(self, set_index: int) -> int:
        role = self._roles[set_index]
        if role != -1:
            return role
        return self._best_mode

    def _learned_depth(self) -> int:
        """Shallowest depth whose escape probability drops below theta."""
        total = sum(self._depth_hits)
        if total == 0:
            return 0  # No signal yet: behave like pure LIFO.
        threshold = self.theta * total
        escaping = total
        for depth in range(self.associativity):
            if escaping < threshold:
                return depth
            escaping -= self._depth_hits[depth]
        return 0

    def _tick(self) -> None:
        """Epoch bookkeeping: decay counters and re-elect the best mode.

        Election compares leader-group miss *rates* rather than raw
        counts so that unevenly-accessed leader sets cannot skew the
        duel (set sampling is sparse by design).
        """
        self._events += 1
        if self._events < self.epoch_length:
            return
        self._events = 0
        self._best_mode = min(
            _MODES,
            key=lambda m: (
                self._mode_misses[m] / self._mode_accesses[m]
                if self._mode_accesses[m] else 1.0
            ),
        )
        self._mode_misses = [value // 2 for value in self._mode_misses]
        self._mode_accesses = [value // 2 for value in self._mode_accesses]
        self._depth_hits = [value // 2 for value in self._depth_hits]

    # ------------------------------------------------------------------
    # Policy protocol
    # ------------------------------------------------------------------

    def on_hit(self, set_index: int, way: int) -> None:
        stack = self._fill_stack[set_index]
        depth = len(stack) - 1 - stack.index(way)
        self._depth_hits[min(depth, self.associativity - 1)] += 1
        role = self._roles[set_index]
        if role != -1:
            self._mode_accesses[role] += 1
        recency = self._recency[set_index]
        recency.remove(way)
        recency.append(way)
        self._tick()

    def on_miss(self, set_index: int) -> None:
        role = self._roles[set_index]
        if role != -1:
            self._mode_misses[role] += 1
            self._mode_accesses[role] += 1
        self._tick()

    def victim(self, set_index: int) -> int:
        mode = self._mode_for(set_index)
        stack = self._fill_stack[set_index]
        if not stack:
            raise SimulationError(
                f"victim() on empty fill stack for set {set_index}"
            )
        if mode == _MODE_LRU:
            return self._recency[set_index][0]
        if mode == _MODE_LIFO:
            return stack[-1]
        depth = min(self._learned_depth(), len(stack) - 1)
        return stack[len(stack) - 1 - depth]

    def on_fill(self, set_index: int, way: int) -> None:
        stack = self._fill_stack[set_index]
        if way in stack:
            stack.remove(way)
        stack.append(way)
        recency = self._recency[set_index]
        if way in recency:
            recency.remove(way)
        recency.append(way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        stack = self._fill_stack[set_index]
        if way in stack:
            stack.remove(way)
        recency = self._recency[set_index]
        if way in recency:
            recency.remove(way)

    def current_best_mode(self) -> str:
        """Name of the mode follower sets are using (for tests)."""
        return ("LRU", "LIFO", "LEARNED")[self._best_mode]
