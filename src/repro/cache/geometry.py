"""Cache geometry: the static shape every simulated cache is built from."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a set-associative cache.

    The paper's LLC (Table 1) is 2 MB, 16-way, 64 B lines → 2048 sets;
    ``CacheGeometry(num_sets=2048, associativity=16, line_size=64)``.
    """

    num_sets: int
    associativity: int
    line_size: int = 64
    address_bits: int = 44

    def __post_init__(self) -> None:
        if self.associativity <= 0:
            raise ConfigError(
                f"associativity must be positive, got {self.associativity}"
            )
        # AddressMapper validates num_sets / line_size / address_bits.
        mapper = AddressMapper(
            num_sets=self.num_sets,
            line_size=self.line_size,
            address_bits=self.address_bits,
        )
        object.__setattr__(self, "_mapper", mapper)

    @property
    def mapper(self) -> AddressMapper:
        """The address decomposition for this geometry."""
        return self._mapper

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.num_sets * self.associativity

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity in bytes."""
        return self.num_lines * self.line_size

    @property
    def tag_bits(self) -> int:
        """Width of a tag-store tag field."""
        return self._mapper.tag_bits

    def with_associativity(self, associativity: int) -> "CacheGeometry":
        """Same geometry with a different associativity (for sweeps)."""
        return CacheGeometry(
            num_sets=self.num_sets,
            associativity=associativity,
            line_size=self.line_size,
            address_bits=self.address_bits,
        )

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        associativity: int,
        line_size: int = 64,
        address_bits: int = 44,
    ) -> "CacheGeometry":
        """Build a geometry from a capacity instead of a set count."""
        line_budget = capacity_bytes // (line_size * associativity)
        if line_budget * line_size * associativity != capacity_bytes:
            raise ConfigError(
                f"capacity {capacity_bytes} is not divisible into "
                f"{associativity}-way sets of {line_size}-byte lines"
            )
        return cls(
            num_sets=line_budget,
            associativity=associativity,
            line_size=line_size,
            address_bits=address_bits,
        )
