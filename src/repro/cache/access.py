"""Access outcome classification shared by all simulated LLC schemes.

The paper's timing model (Section 5.1) distinguishes exactly four access
outcomes, so every cache's ``access()`` returns one of these integer
codes and the latency model maps codes to cycles:

* ``LOCAL_HIT``    — hit in the home set: one tag probe + one data access
  (6 + 8 = 14 cycles).
* ``COOP_HIT``     — "second hit" in the cooperative set (SBC/STEM only):
  two tag probes + one data access (20 cycles).
* ``MISS``         — miss after a single tag probe (uncoupled or giver
  set): 6 cycles + DRAM.
* ``MISS_COOP``    — coupled taker missing in both its own and the
  cooperative set: two consecutive tag probes, 12 cycles + DRAM.
"""

from __future__ import annotations

from enum import IntEnum


class AccessKind(IntEnum):
    """Outcome of a single LLC access (see module docstring)."""

    LOCAL_HIT = 0
    COOP_HIT = 1
    MISS = 2
    MISS_COOP = 3

    @property
    def is_hit(self) -> bool:
        """True for either hit flavour."""
        return self in (AccessKind.LOCAL_HIT, AccessKind.COOP_HIT)
