"""Main memory and bus models.

The paper charges a flat 300-cycle latency for DRAM (Table 1) with a
16 B/cycle bus at a 2:1 speed ratio and 1-cycle arbitration.  The
:class:`MainMemory` model reproduces that: a fixed access latency plus
the bus transfer time for one cache line.  Counters track reads (line
fills) and writes (write-backs) so experiments can report off-chip
traffic alongside MPKI.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class Bus:
    """A simple bandwidth/arbitration model of the memory bus."""

    def __init__(
        self,
        bytes_per_cycle: int = 16,
        speed_ratio: int = 2,
        arbitration_cycles: int = 1,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ConfigError(
                f"bytes_per_cycle must be positive, got {bytes_per_cycle}"
            )
        if speed_ratio <= 0:
            raise ConfigError(f"speed_ratio must be positive, got {speed_ratio}")
        if arbitration_cycles < 0:
            raise ConfigError(
                f"arbitration_cycles must be >= 0, got {arbitration_cycles}"
            )
        self.bytes_per_cycle = bytes_per_cycle
        self.speed_ratio = speed_ratio
        self.arbitration_cycles = arbitration_cycles
        self.transfers = 0

    def transfer_cycles(self, num_bytes: int) -> int:
        """Core cycles to move ``num_bytes`` across the bus."""
        self.transfers += 1
        bus_cycles = -(-num_bytes // self.bytes_per_cycle)  # ceil division
        return self.arbitration_cycles + bus_cycles * self.speed_ratio


class MainMemory:
    """Flat-latency DRAM with read/write traffic accounting."""

    def __init__(self, latency_cycles: int = 300, line_size: int = 64,
                 bus: "Bus | None" = None) -> None:
        if latency_cycles <= 0:
            raise ConfigError(
                f"latency_cycles must be positive, got {latency_cycles}"
            )
        self.latency_cycles = latency_cycles
        self.line_size = line_size
        self.bus = bus
        self.reads = 0
        self.writes = 0

    def read_line(self) -> int:
        """Fetch one line; returns the latency in core cycles."""
        self.reads += 1
        if self.bus is not None:
            return self.latency_cycles + self.bus.transfer_cycles(self.line_size)
        return self.latency_cycles

    def write_line(self) -> int:
        """Write one line back; returns the latency in core cycles."""
        self.writes += 1
        if self.bus is not None:
            return self.latency_cycles + self.bus.transfer_cycles(self.line_size)
        return self.latency_cycles

    @property
    def traffic_lines(self) -> int:
        """Total lines moved to/from DRAM."""
        return self.reads + self.writes
