"""Cache substrate: geometry, conventional caches, hierarchy, DRAM."""

from repro.cache.access import AccessKind
from repro.cache.basecache import SetAssociativeCache
from repro.cache.block import BlockView, ShadowView
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, default_l1_geometry
from repro.cache.memory import Bus, MainMemory
from repro.cache.mshr import MshrFile
from repro.cache.writebuffer import WriteBuffer

__all__ = [
    "AccessKind",
    "BlockView",
    "Bus",
    "CacheGeometry",
    "CacheHierarchy",
    "MainMemory",
    "MshrFile",
    "SetAssociativeCache",
    "ShadowView",
    "WriteBuffer",
    "default_l1_geometry",
]
