"""Miss Status Holding Registers — in-flight miss tracking.

The trace-driven simulator processes one access at a time, so MSHRs are
modelled along a logical clock: a miss occupies an entry for
``miss_latency`` ticks (one tick per cache access).  A second miss to
the same block while an entry is live is a *secondary* miss — it merges
into the existing entry instead of generating new DRAM traffic, exactly
the coalescing real MSHRs perform.  When all entries are busy the cache
would stall; we count those events.

The L2 configuration of Table 1 (64 MSHRs) makes stalls rare; the
counters mainly feed the hierarchy statistics and the tests.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigError


class MshrFile:
    """A fixed-capacity file of miss status holding registers."""

    def __init__(self, capacity: int, miss_latency: int = 300) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        if miss_latency <= 0:
            raise ConfigError(
                f"miss_latency must be positive, got {miss_latency}"
            )
        self.capacity = capacity
        self.miss_latency = miss_latency
        self._entries: Dict[int, int] = {}  # block address -> completion tick
        self._now = 0
        self.primary_misses = 0
        self.secondary_misses = 0
        self.stalls = 0

    def tick(self) -> None:
        """Advance the logical clock by one access and retire entries."""
        self._now += 1
        if len(self._entries) > self.capacity // 2:
            self._reap()

    def _reap(self) -> None:
        now = self._now
        finished = [addr for addr, done in self._entries.items() if done <= now]
        for addr in finished:
            del self._entries[addr]

    def register_miss(self, block_address: int) -> bool:
        """Record a miss; return True if it was merged (secondary)."""
        self._reap()
        if block_address in self._entries:
            self.secondary_misses += 1
            return True
        if len(self._entries) >= self.capacity:
            self.stalls += 1
            # The stalled request eventually allocates once an entry
            # retires; model that by evicting the oldest entry.
            oldest = min(self._entries, key=self._entries.get)
            del self._entries[oldest]
        self._entries[block_address] = self._now + self.miss_latency
        self.primary_misses += 1
        return False

    @property
    def outstanding(self) -> int:
        """Number of live entries at the current tick."""
        self._reap()
        return len(self._entries)
