"""Read-only views of cache contents used by tests and analyses.

The hot simulation paths keep their state in parallel lists for speed;
these small dataclasses are what the inspection APIs hand back so that
callers never see (or mutate) internal arrays.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BlockView:
    """One resident cache block as seen from outside the simulator.

    ``cooperative`` mirrors the paper's CC bit: True when the block does
    not belong to the set it physically occupies but was spilled there
    by the coupled taker set (SBC/STEM only).
    """

    set_index: int
    way: int
    tag: int
    dirty: bool = False
    cooperative: bool = False

    @property
    def cc_bit(self) -> int:
        """The CC bit of Figure 4 as an integer."""
        return 1 if self.cooperative else 0


@dataclass(frozen=True, slots=True)
class ShadowView:
    """One valid shadow-set entry (an m-bit hashed victim tag)."""

    set_index: int
    way: int
    hashed_tag: int
