"""Two-level cache hierarchy: L1 in front of a pluggable LLC.

Reproduces the memory system of Table 1: a 32 KB 2-way L1 (I and D are
modelled as one demand stream by default, matching the trace-driven
substitution in DESIGN.md §4), MSHRs and write buffers at both levels,
and a flat-latency DRAM behind the LLC.  The LLC slot accepts *any*
scheme object exposing ``access(address, is_write) -> AccessKind`` —
a plain :class:`~repro.cache.basecache.SetAssociativeCache`, a V-Way or
SBC cache, or STEM.

The headline experiments drive the LLC directly with L2-level traces
(the paper's figures are L2-centric); the hierarchy is used by the
integration tests, the quickstart example and the hierarchy-mode
experiments where total AMAT including the L1 matters.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.access import AccessKind
from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.cache.memory import MainMemory
from repro.cache.mshr import MshrFile
from repro.cache.writebuffer import WriteBuffer
from repro.common.rng import Lfsr
from repro.policies.lru import LruPolicy
from repro.timing.latency import LatencyModel


def default_l1_geometry(line_size: int = 64, address_bits: int = 44) -> CacheGeometry:
    """Table 1's L1D: 32 KB, 2-way, 64 B lines."""
    return CacheGeometry.from_capacity(
        capacity_bytes=32 * 1024,
        associativity=2,
        line_size=line_size,
        address_bits=address_bits,
    )


class CacheHierarchy:
    """L1 -> LLC -> DRAM with MSHR and write-buffer accounting."""

    def __init__(
        self,
        llc,
        l1_geometry: Optional[CacheGeometry] = None,
        memory: Optional[MainMemory] = None,
        latency: Optional[LatencyModel] = None,
        l1_hit_cycles: int = 2,
        l1_mshrs: int = 16,
        llc_mshrs: int = 64,
        l1_write_buffer: int = 8,
        llc_write_buffer: int = 32,
        rng: Optional[Lfsr] = None,
    ) -> None:
        self.llc = llc
        geometry = l1_geometry if l1_geometry is not None else default_l1_geometry()
        self.l1 = SetAssociativeCache(
            geometry,
            LruPolicy(),
            rng=rng if rng is not None else Lfsr(seed=0xBEEF),
            eviction_listener=self._on_l1_eviction,
        )
        self.memory = memory if memory is not None else MainMemory()
        self.latency = latency if latency is not None else LatencyModel()
        self.l1_hit_cycles = l1_hit_cycles
        self.l1_mshr = MshrFile(l1_mshrs, miss_latency=self.latency.miss_cycles)
        self.llc_mshr = MshrFile(llc_mshrs, miss_latency=self.latency.memory_cycles)
        self.l1_wb = WriteBuffer(l1_write_buffer)
        self.llc_wb = WriteBuffer(llc_write_buffer)
        self.total_cycles = 0
        self.instructions = 0

    def _on_l1_eviction(self, block_address: int, dirty: bool) -> None:
        """Propagate dirty L1 victims to the LLC as write-backs."""
        if not dirty:
            return
        self.l1_wb.push(block_address)
        # Mostly-inclusive hierarchy: the write-back lands in the LLC
        # (allocating on the rare occasion it was already evicted).
        self.llc.access(block_address, is_write=True)

    def access(self, address: int, is_write: bool = False) -> str:
        """Service one demand access; returns 'l1', 'llc' or 'memory'."""
        self.l1_mshr.tick()
        self.llc_mshr.tick()
        self.l1_wb.tick()
        self.llc_wb.tick()
        l1_kind = self.l1.access(address, is_write=is_write)
        if l1_kind.is_hit:
            self.total_cycles += self.l1_hit_cycles
            return "l1"
        block = self.l1.mapper.block_address(address)
        self.l1_mshr.register_miss(block)
        llc_kind = self.llc.access(address, is_write=False)
        self.total_cycles += self.l1_hit_cycles + self.latency.cycles_for(llc_kind)
        if llc_kind.is_hit:
            return "llc"
        merged = self.llc_mshr.register_miss(block)
        if not merged:
            self.memory.read_line()
        return "memory"

    def retire_instructions(self, count: int) -> None:
        """Record retired instructions for CPI accounting."""
        self.instructions += count

    @property
    def amat_cycles(self) -> float:
        """Observed average cycles per demand access (L1 included)."""
        accesses = self.l1.stats.accesses
        if accesses == 0:
            return 0.0
        return self.total_cycles / accesses

    @property
    def stats(self):
        """Counter view of the hierarchy: the LLC's statistics.

        Lets a :class:`~repro.obs.metrics.MetricsRegistry` sample a
        hierarchy like any single-level scheme (the L1 is a fixed
        filter; the LLC is where the schemes differ).
        """
        return self.llc.stats

    def metrics_gauges(self) -> dict:
        """MSHR and write-buffer occupancy for the metrics registry."""
        gauges = {
            "l1_mshr_outstanding": float(self.l1_mshr.outstanding),
            "llc_mshr_outstanding": float(self.llc_mshr.outstanding),
            "l1_write_buffer_occupancy": float(self.l1_wb.occupancy),
            "llc_write_buffer_occupancy": float(self.llc_wb.occupancy),
        }
        llc_gauges = getattr(self.llc, "metrics_gauges", None)
        if llc_gauges is not None:
            gauges.update(llc_gauges())
        return gauges

    def drain(self) -> None:
        """Flush write buffers at the end of a run."""
        for buffer in (self.l1_wb, self.llc_wb):
            for _ in range(buffer.flush()):
                self.memory.write_line()
