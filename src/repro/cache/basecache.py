"""A set-associative cache with a pluggable replacement policy.

This is the conventional LLC of Section 2.1 — the organization every
temporal scheme (LRU, LIP, BIP, DIP, PeLIFO, ...) runs on — and also
serves as the L1 model in the two-level hierarchy.  Spatial schemes
(V-Way, SBC) and STEM have their own cache classes because they break
the "one set, fixed associativity" assumption this class encodes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import InvariantViolation, SimulationError
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.obs.events import Eviction
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.base import RecencyPolicy, ReplacementPolicy

#: Callback signature for eviction notifications: (block_address, dirty).
EvictionListener = Callable[[int, bool], None]


class SetAssociativeCache:
    """Conventional set-associative cache driven by a policy object.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    policy:
        A fresh :class:`ReplacementPolicy`; the cache calls ``attach``
        on it, so one policy object must never serve two caches.
    rng:
        Deterministic LFSR shared with the policy (BIP/DIP randomness).
    eviction_listener:
        Optional callback invoked with ``(block_address, dirty)`` for
        every block evicted by replacement — the hierarchy uses it to
        propagate L1 write-backs into the L2.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; defaults to the
        disabled :data:`~repro.obs.tracer.NULL_TRACER` so tracing costs
        nothing unless a sink is attached.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        rng: Optional[Lfsr] = None,
        eviction_listener: Optional[EvictionListener] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.policy = policy
        self.rng = rng if rng is not None else Lfsr()
        self.eviction_listener = eviction_listener
        self.tracer = tracer if tracer is not None else NULL_TRACER
        policy.attach(geometry.num_sets, geometry.associativity, self.rng)
        self.stats = CacheStats()
        # Lifetime accesses folded in by reset_stats(); underscore-
        # prefixed so the manifest's scheme-config hash ignores it.
        self._access_base = 0
        num_sets = geometry.num_sets
        assoc = geometry.associativity
        self._tag_to_way: List[dict] = [{} for _ in range(num_sets)]
        self._way_tag: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        # Stack of free ways per set; pop() hands out way 0 first.
        self._free_ways: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        # Ledger attribution counter (tracer-guarded, reset with the
        # stats; underscore-prefixed so the manifest hash ignores it).
        self._led_hits: List[int] = [0] * num_sets

    @property
    def name(self) -> str:
        """Scheme name for result tables: the policy's name."""
        return self.policy.name

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Look up ``address``; fill on miss; return the outcome kind."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        table = self._tag_to_way[set_index]
        way = table.get(tag)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if self.tracer.enabled:
                self._led_hits[set_index] += 1
            if is_write:
                self._dirty[set_index][way] = True
            self.policy.on_hit(set_index, way)
            return AccessKind.LOCAL_HIT
        stats.misses += 1
        stats.misses_single_probe += 1
        self.policy.on_miss(set_index)
        free = self._free_ways[set_index]
        if free:
            way = free.pop()
        else:
            way = self.policy.victim(set_index)
            self._evict(set_index, way)
        table[tag] = way
        self._way_tag[set_index][way] = tag
        self._dirty[set_index][way] = is_write
        self.policy.on_fill(set_index, way)
        return AccessKind.MISS

    def access_batch(
        self,
        addresses: Sequence[int],
        set_indices: Sequence[int],
        tags: Sequence[int],
        writes: Optional[Sequence[bool]],
        start: int,
        stop: int,
    ) -> None:
        """Process accesses ``[start, stop)`` from precomputed arrays.

        Semantically identical to calling :meth:`access` once per entry
        (same final state, same statistics), but with the set-index/tag
        split hoisted out and hot attributes bound to locals.  Recency
        policies with no eviction listener additionally get the policy
        protocol inlined.  With a tracer attached, falls back to the
        scalar path so per-event ``stats.accesses`` snapshots stay exact.
        """
        if self.tracer.enabled:
            access = self.access
            if writes is None:
                for n in range(start, stop):
                    access(addresses[n])
            else:
                for n in range(start, stop):
                    access(addresses[n], writes[n])
            return
        policy = self.policy
        cls = type(policy)
        stats = self.stats
        tag_tables = self._tag_to_way
        way_tags = self._way_tag
        dirty_rows = self._dirty
        free_lists = self._free_ways
        has_writes = writes is not None
        hits = evictions = writebacks = 0
        if (
            isinstance(policy, RecencyPolicy)
            and self.eviction_listener is None
            and cls.victim is RecencyPolicy.victim
            and cls.on_fill is RecencyPolicy.on_fill
        ):
            orders = policy._order
            inline_hit = cls.on_hit is RecencyPolicy.on_hit
            hit_update = (
                None if inline_hit or policy.batch_hit_noop else policy.on_hit
            )
            train_miss = (
                None
                if cls.on_miss is ReplacementPolicy.on_miss
                else policy.on_miss
            )
            mru_const = policy.batch_insert_mru
            decide_mru = policy._insert_at_mru
            for n in range(start, stop):
                set_index = set_indices[n]
                tag = tags[n]
                table = tag_tables[set_index]
                way = table.get(tag)
                if way is not None:
                    hits += 1
                    if has_writes and writes[n]:
                        dirty_rows[set_index][way] = True
                    if inline_hit:
                        order = orders[set_index]
                        order.remove(way)
                        order.append(way)
                    elif hit_update is not None:
                        hit_update(set_index, way)
                    continue
                if train_miss is not None:
                    train_miss(set_index)
                free = free_lists[set_index]
                if free:
                    way = free.pop()
                else:
                    order = orders[set_index]
                    if not order:
                        raise SimulationError(
                            f"victim() on empty ranking for set {set_index}"
                        )
                    way = order[0]
                    old_tag = way_tags[set_index][way]
                    del table[old_tag]
                    evictions += 1
                    dirty_row = dirty_rows[set_index]
                    if dirty_row[way]:
                        writebacks += 1
                        dirty_row[way] = False
                table[tag] = way
                way_tags[set_index][way] = tag
                dirty_rows[set_index][way] = has_writes and bool(writes[n])
                order = orders[set_index]
                if way in order:
                    order.remove(way)
                at_mru = mru_const if mru_const is not None else decide_mru(set_index)
                if at_mru:
                    order.append(way)
                else:
                    order.insert(0, way)
        else:
            on_hit = policy.on_hit
            on_miss = policy.on_miss
            victim = policy.victim
            on_fill = policy.on_fill
            evict = self._evict
            for n in range(start, stop):
                set_index = set_indices[n]
                tag = tags[n]
                table = tag_tables[set_index]
                way = table.get(tag)
                if way is not None:
                    hits += 1
                    if has_writes and writes[n]:
                        dirty_rows[set_index][way] = True
                    on_hit(set_index, way)
                    continue
                on_miss(set_index)
                free = free_lists[set_index]
                if free:
                    way = free.pop()
                else:
                    way = victim(set_index)
                    evict(set_index, way)
                table[tag] = way
                way_tags[set_index][way] = tag
                dirty_rows[set_index][way] = has_writes and bool(writes[n])
                on_fill(set_index, way)
        total = stop - start
        misses = total - hits
        stats.accesses += total
        stats.hits += hits
        stats.local_hits += hits
        stats.misses += misses
        stats.misses_single_probe += misses
        stats.evictions += evictions
        stats.writebacks += writebacks

    def _evict(self, set_index: int, way: int) -> None:
        """Remove the block in ``way`` and account for its write-back."""
        old_tag = self._way_tag[set_index][way]
        del self._tag_to_way[set_index][old_tag]
        self.stats.evictions += 1
        dirty = self._dirty[set_index][way]
        if dirty:
            self.stats.writebacks += 1
            self._dirty[set_index][way] = False
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                tag=old_tag,
                dirty=dirty,
            ))
        if self.eviction_listener is not None:
            block_address = self.mapper.compose(old_tag, set_index)
            self.eviction_listener(block_address, dirty)

    # ------------------------------------------------------------------
    # Inspection & maintenance (tests, analyses, coherence shims)
    # ------------------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True when the block holding ``address`` is resident."""
        set_index, tag = self.mapper.split(address)
        return tag in self._tag_to_way[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; True if it was resident."""
        set_index, tag = self.mapper.split(address)
        way = self._tag_to_way[set_index].pop(tag, None)
        if way is None:
            return False
        self._way_tag[set_index][way] = None
        self._dirty[set_index][way] = False
        self._free_ways[set_index].append(way)
        self.policy.on_invalidate(set_index, way)
        return True

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid blocks currently in ``set_index``."""
        return len(self._tag_to_way[set_index])

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Immutable views of the valid blocks in ``set_index``."""
        views = []
        for tag, way in sorted(self._tag_to_way[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=tag,
                    dirty=self._dirty[set_index][way],
                )
            )
        return views

    @property
    def global_accesses(self) -> int:
        """Lifetime access count; reset_stats() does not rewind it."""
        return self._access_base + self.stats.accesses

    def metrics_gauges(self) -> dict:
        """Instantaneous state sampled by a metrics registry.

        Called at window boundaries only — never from the access path —
        so the zero-overhead-when-disabled contract holds.
        """
        capacity = self.geometry.num_sets * self.geometry.associativity
        filled = sum(len(table) for table in self._tag_to_way)
        return {"occupancy_fraction": filled / capacity}

    def metrics_per_set(self) -> dict:
        """Per-set rows sampled by a metrics registry (heatmap data)."""
        return {
            "occupancy": [len(table) for table in self._tag_to_way]
        }

    def ledger_counters(self) -> dict:
        """Per-set attribution counters for the capacity-flow ledger.

        Tracer-guarded and window-aligned; a policy cache neither
        borrows capacity nor swaps policies, so only the plain per-set
        hit row exists and both explain components are structurally
        zero for it.
        """
        return {"hits": list(self._led_hits)}

    def reset_stats(self) -> None:
        """Zero the statistics (e.g. after a warm-up phase).

        The lifetime clock behind event ``global_access`` stamps keeps
        running: the zeroed window counters fold into ``_access_base``.
        """
        self._access_base += self.stats.accesses
        self.stats = CacheStats()
        self._led_hits = [0] * self.geometry.num_sets

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on internal inconsistency.

        Used by property tests and by safe-mode sweeps; raising (rather
        than ``assert``) keeps the checks alive under ``python -O``.
        """
        for set_index in range(self.geometry.num_sets):
            table = self._tag_to_way[set_index]
            ways = list(table.values())
            if len(ways) != len(set(ways)):
                raise InvariantViolation(
                    f"duplicate way mapping in set {set_index}"
                )
            for tag, way in table.items():
                if self._way_tag[set_index][way] != tag:
                    raise InvariantViolation(
                        f"tag/way mismatch in set {set_index} way {way}"
                    )
            occupancy = len(table) + len(self._free_ways[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
