"""A set-associative cache with a pluggable replacement policy.

This is the conventional LLC of Section 2.1 — the organization every
temporal scheme (LRU, LIP, BIP, DIP, PeLIFO, ...) runs on — and also
serves as the L1 model in the two-level hierarchy.  Spatial schemes
(V-Way, SBC) and STEM have their own cache classes because they break
the "one set, fixed associativity" assumption this class encodes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import InvariantViolation
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.obs.events import Eviction
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.base import ReplacementPolicy

#: Callback signature for eviction notifications: (block_address, dirty).
EvictionListener = Callable[[int, bool], None]


class SetAssociativeCache:
    """Conventional set-associative cache driven by a policy object.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    policy:
        A fresh :class:`ReplacementPolicy`; the cache calls ``attach``
        on it, so one policy object must never serve two caches.
    rng:
        Deterministic LFSR shared with the policy (BIP/DIP randomness).
    eviction_listener:
        Optional callback invoked with ``(block_address, dirty)`` for
        every block evicted by replacement — the hierarchy uses it to
        propagate L1 write-backs into the L2.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; defaults to the
        disabled :data:`~repro.obs.tracer.NULL_TRACER` so tracing costs
        nothing unless a sink is attached.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        rng: Optional[Lfsr] = None,
        eviction_listener: Optional[EvictionListener] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.policy = policy
        self.rng = rng if rng is not None else Lfsr()
        self.eviction_listener = eviction_listener
        self.tracer = tracer if tracer is not None else NULL_TRACER
        policy.attach(geometry.num_sets, geometry.associativity, self.rng)
        self.stats = CacheStats()
        num_sets = geometry.num_sets
        assoc = geometry.associativity
        self._tag_to_way: List[dict] = [{} for _ in range(num_sets)]
        self._way_tag: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        # Stack of free ways per set; pop() hands out way 0 first.
        self._free_ways: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]

    @property
    def name(self) -> str:
        """Scheme name for result tables: the policy's name."""
        return self.policy.name

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Look up ``address``; fill on miss; return the outcome kind."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        table = self._tag_to_way[set_index]
        way = table.get(tag)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            self.policy.on_hit(set_index, way)
            return AccessKind.LOCAL_HIT
        stats.misses += 1
        stats.misses_single_probe += 1
        self.policy.on_miss(set_index)
        free = self._free_ways[set_index]
        if free:
            way = free.pop()
        else:
            way = self.policy.victim(set_index)
            self._evict(set_index, way)
        table[tag] = way
        self._way_tag[set_index][way] = tag
        self._dirty[set_index][way] = is_write
        self.policy.on_fill(set_index, way)
        return AccessKind.MISS

    def _evict(self, set_index: int, way: int) -> None:
        """Remove the block in ``way`` and account for its write-back."""
        old_tag = self._way_tag[set_index][way]
        del self._tag_to_way[set_index][old_tag]
        self.stats.evictions += 1
        dirty = self._dirty[set_index][way]
        if dirty:
            self.stats.writebacks += 1
            self._dirty[set_index][way] = False
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                tag=old_tag,
                dirty=dirty,
            ))
        if self.eviction_listener is not None:
            block_address = self.mapper.compose(old_tag, set_index)
            self.eviction_listener(block_address, dirty)

    # ------------------------------------------------------------------
    # Inspection & maintenance (tests, analyses, coherence shims)
    # ------------------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True when the block holding ``address`` is resident."""
        set_index, tag = self.mapper.split(address)
        return tag in self._tag_to_way[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; True if it was resident."""
        set_index, tag = self.mapper.split(address)
        way = self._tag_to_way[set_index].pop(tag, None)
        if way is None:
            return False
        self._way_tag[set_index][way] = None
        self._dirty[set_index][way] = False
        self._free_ways[set_index].append(way)
        self.policy.on_invalidate(set_index, way)
        return True

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid blocks currently in ``set_index``."""
        return len(self._tag_to_way[set_index])

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Immutable views of the valid blocks in ``set_index``."""
        views = []
        for tag, way in sorted(self._tag_to_way[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=tag,
                    dirty=self._dirty[set_index][way],
                )
            )
        return views

    def reset_stats(self) -> None:
        """Zero the statistics (e.g. after a warm-up phase)."""
        self.stats = CacheStats()

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` on internal inconsistency.

        Used by property tests and by safe-mode sweeps; raising (rather
        than ``assert``) keeps the checks alive under ``python -O``.
        """
        for set_index in range(self.geometry.num_sets):
            table = self._tag_to_way[set_index]
            ways = list(table.values())
            if len(ways) != len(set(ways)):
                raise InvariantViolation(
                    f"duplicate way mapping in set {set_index}"
                )
            for tag, way in table.items():
                if self._way_tag[set_index][way] != tag:
                    raise InvariantViolation(
                        f"tag/way mismatch in set {set_index} way {way}"
                    )
            occupancy = len(table) + len(self._free_ways[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: valid+free != associativity"
                )
