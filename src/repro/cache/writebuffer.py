"""Write buffer between a cache and the next memory level.

Dirty victims enter a FIFO buffer (8 entries at L1, 32 at L2 in
Table 1) and drain toward memory at a fixed rate measured in buffer
slots per cache access.  A write-back arriving to a full buffer is a
*retire stall*: real hardware would block the eviction; we count the
event and drop the oldest entry so the simulation proceeds.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.common.errors import ConfigError


class WriteBuffer:
    """Fixed-capacity FIFO of pending write-backs."""

    def __init__(self, capacity: int, drain_interval: int = 4) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        if drain_interval <= 0:
            raise ConfigError(
                f"drain_interval must be positive, got {drain_interval}"
            )
        self.capacity = capacity
        self.drain_interval = drain_interval
        self._pending: Deque[int] = deque()
        self._ticks_since_drain = 0
        self.enqueued = 0
        self.drained = 0
        self.full_stalls = 0

    def tick(self) -> None:
        """One cache access elapsed; drain if the interval passed."""
        self._ticks_since_drain += 1
        if self._ticks_since_drain >= self.drain_interval:
            self._ticks_since_drain = 0
            if self._pending:
                self._pending.popleft()
                self.drained += 1

    def push(self, block_address: int) -> bool:
        """Queue a write-back; returns False on a full-buffer stall."""
        self.enqueued += 1
        if len(self._pending) >= self.capacity:
            self.full_stalls += 1
            self._pending.popleft()
            self.drained += 1
            self._pending.append(block_address)
            return False
        self._pending.append(block_address)
        return True

    def flush(self) -> int:
        """Drain everything (end of simulation); returns entries drained."""
        count = len(self._pending)
        self.drained += count
        self._pending.clear()
        return count

    @property
    def occupancy(self) -> int:
        """Entries currently waiting to drain."""
        return len(self._pending)
