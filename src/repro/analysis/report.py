"""Composite benchmark report: everything about one workload, one page.

Pulls the library's analyses together for a single workload — the
capacity-demand profile, the Figure 6 classification, the reuse
summary, the LRU miss curve and a full scheme comparison — and renders
them as one plain-text report.  This is the "show me what this
workload wants and who serves it best" entry point, exposed through
``python -m repro report <benchmark>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.capacity_demand import profile_capacity_demand
from repro.analysis.classification import WorkloadClassification, classify_trace
from repro.analysis.reuse import ReuseSummary, lru_miss_curve, summarize_reuse
from repro.sim.config import ExperimentScale, PAPER_SCHEMES, make_scheme
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.trace import Trace


@dataclass
class WorkloadReport:
    """All analyses of one workload bundled together."""

    trace_name: str
    classification: WorkloadClassification
    reuse: ReuseSummary
    demand_bands: Dict["tuple[int, int]", float]
    miss_curve: Dict[int, float]
    scheme_results: Dict[str, RunResult]

    def best_scheme(self) -> str:
        """The scheme with the lowest MPKI."""
        return min(
            self.scheme_results,
            key=lambda scheme: self.scheme_results[scheme].mpki,
        )


def build_report(
    benchmark: str,
    schemes: Sequence[str] = PAPER_SCHEMES,
    scale: Optional[ExperimentScale] = None,
    trace: Optional[Trace] = None,
) -> WorkloadReport:
    """Run every analysis and scheme comparison for one workload."""
    scale = scale if scale is not None else ExperimentScale.default()
    if trace is None:
        trace = make_benchmark_trace(
            benchmark, num_sets=scale.num_sets, length=scale.trace_length
        )
    profile = profile_capacity_demand(
        trace,
        num_sets=scale.num_sets,
        interval_length=max(1, len(trace) // 8),
    )
    classification = classify_trace(
        trace, num_sets=scale.num_sets, associativity=scale.associativity
    )
    reuse = summarize_reuse(trace, num_sets=scale.num_sets)
    curve = lru_miss_curve(
        trace,
        num_sets=scale.num_sets,
        associativities=[2, 4, 8, 16, 32],
    )
    results: Dict[str, RunResult] = {}
    for scheme in schemes:
        cache = make_scheme(scheme, scale.geometry())
        result = run_trace(
            cache,
            trace,
            warmup_fraction=scale.warmup_fraction,
            machine=scale.machine,
        )
        results[result.scheme] = result
    return WorkloadReport(
        trace_name=trace.name,
        classification=classification,
        reuse=reuse,
        demand_bands=profile.mean_distribution(),
        miss_curve=curve,
        scheme_results=results,
    )


def render_report(report: WorkloadReport) -> str:
    """Format a :class:`WorkloadReport` as plain text."""
    lines: List[str] = [
        f"Workload report: {report.trace_name}",
        "=" * (17 + len(report.trace_name)),
        "",
        f"classification: Class {report.classification.label} "
        f"(givers {report.classification.giver_fraction:.1%}, "
        f"takers {report.classification.taker_fraction:.1%}, "
        f"thrash {report.classification.thrash_fraction:.1%})",
        f"reuse: cold {report.reuse.cold_fraction:.1%}, "
        f"median distance {report.reuse.median_distance:.0f}, "
        f"distant re-refs {report.reuse.distant_fraction:.1%}",
        "",
        "LRU miss curve:",
    ]
    for assoc, rate in sorted(report.miss_curve.items()):
        lines.append(f"  {assoc:>3d}-way: {rate:6.1%}")
    lines.append("")
    lines.append("capacity-demand bands (mean share of sets):")
    for band, fraction in report.demand_bands.items():
        if fraction > 0.01:
            label = "0" if band == (0, 0) else f"{band[0]}-{band[1]}"
            lines.append(f"  {label:>7s}: {fraction:6.1%}")
    lines.append("")
    lines.append(f"{'scheme':>10s} {'MPKI':>9s} {'AMAT':>9s} {'CPI':>8s}")
    for scheme, result in report.scheme_results.items():
        lines.append(
            f"{scheme:>10s} {result.mpki:>9.3f} {result.amat:>9.2f} "
            f"{result.cpi:>8.3f}"
        )
    lines.append("")
    lines.append(f"best scheme by MPKI: {report.best_scheme()}")
    return "\n".join(lines)
