"""Mattson LRU stack-distance profiling.

The reuse (stack) distance of an access is the number of *distinct*
blocks referenced since the previous access to the same block; under
LRU, an access hits in an ``a``-way set iff its stack distance is
strictly less than ``a``.  Stack distances therefore give the whole
LRU miss curve of a reference stream in one pass — the tool behind the
paper's capacity-demand characterisation (Section 3.1) and several of
our analyses.

Profilers accept a ``max_depth``: blocks falling off the bottom of the
bounded stack report distance ``max_depth`` when re-referenced.  All
consumers here only distinguish distances below some associativity
bound, so capping costs no information while keeping streaming sets
O(1) per access instead of O(n).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.common.errors import ConfigError

#: Distance reported for a block's first-ever reference.
COLD = -1

#: Default stack bound: comfortably above the paper's 32-way oracle.
DEFAULT_MAX_DEPTH = 128


class StackDistanceProfiler:
    """Single-stream bounded LRU stack with move-to-front queries."""

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        if max_depth <= 0:
            raise ConfigError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self._stack: List[int] = []  # index 0 = MRU
        self._members: Set[int] = set()
        self._seen: Set[int] = set()

    def record(self, block: int) -> int:
        """Push ``block``; return its stack distance.

        Returns :data:`COLD` for a first-ever reference, the exact
        distance while the block is within ``max_depth``, and
        ``max_depth`` (a lower bound) once it has fallen off the stack.
        """
        stack = self._stack
        if block in self._members:
            distance = stack.index(block)
            del stack[distance]
            stack.insert(0, block)
            return distance
        if block in self._seen:
            distance = self.max_depth
        else:
            self._seen.add(block)
            distance = COLD
        self._members.add(block)
        stack.insert(0, block)
        if len(stack) > self.max_depth:
            dropped = stack.pop()
            self._members.discard(dropped)
        return distance

    @property
    def depth(self) -> int:
        """Blocks currently on the (bounded) stack."""
        return len(self._stack)


def distances(
    stream: Sequence[int], max_depth: int = DEFAULT_MAX_DEPTH
) -> List[int]:
    """Stack distances for a whole stream (COLD for first references)."""
    profiler = StackDistanceProfiler(max_depth=max_depth)
    return [profiler.record(block) for block in stream]


def lru_hits_at(distance_histogram: Dict[int, int], associativity: int) -> int:
    """LRU hits for a given associativity from a distance histogram."""
    if associativity < 0:
        raise ConfigError(f"associativity must be >= 0, got {associativity}")
    return sum(
        count
        for distance, count in distance_histogram.items()
        if distance != COLD and distance < associativity
    )


def histogram(
    stream: Sequence[int],
    clamp: Optional[int] = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> Dict[int, int]:
    """Distance histogram of a stream; distances >= clamp collapse.

    ``clamp`` bounds the histogram domain (e.g. 32 for the paper's
    32-way oracle) so downstream consumers can iterate it cheaply.
    """
    counts: Dict[int, int] = {}
    for distance in distances(stream, max_depth=max_depth):
        if clamp is not None and distance >= clamp:
            distance = clamp
        counts[distance] = counts.get(distance, 0) + 1
    return counts
