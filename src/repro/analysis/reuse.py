"""Reuse-distance summaries and working-set estimation.

Convenience analyses layered on the stack-distance machinery: compact
summaries of a trace's temporal locality (the quantities Section 3's
arguments are phrased in), per-set working-set size estimates, and the
full LRU miss curve — the "how much cache does this workload actually
want" question that motivates capacity management in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stack_distance import COLD, StackDistanceProfiler
from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class ReuseSummary:
    """Aggregate temporal-locality statistics of one trace."""

    accesses: int
    cold_fraction: float        # first-ever references
    median_distance: float      # over re-references (clamped domain)
    mean_distance: float
    distant_fraction: float     # re-references at >= clamp distance
    distance_histogram: Dict[int, int]


def summarize_reuse(
    trace: Trace,
    num_sets: int,
    clamp: int = 64,
) -> ReuseSummary:
    """Per-set stack distances folded into one trace-level summary."""
    if clamp <= 0:
        raise ConfigError(f"clamp must be positive, got {clamp}")
    mapper = AddressMapper(
        num_sets=num_sets,
        line_size=trace.metadata.line_size,
        address_bits=trace.metadata.address_bits,
    )
    profilers = [
        StackDistanceProfiler(max_depth=clamp) for _ in range(num_sets)
    ]
    histogram: Dict[int, int] = {}
    cold = 0
    total_distance = 0
    re_references = 0
    distant = 0
    for address in trace.addresses:
        set_index, tag = mapper.split(address)
        distance = profilers[set_index].record(tag)
        if distance == COLD:
            cold += 1
            continue
        distance = min(distance, clamp)
        histogram[distance] = histogram.get(distance, 0) + 1
        total_distance += distance
        re_references += 1
        distant += distance >= clamp
    accesses = len(trace.addresses)
    median = 0.0
    if re_references:
        target = re_references / 2.0
        running = 0
        for distance in sorted(histogram):
            running += histogram[distance]
            if running >= target:
                median = float(distance)
                break
    return ReuseSummary(
        accesses=accesses,
        cold_fraction=cold / max(1, accesses),
        median_distance=median,
        mean_distance=total_distance / max(1, re_references),
        distant_fraction=distant / max(1, re_references),
        distance_histogram=histogram,
    )


def lru_miss_curve(
    trace: Trace,
    num_sets: int,
    associativities: "List[int]",
    clamp: int = 64,
) -> Dict[int, float]:
    """LRU miss rate at several associativities from one profiling pass.

    The Mattson property makes the whole curve computable in one sweep:
    an access hits at associativity ``a`` iff its per-set stack
    distance is below ``a``.
    """
    if not associativities:
        raise ConfigError("need at least one associativity")
    top = max(associativities)
    if top > clamp:
        raise ConfigError(
            f"clamp ({clamp}) must cover the largest associativity ({top})"
        )
    mapper = AddressMapper(
        num_sets=num_sets,
        line_size=trace.metadata.line_size,
        address_bits=trace.metadata.address_bits,
    )
    profilers = [
        StackDistanceProfiler(max_depth=clamp) for _ in range(num_sets)
    ]
    # hits_below[a] counts accesses whose distance < a for the queried
    # associativities only.
    sorted_assocs = sorted(set(associativities))
    hits = {a: 0 for a in sorted_assocs}
    total = 0
    for address in trace.addresses:
        set_index, tag = mapper.split(address)
        distance = profilers[set_index].record(tag)
        total += 1
        if distance == COLD:
            continue
        for a in sorted_assocs:
            if distance < a:
                hits[a] += 1
    return {
        a: 1.0 - hits[a] / max(1, total) for a in sorted_assocs
    }


def working_set_sizes(
    trace: Trace,
    num_sets: int,
) -> List[int]:
    """Distinct blocks touched per set — the raw Figure 1 ingredient."""
    mapper = AddressMapper(
        num_sets=num_sets,
        line_size=trace.metadata.line_size,
        address_bits=trace.metadata.address_bits,
    )
    seen: List[set] = [set() for _ in range(num_sets)]
    for address in trace.addresses:
        set_index, tag = mapper.split(address)
        seen[set_index].add(tag)
    return [len(tags) for tags in seen]
