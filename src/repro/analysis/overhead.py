"""Hardware storage-overhead accounting — the paper's Table 3.

Table 3 prices STEM at a 3.1% storage overhead over an LRU baseline
for the 2 MB / 16-way / 2048-set configuration with 44-bit physical
addresses: per LLC line one CC bit plus a shadow entry (10-bit hashed
tag, valid bit, 4-bit rank), per set two 4-bit saturating counters and
an 11-bit association-table entry, plus the small global heap.  This
module reproduces that arithmetic (and the analogous budgets for DIP,
SBC and V-Way) so the cost claim is checkable, not hand-waved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cache.geometry import CacheGeometry
from repro.core.config import StemConfig

#: Replacement-rank bits per line assumed by Table 3 (4 for 16 ways).
def rank_bits(associativity: int) -> int:
    """Bits to encode a replacement rank among ``associativity`` ways."""
    return max(1, (associativity - 1).bit_length())


def index_bits(num_sets: int) -> int:
    """Bits to name one of ``num_sets`` sets (association-table width)."""
    return max(1, (num_sets - 1).bit_length())


@dataclass
class StorageReport:
    """A named breakdown of storage bits with baseline-relative cost."""

    scheme: str
    baseline_bits: int
    components: Dict[str, int] = field(default_factory=dict)

    @property
    def extra_bits(self) -> int:
        """Total additional storage over the LRU baseline."""
        return sum(self.components.values())

    @property
    def overhead_percent(self) -> float:
        """Extra storage as a percentage of the baseline (Table 3)."""
        return 100.0 * self.extra_bits / self.baseline_bits

    def rows(self) -> "list[tuple[str, int]]":
        """(component, bits) rows for table rendering."""
        return sorted(self.components.items())


def lru_baseline_bits(geometry: CacheGeometry) -> int:
    """Total storage of the conventional LRU LLC (data + tag store).

    Per line: data (8 * line_size), tag, valid bit, dirty bit and a
    replacement rank of ``rank_bits`` (Table 3 lists 4 bits for 16
    ways).
    """
    per_line = (
        8 * geometry.line_size
        + geometry.tag_bits
        + 1  # valid
        + 1  # dirty
        + rank_bits(geometry.associativity)
    )
    return per_line * geometry.num_lines


def stem_overhead(
    geometry: CacheGeometry, config: StemConfig = StemConfig()
) -> StorageReport:
    """Table 3's STEM budget: SCDM + CC bits + association table + heap."""
    report = StorageReport(
        scheme="STEM", baseline_bits=lru_baseline_bits(geometry)
    )
    lines = geometry.num_lines
    sets = geometry.num_sets
    shadow_entry = config.shadow_tag_bits + 1 + rank_bits(geometry.associativity)
    report.components["cc_bits"] = lines  # one CC bit per tag entry
    report.components["shadow_sets"] = lines * shadow_entry
    report.components["saturating_counters"] = sets * 2 * config.counter_bits
    report.components["association_table"] = sets * index_bits(sets)
    heap_entry = index_bits(sets) + config.counter_bits
    report.components["giver_heap"] = config.heap_capacity * heap_entry
    return report


def dip_overhead(geometry: CacheGeometry, psel_bits: int = 10) -> StorageReport:
    """DIP adds only the PSEL counter (leader selection is positional)."""
    report = StorageReport(
        scheme="DIP", baseline_bits=lru_baseline_bits(geometry)
    )
    report.components["psel"] = psel_bits
    return report


def sbc_overhead(
    geometry: CacheGeometry,
    saturation_bits: int = 6,
    heap_capacity: int = 16,
) -> StorageReport:
    """SBC: per-set saturation counters + association table + DSS."""
    report = StorageReport(
        scheme="SBC", baseline_bits=lru_baseline_bits(geometry)
    )
    sets = geometry.num_sets
    lines = geometry.num_lines
    report.components["cc_bits"] = lines
    report.components["saturation_counters"] = sets * saturation_bits
    report.components["association_table"] = sets * index_bits(sets)
    report.components["destination_selector"] = heap_capacity * (
        index_bits(sets) + saturation_bits
    )
    return report


def vway_overhead(
    geometry: CacheGeometry, tag_ratio: int = 2, reuse_bits: int = 2
) -> StorageReport:
    """V-Way: extra tag entries, forward/reverse pointers, reuse bits."""
    report = StorageReport(
        scheme="V-Way", baseline_bits=lru_baseline_bits(geometry)
    )
    lines = geometry.num_lines
    entries = lines * tag_ratio
    extra_entries = entries - lines
    fptr = max(1, (lines - 1).bit_length())
    entry_bits = geometry.tag_bits + 1 + 1 + rank_bits(
        geometry.associativity * tag_ratio
    )
    report.components["extra_tag_entries"] = extra_entries * entry_bits
    report.components["forward_pointers"] = entries * fptr
    entry_index_bits = max(1, (entries - 1).bit_length())
    report.components["reverse_pointers"] = lines * entry_index_bits
    report.components["reuse_counters"] = lines * reuse_bits
    return report


def pelifo_overhead(
    geometry: CacheGeometry,
    counter_bits: int = 16,
) -> StorageReport:
    """PeLIFO: per-line fill-stack ranks + global learning counters."""
    report = StorageReport(
        scheme="PeLIFO", baseline_bits=lru_baseline_bits(geometry)
    )
    lines = geometry.num_lines
    report.components["fill_stack_ranks"] = lines * rank_bits(
        geometry.associativity
    )
    report.components["escape_histogram"] = (
        geometry.associativity * counter_bits
    )
    report.components["mode_counters"] = 3 * counter_bits
    return report


def paper_table3_geometry() -> CacheGeometry:
    """The exact configuration Table 3 prices: 2 MB, 16-way, 2048 sets."""
    return CacheGeometry(
        num_sets=2048, associativity=16, line_size=64, address_bits=44
    )
