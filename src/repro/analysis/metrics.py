"""Performance metrics: MPKI, AMAT, CPI and normalisation helpers.

Definitions follow DESIGN.md §7 and the paper's Section 5.1: MPKI is
misses per thousand instructions; AMAT is the L2-local average access
time under the paper's latency model; CPI comes from the analytic core
model.  All of the paper's headline numbers are *normalised to LRU*,
so the module also provides per-benchmark normalisation and the
geometric mean used for the summary bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.common.errors import ConfigError
from repro.common.stats import CacheStats
from repro.timing.cpi import PAPER_CPI, CpiModel
from repro.timing.latency import PAPER_LATENCY, LatencyModel


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        raise ConfigError(f"instructions must be positive, got {instructions}")
    return misses * 1000.0 / instructions


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; requires every value to be positive."""
    values = list(values)
    if not values:
        raise ConfigError("geomean of an empty sequence")
    if any(value <= 0.0 for value in values):
        raise ConfigError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


@dataclass(frozen=True)
class MetricSet:
    """MPKI / AMAT / CPI of one (scheme, workload) run."""

    scheme: str
    workload: str
    mpki: float
    amat: float
    cpi: float
    miss_rate: float

    def as_dict(self) -> Dict[str, float]:
        """Flat view for tables."""
        return {
            "mpki": self.mpki,
            "amat": self.amat,
            "cpi": self.cpi,
            "miss_rate": self.miss_rate,
        }


def evaluate_run(
    scheme: str,
    workload: str,
    stats: CacheStats,
    instructions: int,
    latency: LatencyModel = PAPER_LATENCY,
    cpi_model: CpiModel = PAPER_CPI,
) -> MetricSet:
    """Fold raw cache statistics into the paper's three metrics."""
    return MetricSet(
        scheme=scheme,
        workload=workload,
        mpki=mpki(stats.misses, instructions),
        amat=latency.amat(stats),
        cpi=cpi_model.cpi(instructions, stats, latency),
        miss_rate=stats.miss_rate,
    )


def normalize_to_baseline(
    metric_by_scheme: Mapping[str, float], baseline: str = "LRU"
) -> Dict[str, float]:
    """Each scheme's metric divided by the baseline's (Figures 7-9)."""
    if baseline not in metric_by_scheme:
        raise ConfigError(f"baseline {baseline!r} missing from results")
    base = metric_by_scheme[baseline]
    if base <= 0.0:
        raise ConfigError(f"baseline metric must be positive, got {base}")
    return {
        scheme: value / base for scheme, value in metric_by_scheme.items()
    }


def improvement_over_baseline(normalized_value: float) -> float:
    """Convert a normalised metric to a percent improvement over LRU.

    The paper phrases results as e.g. "improves MPKI by 21.4%", i.e.
    ``1 - normalized`` expressed in percent.
    """
    return (1.0 - normalized_value) * 100.0
