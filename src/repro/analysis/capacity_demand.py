"""Set-level capacity-demand characterisation (the paper's Figure 1).

Following Section 3.1 (and [8]), the *capacity demand* of a set during
a sampling interval is the minimum number of cache lines that resolves
as many conflict misses as a ``max_ways``-way set would (32 ways in
the paper, which suffices to remove all conflict misses for the studied
workloads).  Concretely, per interval and per set we histogram the LRU
stack distances of the set's accesses (stacks persist across intervals
— only the histogram restarts) and report

    demand = min { a : hits(a) == hits(max_ways) } ,

which is 0 for idle or purely-streaming sets (the "blue band" of
Figure 1(b)) and up to ``max_ways`` for heavily conflicted sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stack_distance import COLD, StackDistanceProfiler
from repro.common.addressing import AddressMapper
from repro.common.errors import ConfigError
from repro.workloads.trace import Trace


@dataclass
class CapacityDemandProfile:
    """Per-interval, per-set capacity demands plus presentation helpers."""

    max_ways: int
    interval_length: int
    demands: List[List[int]]  # demands[interval][set_index]

    @property
    def num_intervals(self) -> int:
        """Number of sampling intervals profiled."""
        return len(self.demands)

    def bands(self) -> List[Tuple[int, int]]:
        """Figure 1's legend bands: (0,0), (1,2), (3,4), ..., (31,32)."""
        result = [(0, 0)]
        low = 1
        while low <= self.max_ways:
            result.append((low, min(low + 1, self.max_ways)))
            low += 2
        return result

    def band_distribution(self, interval: int) -> Dict[Tuple[int, int], float]:
        """Fraction of sets whose demand falls in each band."""
        demands = self.demands[interval]
        total = len(demands)
        distribution: Dict[Tuple[int, int], float] = {}
        for band in self.bands():
            low, high = band
            count = sum(1 for demand in demands if low <= demand <= high)
            distribution[band] = count / total
        return distribution

    def mean_distribution(self) -> Dict[Tuple[int, int], float]:
        """Band distribution averaged over every interval."""
        totals: Dict[Tuple[int, int], float] = {
            band: 0.0 for band in self.bands()
        }
        for interval in range(self.num_intervals):
            for band, fraction in self.band_distribution(interval).items():
                totals[band] += fraction
        return {
            band: value / max(1, self.num_intervals)
            for band, value in totals.items()
        }

    def fraction_with_demand_at_most(self, ways: int) -> float:
        """Share of (interval, set) samples needing <= ``ways`` lines."""
        total = 0
        matching = 0
        for interval in self.demands:
            for demand in interval:
                total += 1
                if demand <= ways:
                    matching += 1
        return matching / total if total else 0.0


def profile_capacity_demand(
    trace: Trace,
    num_sets: int,
    max_ways: int = 32,
    interval_length: int = 50_000,
) -> CapacityDemandProfile:
    """Compute the Figure 1 characterisation for ``trace``.

    The paper samples 1000 intervals of 50 000 accesses on a 2048-set
    LLC; callers scale ``interval_length`` and the trace length together
    with ``num_sets`` (DESIGN.md §4's tractability note).
    """
    if max_ways <= 0:
        raise ConfigError(f"max_ways must be positive, got {max_ways}")
    if interval_length <= 0:
        raise ConfigError(
            f"interval_length must be positive, got {interval_length}"
        )
    mapper = AddressMapper(
        num_sets=num_sets,
        line_size=trace.metadata.line_size,
        address_bits=trace.metadata.address_bits,
    )
    profilers = [
        StackDistanceProfiler(max_depth=max_ways + 1) for _ in range(num_sets)
    ]
    # hit_counts[set][a] = hits in the current interval at distance a,
    # with index max_ways collecting everything >= max_ways.
    hit_counts: List[List[int]] = [
        [0] * (max_ways + 1) for _ in range(num_sets)
    ]
    demands: List[List[int]] = []
    position = 0
    for address in trace.addresses:
        set_index, tag = mapper.split(address)
        distance = profilers[set_index].record(tag)
        if distance != COLD:
            hit_counts[set_index][min(distance, max_ways)] += 1
        position += 1
        if position % interval_length == 0:
            demands.append(_interval_demands(hit_counts, max_ways))
            for counts in hit_counts:
                for index in range(max_ways + 1):
                    counts[index] = 0
    if position % interval_length:
        demands.append(_interval_demands(hit_counts, max_ways))
    return CapacityDemandProfile(
        max_ways=max_ways,
        interval_length=interval_length,
        demands=demands,
    )


def _interval_demands(
    hit_counts: Sequence[Sequence[int]], max_ways: int
) -> List[int]:
    """Demand of every set for one finished interval."""
    result: List[int] = []
    for counts in hit_counts:
        achievable = sum(counts[:max_ways])  # hits a max_ways set gets
        if achievable == 0:
            result.append(0)
            continue
        running = 0
        demand = max_ways
        for ways in range(1, max_ways + 1):
            running += counts[ways - 1]
            if running >= achievable:
                demand = ways
                break
        result.append(demand)
    return result
