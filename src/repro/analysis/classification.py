"""Workload classification — the paper's Figure 6 taxonomy.

The paper sorts applications into three classes by their set-level
capacity-demand features:

* **Class I** — set-level *non-uniform* demand: some sets need far less
  than the associativity (potential givers) while others need more —
  but within cooperative reach (potential takers) — so spatial schemes
  can help;
* **Class II** — *poor temporal locality*: a substantial share of
  accesses re-reference blocks at stack distances beyond the
  associativity, so insertion-policy (temporal) schemes can help;
* **Class III** — uniform demand and good locality: LRU suffices.

The classifier derives those properties from the same stack-distance
machinery as Figure 1.  Two subtleties the paper's definitions force:

* a set whose loop exceeds even the 32-way oracle has *capacity demand
  zero* (no amount of associativity resolves its conflicts), so a
  giver must additionally show almost no distant re-references —
  otherwise unreachable thrashers would masquerade as givers;
* a taker only counts when its demand lies within the oracle bound,
  i.e. extra capacity would actually convert misses into hits (the
  lesson of Figure 2's Example #3).

A workload can legitimately score as both I and II (the paper: "If a
benchmark belongs to both Class I and Class II, STEM can outperform
both temporal and spatial schemes simultaneously").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.capacity_demand import profile_capacity_demand
from repro.analysis.stack_distance import COLD, StackDistanceProfiler
from repro.common.addressing import AddressMapper
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class WorkloadClassification:
    """Scores and class flags for one workload at one associativity."""

    associativity: int
    giver_fraction: float      # quiet sets needing <= associativity // 2
    taker_fraction: float      # sets demanding (assoc, max_ways] lines
    thrash_fraction: float     # accesses re-referenced at distance >= assoc
    conflict_fraction: float   # re-references missing at `associativity`
    spatially_improvable: bool
    temporally_improvable: bool

    @property
    def label(self) -> str:
        """'I', 'II', 'I+II' or 'III' following Figure 6."""
        if self.spatially_improvable and self.temporally_improvable:
            return "I+II"
        if self.spatially_improvable:
            return "I"
        if self.temporally_improvable:
            return "II"
        return "III"


@dataclass(frozen=True)
class GainClassification:
    """Observed-gain view of the Figure 6 taxonomy.

    Where :func:`classify_trace` predicts a workload's class from its
    access pattern *before* running anything, this classifies what a
    finished pair of runs actually showed: the spatial and temporal
    components :func:`repro.obs.explain.attribute` measured.  The same
    label vocabulary lets the prediction and the measurement be
    compared directly.
    """

    spatial_component: int
    temporal_component: int
    total_delta: int
    spatially_improved: bool
    temporally_improved: bool

    @property
    def label(self) -> str:
        """'I', 'II', 'I+II' or 'III' following Figure 6."""
        if self.spatially_improved and self.temporally_improved:
            return "I+II"
        if self.spatially_improved:
            return "I"
        if self.temporally_improved:
            return "II"
        return "III"


def classify_gains(
    spatial_component: int,
    temporal_component: int,
    total_delta: int,
    significance: float = 0.05,
) -> GainClassification:
    """Map an explain decomposition onto the Figure 6 vocabulary.

    A dimension counts as improved when its component is positive and
    at least ``significance`` of the larger of the total hit delta and
    the summed components — so a run whose entire (small) gain is
    spatial still reads as Class I, while a trace-level rounding worth
    of cooperative hits under a large total does not.
    """
    scale = max(
        abs(total_delta),
        abs(spatial_component) + abs(temporal_component),
        1,
    )
    return GainClassification(
        spatial_component=spatial_component,
        temporal_component=temporal_component,
        total_delta=total_delta,
        spatially_improved=spatial_component / scale >= significance,
        temporally_improved=temporal_component / scale >= significance,
    )


def classify_trace(
    trace: Trace,
    num_sets: int,
    associativity: int = 16,
    max_ways: int = 32,
    giver_threshold: float = 0.12,
    taker_threshold: float = 0.08,
    thrash_threshold: float = 0.08,
    quiet_threshold: float = 0.05,
) -> WorkloadClassification:
    """Classify ``trace`` per the Figure 6 taxonomy (see module doc)."""
    profile = profile_capacity_demand(
        trace,
        num_sets=num_sets,
        max_ways=max_ways,
        interval_length=max(1, len(trace) // 4),
    )
    # Mean demand per set across intervals.
    mean_demand: List[float] = [0.0] * num_sets
    for interval in profile.demands:
        for set_index, demand in enumerate(interval):
            mean_demand[set_index] += demand
    intervals = max(1, profile.num_intervals)
    mean_demand = [value / intervals for value in mean_demand]
    # Per-set distant-re-reference statistics from a bounded stack.
    mapper = AddressMapper(
        num_sets=num_sets,
        line_size=trace.metadata.line_size,
        address_bits=trace.metadata.address_bits,
    )
    profilers = [
        StackDistanceProfiler(max_depth=max_ways + 1) for _ in range(num_sets)
    ]
    set_accesses = [0] * num_sets
    set_distant = [0] * num_sets
    re_references = 0
    distant_total = 0
    for address in trace.addresses:
        set_index, tag = mapper.split(address)
        set_accesses[set_index] += 1
        distance = profilers[set_index].record(tag)
        if distance == COLD:
            continue
        re_references += 1
        if distance >= associativity:
            set_distant[set_index] += 1
            distant_total += 1
    givers = 0
    takers = 0
    for set_index in range(num_sets):
        accesses = set_accesses[set_index]
        distant_rate = set_distant[set_index] / accesses if accesses else 0.0
        if (
            mean_demand[set_index] <= associativity // 2
            and distant_rate < quiet_threshold
        ):
            givers += 1
        elif mean_demand[set_index] > associativity:
            takers += 1
    giver_fraction = givers / num_sets
    taker_fraction = takers / num_sets
    total = max(1, len(trace.addresses))
    thrash_fraction = distant_total / total
    conflict_fraction = distant_total / max(1, re_references)
    return WorkloadClassification(
        associativity=associativity,
        giver_fraction=giver_fraction,
        taker_fraction=taker_fraction,
        thrash_fraction=thrash_fraction,
        conflict_fraction=conflict_fraction,
        spatially_improvable=(
            giver_fraction >= giver_threshold
            and taker_fraction >= taker_threshold
        ),
        temporally_improvable=thrash_fraction >= thrash_threshold,
    )
