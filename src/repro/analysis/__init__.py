"""Analyses: stack distances, capacity demand, metrics, classification,
hardware overhead."""

from repro.analysis.capacity_demand import (
    CapacityDemandProfile,
    profile_capacity_demand,
)
from repro.analysis.classification import WorkloadClassification, classify_trace
from repro.analysis.metrics import (
    MetricSet,
    evaluate_run,
    geomean,
    improvement_over_baseline,
    mpki,
    normalize_to_baseline,
)
# NOTE: repro.analysis.report is intentionally NOT re-exported here: it
# composes the simulation layer on top of the analyses, and importing
# it from this package would create a cycle (sim -> analysis.metrics).
# Import it explicitly: ``from repro.analysis.report import build_report``.
from repro.analysis.reuse import (
    ReuseSummary,
    lru_miss_curve,
    summarize_reuse,
    working_set_sizes,
)
from repro.analysis.overhead import (
    StorageReport,
    dip_overhead,
    lru_baseline_bits,
    paper_table3_geometry,
    pelifo_overhead,
    sbc_overhead,
    stem_overhead,
    vway_overhead,
)
from repro.analysis.stack_distance import (
    COLD,
    StackDistanceProfiler,
    distances,
    histogram,
    lru_hits_at,
)

__all__ = [
    "COLD",
    "CapacityDemandProfile",
    "MetricSet",
    "ReuseSummary",
    "StackDistanceProfiler",
    "StorageReport",
    "WorkloadClassification",
    "lru_miss_curve",
    "summarize_reuse",
    "working_set_sizes",
    "classify_trace",
    "dip_overhead",
    "distances",
    "evaluate_run",
    "geomean",
    "histogram",
    "improvement_over_baseline",
    "lru_baseline_bits",
    "lru_hits_at",
    "mpki",
    "normalize_to_baseline",
    "paper_table3_geometry",
    "pelifo_overhead",
    "profile_capacity_demand",
    "sbc_overhead",
    "stem_overhead",
    "vway_overhead",
]
