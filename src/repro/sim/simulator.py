"""Trace-driven simulation of a single LLC scheme.

:func:`run_trace` pushes a trace through any scheme object implementing
the ``access() -> AccessKind`` protocol, with a warm-up prefix whose
statistics are discarded (the paper warms caches before measurement),
and returns a :class:`RunResult` carrying the raw counters plus the
three paper metrics.

Every run is also timed (``perf_counter`` around the warm-up and
measured loops — two clock reads per phase, invisible next to the
simulation itself) and stamped with a
:class:`~repro.obs.manifest.RunManifest` so results carry their own
provenance; :class:`~repro.obs.profile.RunProfiler` aggregates the
timings for the ``--profile`` CLI surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.analysis.metrics import MetricSet, evaluate_run
from repro.common.errors import ConfigError, WatchdogTimeout
from repro.common.stats import CacheStats
from repro.obs.ledger import LedgerSink, RunLedger
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import MetricsRegistry, MetricsSeries
from repro.obs.tracer import Tracer
from repro.sim.columnar import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    make_engine,
    resolve_backend,
)
from repro.sim.config import MachineConfig
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (scheme, trace) simulation.

    ``series`` carries the windowed metric time-series when the run was
    made with ``metrics_window=N``; it is None (and costs nothing) by
    default.

    ``backend`` records which execution path actually ran ("python" or
    "numpy").  It is in-process provenance only: the exactness contract
    (DESIGN.md §13) makes the two paths produce identical results, so
    the field is deliberately excluded from ``result_to_dict`` /
    ``save_run`` payloads and every derived digest.

    ``ledger`` carries the capacity-flow ledger when the run was made
    with ``ledger=True``; it is None (and costs nothing) by default.
    Unlike ``backend`` it *is* serialised, so saved runs feed
    ``repro explain`` without re-simulating.
    """

    scheme: str
    trace_name: str
    stats: CacheStats
    measured_accesses: int
    measured_instructions: int
    metrics: MetricSet
    manifest: Optional[RunManifest] = None
    series: Optional[MetricsSeries] = None
    backend: str = BACKEND_PYTHON
    ledger: Optional[RunLedger] = None

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction over the measured window."""
        return self.metrics.mpki

    @property
    def amat(self) -> float:
        """L2-local AMAT in cycles over the measured window."""
        return self.metrics.amat

    @property
    def cpi(self) -> float:
        """Modelled CPI over the measured window."""
        return self.metrics.cpi

    @property
    def miss_rate(self) -> float:
        """LLC miss rate over the measured window."""
        return self.stats.miss_rate


#: Accesses between deadline checks when a watchdog is armed: coarse
#: enough to stay invisible in the hot loop, fine enough that an
#: overrunning run is caught within a fraction of a second.
_WATCHDOG_STRIDE = 8192


def _run_span(
    access,
    batch,
    addresses,
    set_indices,
    tags,
    writes,
    start: int,
    stop: int,
    deadline_at: Optional[float],
    trace_name: str,
    beat=None,
) -> None:
    """Drive ``addresses[start:stop]`` through the cache.

    One chunked loop serves every combination: with no deadline and no
    telemetry the span is a single chunk (identical to the old tight
    loop); with a watchdog armed the wall clock is checked every
    :data:`_WATCHDOG_STRIDE` accesses, raising
    :class:`WatchdogTimeout` so a hung or pathologically slow run
    cannot stall a whole experiment grid.  ``beat`` — the telemetry
    heartbeat callback (:meth:`~repro.obs.telemetry.CellTelemetry.beat`)
    — reuses the same stride; it receives the absolute access position
    after every chunk and throttles its own writes by wall clock.  When
    the scheme provides an ``access_batch`` fast path, each chunk is
    handed over wholesale with the precomputed ``(set_indices, tags)``
    arrays.
    """
    if start >= stop:
        return
    stride = (
        (stop - start) if deadline_at is None and beat is None
        else _WATCHDOG_STRIDE
    )
    for chunk_start in range(start, stop, stride):
        chunk_stop = min(stop, chunk_start + stride)
        if batch is not None:
            batch(addresses, set_indices, tags, writes, chunk_start, chunk_stop)
        elif writes is None:
            for index in range(chunk_start, chunk_stop):
                access(addresses[index])
        else:
            for index in range(chunk_start, chunk_stop):
                access(addresses[index], writes[index])
        if beat is not None:
            beat(chunk_stop)
        if deadline_at is not None and perf_counter() > deadline_at:
            raise WatchdogTimeout(
                f"trace {trace_name!r}: run exceeded its wall-clock "
                f"deadline after {chunk_stop} accesses"
            )


def _attach_ledger_sink(cache, sink: LedgerSink) -> None:
    """Route the cache's event stream into ``sink``.

    Walks wrapper chains (e.g. the fault injector's
    :class:`~repro.resilience.faults.InjectingCache`, which delegates
    attribute *reads* but would swallow writes) to the object that
    actually owns the ``tracer`` attribute.  A disabled tracer is the
    shared :data:`~repro.obs.tracer.NULL_TRACER`, which must never be
    mutated — it is replaced with a fresh enabled tracer; an
    already-enabled tracer simply gains the sink.
    """
    target = cache
    while "tracer" not in getattr(target, "__dict__", {}):
        inner = getattr(target, "_cache", None)
        if inner is None:
            break
        target = inner
    tracer = getattr(target, "tracer", None)
    if tracer is None:
        raise ConfigError(
            f"scheme {type(cache).__name__} does not support tracing, "
            "so it cannot carry a capacity-flow ledger"
        )
    if tracer.enabled:
        tracer.add_sink(sink)
    else:
        target.tracer = Tracer(sink)


def _seal_ledger(cache, sink: LedgerSink) -> RunLedger:
    """Close the run's books: final stats, attribution counters."""
    counters = None
    hook = getattr(cache, "ledger_counters", None)
    if hook is not None:
        counters = hook()
    stats = cache.stats
    return sink.seal(
        final_accesses=stats.accesses,
        final_hits=stats.hits,
        counters=counters,
    )


def run_trace(
    cache,
    trace: Trace,
    warmup_fraction: float = 0.25,
    machine: Optional[MachineConfig] = None,
    with_writes: bool = True,
    deadline_seconds: Optional[float] = None,
    metrics_window: Optional[int] = None,
    telemetry=None,
    backend: Optional[str] = None,
    ledger: bool = False,
) -> RunResult:
    """Simulate ``trace`` on ``cache`` and evaluate the paper metrics.

    The first ``warmup_fraction`` of the accesses prime the cache; its
    statistics are then reset so the measured window starts warm, and
    the trace's instruction count is prorated onto that window so MPKI
    stays comparable across warm-up choices.

    ``deadline_seconds`` arms a cooperative wall-clock watchdog over
    the whole run (warm-up plus measurement); exceeding it raises
    :class:`~repro.common.errors.WatchdogTimeout`.

    ``metrics_window`` (accesses) opts into windowed metrics: the
    measured phase runs window by window, a
    :class:`~repro.obs.metrics.MetricsRegistry` samples the cache at
    every boundary, and the finished series is attached as
    ``result.series``.  Window boundaries align with ``access_batch``
    chunk boundaries — where every fast path flushes its locally
    accumulated statistics — so batch and scalar execution produce
    identical series (DESIGN.md §10).  With the default ``None`` the
    loop below is byte-identical to the uninstrumented path.

    ``telemetry`` (a :class:`~repro.obs.telemetry.CellTelemetry`)
    arms live status reporting: warm-up and measured phase spans plus
    wall-clock-throttled heartbeats carrying worker resource samples.
    Telemetry only *observes* — it never touches scheme state, RNG
    draws or statistics, so results are byte-identical with it on or
    off (DESIGN.md §11).

    ``backend`` selects the execution path: ``"python"`` (the scalar
    oracle), ``"numpy"`` (the columnar kernel of
    :mod:`repro.sim.columnar`), or ``"auto"``/``None`` which picks
    numpy exactly when it is importable and the scheme has an exact
    kernel.  The columnar path is bound by an exactness contract —
    identical stats, manifest hashes, metric series and RNG stream —
    so the choice never changes results, only wall-clock time
    (DESIGN.md §13).  Schemes without a kernel run scalar regardless.

    ``ledger=True`` attaches a streaming
    :class:`~repro.obs.ledger.LedgerSink` before warm-up and seals it
    into ``result.ledger`` after measurement: coupling episodes,
    policy-swap windows, and the per-set capacity-flow account, with
    conservation verified at close.  Enabling the tracer forces the
    scalar access path (per-event clocks must be exact), so ledgered
    runs trade throughput for the audit — but stay deterministic and
    byte-identical across serial and parallel execution.  The default
    ``False`` touches nothing and costs nothing.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError(
            f"warmup_fraction must lie in [0, 1), got {warmup_fraction}"
        )
    if deadline_seconds is not None and deadline_seconds <= 0:
        raise ConfigError(
            f"deadline_seconds must be positive, got {deadline_seconds}"
        )
    machine = machine if machine is not None else MachineConfig()
    addresses = trace.addresses
    total = len(addresses)
    if total == 0:
        raise ConfigError(f"trace {trace.name!r} is empty")
    warm = int(total * warmup_fraction)
    ledger_sink: Optional[LedgerSink] = None
    if ledger:
        # Attach before anything reads cache.tracer: the backend
        # resolver below must see the enabled tracer and decline the
        # columnar kernel, and warm-up events belong in the episode
        # record (the monotonic clock spans the whole run).
        ledger_sink = LedgerSink()
        _attach_ledger_sink(cache, ledger_sink)
    access = cache.access
    batch = getattr(cache, "access_batch", None)
    if batch is not None:
        # Split every address once up front (cached on the trace); the
        # precompute is deliberately outside the timed phases so
        # accesses/sec reflects simulation work only.
        set_indices, tags = trace.precompute_geometry(cache.mapper)
    else:
        set_indices = tags = None
    writes = trace.writes if with_writes else None
    # Backend resolution and plan construction sit outside the timed
    # phases for the same reason as the geometry precompute: the plan
    # is a cached, static derivation, not simulation work.
    resolved_backend = resolve_backend(backend, cache)
    engine = None
    if resolved_backend == BACKEND_NUMPY:
        engine = make_engine(cache, trace, writes)
        if engine is None:
            resolved_backend = BACKEND_PYTHON
    beat = telemetry.beat if telemetry is not None else None
    phase_start = perf_counter()
    deadline_at = (
        phase_start + deadline_seconds if deadline_seconds is not None
        else None
    )

    if engine is not None:
        def drive(start: int, stop: int) -> None:
            engine.span(start, stop, deadline_at, beat)
    else:
        def drive(start: int, stop: int) -> None:
            _run_span(access, batch, addresses, set_indices, tags, writes,
                      start, stop, deadline_at, trace.name, beat)

    if telemetry is not None:
        telemetry.phase_start("warmup", 0)
    drive(0, warm)
    warmup_seconds = perf_counter() - phase_start
    cache.reset_stats()
    scheme = getattr(cache, "name", type(cache).__name__)
    registry: Optional[MetricsRegistry] = None
    if telemetry is not None:
        telemetry.phase_end("warmup", warm)
        telemetry.phase_start("measured", warm)
    phase_start = perf_counter()
    if metrics_window is None:
        drive(warm, total)
    else:
        # Windowed measurement: the registry samples counters/gauges at
        # every boundary.  The registry constructor validates the window.
        # The columnar engine substitutes a gauge source carrying the
        # same stats object plus statically derived occupancy views, so
        # the registry's own sampling code runs unmodified and the
        # series stays byte-identical.
        registry = MetricsRegistry(window_length=metrics_window)
        position = warm
        while position < total:
            stop = min(position + metrics_window, total)
            drive(position, stop)
            registry.sample(
                cache if engine is None else engine.sample_target(stop),
                stop - position,
            )
            position = stop
    measured_seconds = perf_counter() - phase_start
    if engine is not None:
        # The engine replays the whole trace inside the first span, so
        # the raw phase clocks pile onto warm-up.  Prorate the combined
        # wall time by access share so manifest timings keep meaning
        # throughput (content hashes never cover timings).
        engine_seconds = warmup_seconds + measured_seconds
        warmup_seconds = engine_seconds * (warm / total)
        measured_seconds = engine_seconds - warmup_seconds
    if telemetry is not None:
        telemetry.phase_end("measured", total)
    measured = total - warm
    instructions = max(
        1, round(trace.metadata.instructions * measured / total)
    )
    metrics = evaluate_run(
        scheme=scheme,
        workload=trace.name,
        stats=cache.stats,
        instructions=instructions,
        latency=machine.latency,
        cpi_model=machine.cpi,
    )
    manifest = build_manifest(
        cache,
        trace,
        warmup_seconds=warmup_seconds,
        measured_seconds=measured_seconds,
        measured_accesses=measured,
    )
    run_ledger = (
        _seal_ledger(cache, ledger_sink) if ledger_sink is not None
        else None
    )
    return RunResult(
        scheme=scheme,
        trace_name=trace.name,
        stats=cache.stats,
        measured_accesses=measured,
        measured_instructions=instructions,
        metrics=metrics,
        manifest=manifest,
        series=(
            registry.to_series(scheme, trace.name)
            if registry is not None else None
        ),
        backend=resolved_backend,
        ledger=run_ledger,
    )
