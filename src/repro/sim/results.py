"""Result containers and plain-text table rendering.

Experiments produce a :class:`ResultMatrix` (workload x scheme grid of
:class:`~repro.sim.simulator.RunResult`), from which the figure modules
derive raw and LRU-normalised metric tables.  Rendering is plain
monospaced text: the harness prints the same rows/series the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.analysis.metrics import geomean, normalize_to_baseline
from repro.common.errors import ConfigError
from repro.sim.simulator import RunResult


@dataclass
class ResultMatrix:
    """Grid of run results keyed by (workload, scheme)."""

    schemes: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    _cells: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def add(self, result: RunResult) -> None:
        """Insert one run, extending the axes as needed."""
        workload = result.trace_name
        scheme = result.scheme
        if workload not in self._cells:
            self._cells[workload] = {}
            self.workloads.append(workload)
        if scheme not in self.schemes:
            self.schemes.append(scheme)
        self._cells[workload][scheme] = result

    def get(self, workload: str, scheme: str) -> RunResult:
        """Fetch a single cell; raises ConfigError if missing."""
        try:
            return self._cells[workload][scheme]
        except KeyError as exc:
            raise ConfigError(
                f"no result for workload={workload!r} scheme={scheme!r}"
            ) from exc

    def metric_table(
        self, metric: Callable[[RunResult], float]
    ) -> Dict[str, Dict[str, float]]:
        """{workload: {scheme: metric(result)}} over the whole grid."""
        return {
            workload: {
                scheme: metric(result) for scheme, result in row.items()
            }
            for workload, row in self._cells.items()
        }

    def normalized_table(
        self,
        metric: Callable[[RunResult], float],
        baseline: str = "LRU",
        include_geomean: bool = True,
    ) -> Dict[str, Dict[str, float]]:
        """Per-workload normalisation to ``baseline`` (Figures 7-9)."""
        raw = self.metric_table(metric)
        normalized = {
            workload: normalize_to_baseline(values, baseline=baseline)
            for workload, values in raw.items()
        }
        if include_geomean and normalized:
            summary: Dict[str, float] = {}
            for scheme in self.schemes:
                summary[scheme] = geomean(
                    normalized[workload][scheme]
                    for workload in self.workloads
                    if scheme in normalized[workload]
                )
            normalized["Geomean"] = summary
        return normalized


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: str = "",
    precision: int = 3,
    row_header: str = "workload",
) -> str:
    """Render a nested mapping as an aligned monospaced table."""
    width = max(
        [len(row_header)] + [len(str(name)) for name in rows]
    ) + 2
    col_width = max([8] + [len(col) + 2 for col in columns])
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    header = row_header.ljust(width) + "".join(
        col.rjust(col_width) for col in columns
    )
    lines.append(header)
    for name, values in rows.items():
        cells = []
        for col in columns:
            value = values.get(col)
            if value is None:
                cells.append("-".rjust(col_width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(col_width))
        lines.append(str(name).ljust(width) + "".join(cells))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    x_label: str = "x",
    title: str = "",
    precision: int = 3,
) -> str:
    """Render {series_name: [y...]} against shared x values."""
    rows: Dict[str, Dict[str, float]] = {}
    columns = [str(x) for x in x_values]
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigError(
                f"series {name!r} length {len(values)} != {len(x_values)}"
            )
        rows[name] = dict(zip(columns, values))
    return format_table(
        rows, columns, title=title, precision=precision, row_header=x_label
    )
