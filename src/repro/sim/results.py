"""Result containers and plain-text table rendering.

Experiments produce a :class:`ResultMatrix` (workload x scheme grid of
:class:`~repro.sim.simulator.RunResult`), from which the figure modules
derive raw and LRU-normalised metric tables.  Rendering is plain
monospaced text: the harness prints the same rows/series the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import geomean, normalize_to_baseline
from repro.common.errors import ConfigError
from repro.sim.simulator import RunResult


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one failed (workload, scheme) run.

    The crash-tolerant harness records these into the
    :class:`ResultMatrix` instead of letting one poisoned cell abort an
    entire experiment grid; ``seeds`` lists every scheme seed the retry
    policy attempted before giving up.
    """

    workload: str
    scheme: str
    error_type: str
    message: str
    attempts: int = 1
    seeds: Tuple[int, ...] = ()
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "seeds": list(self.seeds),
            "elapsed_seconds": self.elapsed_seconds,
        }

    def __str__(self) -> str:
        return (
            f"{self.scheme} on {self.workload} failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


@dataclass
class ResultMatrix:
    """Grid of run results keyed by (workload, scheme).

    Failed cells are first-class: :meth:`add_failure` records them
    without blocking the rest of the grid, the axes still list the
    failed workload/scheme (tables render the cell as ``-``), and
    :meth:`get` on a failed cell raises an error that carries the
    recorded failure.
    """

    schemes: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    _cells: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def add(self, result: RunResult) -> None:
        """Insert one run, extending the axes as needed."""
        workload = result.trace_name
        scheme = result.scheme
        if workload not in self._cells:
            self._cells[workload] = {}
            self.workloads.append(workload)
        if scheme not in self.schemes:
            self.schemes.append(scheme)
        self._cells[workload][scheme] = result

    def add_failure(self, failure: RunFailure) -> None:
        """Record a failed run, still extending the axes."""
        if failure.workload not in self._cells:
            self._cells[failure.workload] = {}
            self.workloads.append(failure.workload)
        if failure.scheme not in self.schemes:
            self.schemes.append(failure.scheme)
        self.failures.append(failure)

    def failure_for(
        self, workload: str, scheme: str
    ) -> Optional[RunFailure]:
        """The recorded failure for a cell, if any (latest wins)."""
        found = None
        for failure in self.failures:
            if failure.workload == workload and failure.scheme == scheme:
                found = failure
        return found

    def failed_cells(self) -> List[Tuple[str, str]]:
        """(workload, scheme) pairs that failed, in recording order."""
        return [
            (failure.workload, failure.scheme) for failure in self.failures
        ]

    def get(self, workload: str, scheme: str) -> RunResult:
        """Fetch a single cell; raises ConfigError if missing/failed."""
        try:
            return self._cells[workload][scheme]
        except KeyError as exc:
            failure = self.failure_for(workload, scheme)
            if failure is not None:
                raise ConfigError(
                    f"run failed for workload={workload!r} "
                    f"scheme={scheme!r}: {failure.error_type}: "
                    f"{failure.message}"
                ) from exc
            raise ConfigError(
                f"no result for workload={workload!r} scheme={scheme!r}"
            ) from exc

    def series_for(self, workload: str, scheme: str):
        """The windowed metrics series of a cell, or None.

        None covers both a cell run without ``metrics_window`` and a
        failed cell (a :class:`RunFailure` carries no series).
        """
        row = self._cells.get(workload, {})
        result = row.get(scheme)
        return result.series if result is not None else None

    def ledger_for(self, workload: str, scheme: str):
        """The sealed capacity-flow ledger of a cell, or None.

        None covers both a cell run without ``ledger=True`` and a
        failed cell (a :class:`RunFailure` carries no ledger).
        """
        row = self._cells.get(workload, {})
        result = row.get(scheme)
        return result.ledger if result is not None else None

    def metric_table(
        self, metric: Callable[[RunResult], float]
    ) -> Dict[str, Dict[str, float]]:
        """{workload: {scheme: metric(result)}} over the whole grid."""
        return {
            workload: {
                scheme: metric(result) for scheme, result in row.items()
            }
            for workload, row in self._cells.items()
        }

    def normalized_table(
        self,
        metric: Callable[[RunResult], float],
        baseline: str = "LRU",
        include_geomean: bool = True,
    ) -> Dict[str, Dict[str, float]]:
        """Per-workload normalisation to ``baseline`` (Figures 7-9)."""
        raw = self.metric_table(metric)
        normalized = {
            workload: normalize_to_baseline(values, baseline=baseline)
            for workload, values in raw.items()
        }
        if include_geomean and normalized:
            summary: Dict[str, float] = {}
            for scheme in self.schemes:
                summary[scheme] = geomean(
                    normalized[workload][scheme]
                    for workload in self.workloads
                    if scheme in normalized[workload]
                )
            normalized["Geomean"] = summary
        return normalized


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: str = "",
    precision: int = 3,
    row_header: str = "workload",
) -> str:
    """Render a nested mapping as an aligned monospaced table."""
    width = max(
        [len(row_header)] + [len(str(name)) for name in rows]
    ) + 2
    col_width = max([8] + [len(col) + 2 for col in columns])
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    header = row_header.ljust(width) + "".join(
        col.rjust(col_width) for col in columns
    )
    lines.append(header)
    for name, values in rows.items():
        cells = []
        for col in columns:
            value = values.get(col)
            if value is None:
                cells.append("-".rjust(col_width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(col_width))
        lines.append(str(name).ljust(width) + "".join(cells))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    x_label: str = "x",
    title: str = "",
    precision: int = 3,
) -> str:
    """Render {series_name: [y...]} against shared x values."""
    rows: Dict[str, Dict[str, float]] = {}
    columns = [str(x) for x in x_values]
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigError(
                f"series {name!r} length {len(values)} != {len(x_values)}"
            )
        rows[name] = dict(zip(columns, values))
    return format_table(
        rows, columns, title=title, precision=precision, row_header=x_label
    )
