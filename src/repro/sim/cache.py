"""Content-addressed run cache: skip cells that were already simulated.

A simulation cell is a pure function of its deterministic inputs —
scheme configuration, geometry, seed, trace content, warm-up split and
timing model — all of which are folded into the cell key by
:func:`~repro.sim.parallel.cell_cache_key`.  :class:`RunCache` persists
each finished :class:`~repro.sim.simulator.RunResult` as JSON under
that key (via ``atomic_write_text``, so a crash mid-store can never
leave a truncated entry), and repeated grid runs return the stored
result without simulating anything.

Only *successful first-attempt* results are stored: failures carry no
reusable state, and a retry-reseeded success was produced by a
different seed than the key claims.  Loading is defensive — a missing,
corrupt, or format-incompatible entry is simply a miss.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.metrics import MetricSet
from repro.common.errors import ConfigError
from repro.common.io import atomic_write_text
from repro.common.stats import CacheStats
from repro.obs.ledger import RunLedger
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsSeries
from repro.sim.simulator import RunResult

#: Bumped whenever the stored layout changes; mismatches load as misses.
#: Format 2 added the optional windowed-metrics ``series`` payload; the
#: optional capacity-flow ``ledger`` key rides the same format because
#: it is emitted only when present — ledger-less entries keep their
#: exact pre-ledger bytes, and old entries load with ``ledger=None``.
_FORMAT = 2


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten a :class:`RunResult` (and nested dataclasses) to JSON.

    ``result.backend`` is deliberately not serialised: the columnar
    exactness contract (DESIGN.md §13) makes backends result-identical,
    so recording one would only split run-cache keys, campaign journal
    ``result_digest`` values and saved-run bytes across paths that
    produced the same result.  Round-tripped results report the default
    ``"python"`` — execution provenance is in-process information.

    The capacity-flow ``ledger`` is serialised only when present, so
    every ledger-less payload (including everything written before the
    field existed) keeps its exact bytes and digests.
    """
    payload = {
        "scheme": result.scheme,
        "trace_name": result.trace_name,
        "stats": asdict(result.stats),
        "measured_accesses": result.measured_accesses,
        "measured_instructions": result.measured_instructions,
        "metrics": asdict(result.metrics),
        "manifest": (
            asdict(result.manifest) if result.manifest is not None else None
        ),
        "series": (
            result.series.as_dict() if result.series is not None else None
        ),
    }
    if result.ledger is not None:
        payload["ledger"] = result.ledger.as_dict()
    return payload


def result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` stored by :func:`result_to_dict`."""
    manifest_payload = payload.get("manifest")
    series_payload = payload.get("series")
    ledger_payload = payload.get("ledger")
    return RunResult(
        scheme=payload["scheme"],
        trace_name=payload["trace_name"],
        stats=CacheStats(**payload["stats"]),
        measured_accesses=payload["measured_accesses"],
        measured_instructions=payload["measured_instructions"],
        metrics=MetricSet(**payload["metrics"]),
        manifest=(
            RunManifest(**manifest_payload)
            if manifest_payload is not None else None
        ),
        series=(
            MetricsSeries.from_dict(series_payload)
            if series_payload is not None else None
        ),
        ledger=(
            RunLedger.from_dict(ledger_payload)
            if ledger_payload is not None else None
        ),
    )


def save_run(path: Union[str, Path], result: RunResult) -> Path:
    """Persist a single :class:`RunResult` to ``path`` atomically.

    The document uses the same layout as a :class:`RunCache` entry
    (minus the cell key) so ``repro diff`` can consume either.  Written
    via ``atomic_write_text``: a crash mid-save never leaves a
    truncated file.
    """
    path = Path(path)
    document = {"format": _FORMAT, "result": result_to_dict(result)}
    atomic_write_text(path, json.dumps(document, sort_keys=True))
    return path


def load_run(path: Union[str, Path]) -> RunResult:
    """Load a run saved by :func:`save_run`.

    Unlike :meth:`RunCache.get` — where a bad entry is just a miss —
    an explicit file argument that cannot be loaded is a user error, so
    this raises :class:`~repro.common.errors.ConfigError` with the
    reason instead of returning None.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read run file {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"run file {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise ConfigError(
            f"run file {path} has format "
            f"{document.get('format') if isinstance(document, dict) else '?'}"
            f", expected {_FORMAT}"
        )
    try:
        return result_from_dict(document["result"])
    except (KeyError, TypeError, ConfigError) as exc:
        raise ConfigError(f"run file {path} is malformed: {exc}") from exc


class RunCache:
    """Directory-backed store of finished runs keyed by content hash.

    Entries are sharded by the first two hex digits of the key so a
    large grid does not put thousands of files in one directory.
    ``hits``/``misses`` count :meth:`get` outcomes for the profiler's
    report surface.

    A *corrupt* entry — present on disk but unreadable or
    format-incompatible — used to load as a silent miss on every
    lookup, invisibly re-simulating the cell each time the store path
    did not happen to replace it (failures and retry-reseeded successes
    are never stored).  Instead it is quarantined on first sight:
    renamed to ``<key>.corrupt`` beside its shard, counted in
    :attr:`corrupt_entries` (surfaced by
    :class:`~repro.obs.profile.RunProfiler`), and reported with one
    warning; the re-simulated result then stores cleanly.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a corrupt entry aside so the miss cannot recur silently."""
        self.corrupt_entries += 1
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # already moved / permission oddity: count anyway
            target = path
        warnings.warn(
            f"run cache entry {path} is corrupt ({reason}); "
            f"moved to {target}",
            stacklevel=3,
        )

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or None (counted as a miss).

        A missing entry is a plain miss; a *corrupt* one is quarantined
        (renamed to ``<key>.corrupt``) and counted before the miss is
        returned, so it can never masquerade as a silent miss twice.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            document = json.loads(text)
            if document.get("format") != _FORMAT:
                raise ValueError("format mismatch")
            if document.get("key") != key:
                raise ValueError("key mismatch")
            result = result_from_dict(document["result"])
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, key, type(exc).__name__)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": _FORMAT,
            "key": key,
            "result": result_to_dict(result),
        }
        atomic_write_text(path, json.dumps(document, sort_keys=True))
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
