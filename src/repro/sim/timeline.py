"""Windowed simulation: metric time series across a trace.

The paper's Figure 1 shows *per-interval* behaviour (1000 sampling
periods); this module provides the equivalent view for any metric of
any scheme: drive a trace through a cache in fixed-size windows and
record per-window miss rates, MPKI and the cooperative/temporal
activity counters.  Phase-change studies (``examples/
phase_adaptivity.py``, the mixes tests) read adaptation speed straight
off these series.

Since the metrics tentpole, :func:`run_timeline` is a thin driver over
:class:`~repro.obs.metrics.MetricsRegistry` — the registry owns the
counter-delta and derived-rate bookkeeping (plus any gauges the cache
publishes), and the timeline keeps its historical shape on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.stats import counter_field_names
from repro.obs.metrics import MetricsRegistry
from repro.workloads.trace import Trace

#: Counters sampled per window (deltas between window boundaries) —
#: derived from :class:`~repro.common.stats.CacheStats` so every
#: counter (spill_rejects, evictions, writebacks, misses_double_probe,
#: future additions, ...) is tracked automatically.
_TRACKED = counter_field_names()


@dataclass
class Timeline:
    """Per-window metric series for one (scheme, trace) run."""

    window_length: int
    scheme: str
    trace_name: str
    series: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def num_windows(self) -> int:
        """Number of completed windows recorded."""
        return len(self.series.get("miss_rate", []))

    def window_mpki(self, instructions_per_access: float) -> List[float]:
        """MPKI per window given the trace's instruction density."""
        return [
            misses * 1000.0
            / max(1e-12, self.window_length * instructions_per_access)
            for misses in self.series["misses"]
        ]

    def peak_window(self, metric: str = "miss_rate") -> int:
        """Index of the worst window under ``metric``."""
        values = self.series[metric]
        return max(range(len(values)), key=values.__getitem__)


def run_timeline(
    cache,
    trace: Trace,
    window_length: int = 10_000,
    with_writes: bool = True,
) -> Timeline:
    """Simulate ``trace`` on ``cache`` recording per-window series.

    Unlike :func:`repro.sim.simulator.run_trace` there is no warm-up
    discard: the first window *shows* the cold start, which is part of
    what a timeline is for.  Per-set rows are not collected here (use
    ``run_trace(..., metrics_window=N)`` for the heatmap payload); the
    scalar series — counter deltas, derived rates and the cache's
    gauges — land directly in :attr:`Timeline.series`.
    """
    # The registry validates window_length (ConfigError on <= 0).
    registry = MetricsRegistry(
        window_length=window_length, include_per_set=False
    )
    scheme = getattr(cache, "name", type(cache).__name__)
    timeline = Timeline(
        window_length=window_length,
        scheme=scheme,
        trace_name=trace.name,
    )
    addresses = trace.addresses
    writes = trace.writes if with_writes else None
    access = cache.access
    position = 0
    total = len(addresses)
    while position < total:
        stop = min(position + window_length, total)
        if writes is None:
            for index in range(position, stop):
                access(addresses[index])
        else:
            for index in range(position, stop):
                access(addresses[index], writes[index])
        registry.sample(cache, stop - position)
        position = stop
    timeline.series = registry.series
    return timeline
