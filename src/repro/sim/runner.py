"""Experiment runner: scheme x workload grids and associativity sweeps.

All entry points accept an optional
:class:`~repro.obs.profile.RunProfiler`, which collects each run's
phase timings (already measured by :func:`run_trace`) into one report —
the substrate behind the CLI's ``--profile`` flags.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.profile import RunProfiler
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.results import ResultMatrix
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace
from repro.workloads.trace import Trace


def run_matrix(
    traces: Sequence[Trace],
    schemes: Sequence[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
) -> ResultMatrix:
    """Run every scheme on every trace at one geometry."""
    scale = scale if scale is not None else ExperimentScale.default()
    matrix = ResultMatrix()
    geometry = scale.geometry()
    for trace in traces:
        for scheme_name in schemes:
            cache = make_scheme(scheme_name, geometry, seed=seed)
            result = run_trace(
                cache,
                trace,
                warmup_fraction=scale.warmup_fraction,
                machine=scale.machine,
            )
            if profiler is not None:
                profiler.add(result)
            matrix.add(result)
    return matrix


def run_benchmarks(
    schemes: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
) -> ResultMatrix:
    """Run the (selected) SPEC-like benchmarks through every scheme."""
    scale = scale if scale is not None else ExperimentScale.default()
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    traces = [
        make_benchmark_trace(
            name,
            num_sets=scale.num_sets,
            length=scale.trace_length,
        )
        for name in names
    ]
    return run_matrix(traces, schemes, scale=scale, seed=seed,
                      profiler=profiler)


def associativity_sweep(
    trace: Trace,
    schemes: Sequence[str],
    associativities: Sequence[int],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
) -> Dict[str, List[RunResult]]:
    """MPKI-vs-associativity curves (Figures 3 and 10).

    The trace's set mapping depends only on the set count, so the same
    trace is reused across associativities — exactly how the paper
    varies capacity while holding the reference stream fixed.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    curves: Dict[str, List[RunResult]] = {name: [] for name in schemes}
    for associativity in associativities:
        geometry = scale.geometry(associativity=associativity)
        for scheme_name in schemes:
            cache = make_scheme(scheme_name, geometry, seed=seed)
            result = run_trace(
                cache,
                trace,
                warmup_fraction=scale.warmup_fraction,
                machine=scale.machine,
            )
            if profiler is not None:
                profiler.add(result)
            curves[scheme_name].append(result)
    return curves
