"""Experiment runner: scheme x workload grids and associativity sweeps.

All entry points accept an optional
:class:`~repro.obs.profile.RunProfiler`, which collects each run's
phase timings (already measured by :func:`run_trace`) into one report —
the substrate behind the CLI's ``--profile`` flags.

Grids are crash-tolerant by default: each (scheme, trace) cell runs
through :func:`~repro.resilience.harness.guarded_run`, so one poisoned
cell is recorded as a structured
:class:`~repro.sim.results.RunFailure` in the matrix while the rest of
the grid completes.  A :class:`~repro.resilience.harness.RetryPolicy`
adds retry-with-reseed, and ``watchdog_seconds`` arms a per-run
wall-clock deadline.  Pass ``isolate=False`` to restore fail-fast
propagation (debugging a single cell).

Every grid is expressed as a list of
:class:`~repro.sim.parallel.CellSpec` cells and executed by a
:class:`~repro.sim.parallel.ParallelRunner` — serially by default, or
sharded across a process pool with ``max_workers=N``.  Either way the
cells are assembled back in canonical (trace-major, scheme-minor)
order, so the resulting matrix is identical regardless of worker
scheduling.  An optional :class:`~repro.sim.cache.RunCache` skips
cells whose content-addressed key already holds a stored result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.profile import RunProfiler
from repro.resilience.harness import RetryPolicy
from repro.sim.config import ExperimentScale
from repro.sim.parallel import CellSpec, ParallelRunner
from repro.sim.results import ResultMatrix, RunFailure
from repro.sim.simulator import RunResult
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace
from repro.workloads.trace import Trace


def run_matrix(
    traces: Sequence[Trace],
    schemes: Sequence[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    isolate: bool = True,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
    max_workers: Optional[int] = None,
    run_cache=None,
    metrics_window: Optional[int] = None,
    telemetry_dir=None,
    backend: Optional[str] = None,
    ledger: bool = False,
) -> ResultMatrix:
    """Run every scheme on every trace at one geometry.

    With ``isolate`` (the default), a failing cell becomes a
    :class:`RunFailure` in ``matrix.failures`` and the grid continues;
    without it, the first exception propagates immediately.

    ``max_workers`` > 1 shards the cells across a process pool; the
    returned matrix is identical to the serial result on the same
    seeds.  ``run_cache`` (a :class:`~repro.sim.cache.RunCache`) skips
    cells whose inputs already have a stored result.  ``telemetry_dir``
    arms the live fleet-telemetry channel over that directory — spans,
    heartbeats, ``status.json`` — without changing any outcome (see
    :class:`~repro.sim.parallel.ParallelRunner`).

    ``backend`` selects the per-cell execution path (``"auto"`` /
    ``"python"`` / ``"numpy"``); the columnar path's exactness contract
    means it, too, never changes any outcome (DESIGN.md §13).

    ``ledger=True`` attaches the capacity-flow ledger to every cell, so
    each :class:`RunResult` carries a sealed
    :class:`~repro.obs.ledger.RunLedger` (DESIGN.md §14).  Ledgered
    cells run on the scalar path (tracing forces it) but stay
    deterministic: serial and parallel grids produce byte-identical
    ledgers.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    geometry = scale.geometry()
    specs = []
    for trace in traces:
        for scheme_name in schemes:
            specs.append(CellSpec(
                index=len(specs),
                scheme=scheme_name,
                label=scheme_name,
                trace=trace,
                geometry=geometry,
                seed=seed,
                warmup_fraction=scale.warmup_fraction,
                machine=scale.machine,
                isolate=isolate,
                retry=retry,
                watchdog_seconds=watchdog_seconds,
                metrics_window=metrics_window,
                backend=backend,
                ledger=ledger,
            ))
    runner = ParallelRunner(
        max_workers=max_workers, run_cache=run_cache, profiler=profiler,
        telemetry_dir=telemetry_dir,
    )
    matrix = ResultMatrix()
    for outcome in runner.run(specs):
        if isinstance(outcome, RunFailure):
            matrix.add_failure(outcome)
        else:
            matrix.add(outcome)
    return matrix


def run_benchmarks(
    schemes: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    isolate: bool = True,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
    max_workers: Optional[int] = None,
    run_cache=None,
    metrics_window: Optional[int] = None,
    telemetry_dir=None,
    backend: Optional[str] = None,
    ledger: bool = False,
) -> ResultMatrix:
    """Run the (selected) SPEC-like benchmarks through every scheme."""
    scale = scale if scale is not None else ExperimentScale.default()
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    traces = [
        make_benchmark_trace(
            name,
            num_sets=scale.num_sets,
            length=scale.trace_length,
        )
        for name in names
    ]
    return run_matrix(traces, schemes, scale=scale, seed=seed,
                      profiler=profiler, isolate=isolate, retry=retry,
                      watchdog_seconds=watchdog_seconds,
                      max_workers=max_workers, run_cache=run_cache,
                      metrics_window=metrics_window,
                      telemetry_dir=telemetry_dir, backend=backend,
                      ledger=ledger)


def associativity_sweep(
    trace: Trace,
    schemes: Sequence[str],
    associativities: Sequence[int],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    failures: Optional[List[RunFailure]] = None,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
    max_workers: Optional[int] = None,
    run_cache=None,
    metrics_window: Optional[int] = None,
    telemetry_dir=None,
    backend: Optional[str] = None,
    ledger: bool = False,
) -> Dict[str, List[RunResult]]:
    """MPKI-vs-associativity curves (Figures 3 and 10).

    The trace's set mapping depends only on the set count, so the same
    trace is reused across associativities — exactly how the paper
    varies capacity while holding the reference stream fixed.

    Passing a ``failures`` list opts into per-run isolation: a failed
    run is appended there (tagged ``scheme@assoc``) and skipped from
    its curve rather than aborting the sweep.  Without it, curves must
    stay index-aligned with ``associativities``, so errors propagate.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    isolate = failures is not None
    specs = []
    spec_scheme: List[str] = []
    for associativity in associativities:
        geometry = scale.geometry(associativity=associativity)
        for scheme_name in schemes:
            specs.append(CellSpec(
                index=len(specs),
                scheme=scheme_name,
                label=f"{scheme_name}@{associativity}",
                trace=trace,
                geometry=geometry,
                seed=seed,
                warmup_fraction=scale.warmup_fraction,
                machine=scale.machine,
                isolate=isolate,
                retry=retry,
                watchdog_seconds=watchdog_seconds,
                metrics_window=metrics_window,
                backend=backend,
                ledger=ledger,
            ))
            spec_scheme.append(scheme_name)
    runner = ParallelRunner(
        max_workers=max_workers, run_cache=run_cache, profiler=profiler,
        telemetry_dir=telemetry_dir,
    )
    curves: Dict[str, List[RunResult]] = {name: [] for name in schemes}
    for scheme_name, outcome in zip(spec_scheme, runner.run(specs)):
        if isinstance(outcome, RunFailure):
            failures.append(outcome)
            continue
        curves[scheme_name].append(outcome)
    return curves
