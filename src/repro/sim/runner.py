"""Experiment runner: scheme x workload grids and associativity sweeps.

All entry points accept an optional
:class:`~repro.obs.profile.RunProfiler`, which collects each run's
phase timings (already measured by :func:`run_trace`) into one report —
the substrate behind the CLI's ``--profile`` flags.

Grids are crash-tolerant by default: each (scheme, trace) cell runs
through :func:`~repro.resilience.harness.guarded_run`, so one poisoned
cell is recorded as a structured
:class:`~repro.sim.results.RunFailure` in the matrix while the rest of
the grid completes.  A :class:`~repro.resilience.harness.RetryPolicy`
adds retry-with-reseed, and ``watchdog_seconds`` arms a per-run
wall-clock deadline.  Pass ``isolate=False`` to restore fail-fast
propagation (debugging a single cell).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.profile import RunProfiler
from repro.resilience.harness import RetryPolicy, guarded_run
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.results import ResultMatrix, RunFailure
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace
from repro.workloads.trace import Trace


def run_matrix(
    traces: Sequence[Trace],
    schemes: Sequence[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    isolate: bool = True,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
) -> ResultMatrix:
    """Run every scheme on every trace at one geometry.

    With ``isolate`` (the default), a failing cell becomes a
    :class:`RunFailure` in ``matrix.failures`` and the grid continues;
    without it, the first exception propagates immediately.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    matrix = ResultMatrix()
    geometry = scale.geometry()
    for trace in traces:
        for scheme_name in schemes:
            if not isolate:
                cache = make_scheme(scheme_name, geometry, seed=seed)
                result = run_trace(
                    cache,
                    trace,
                    warmup_fraction=scale.warmup_fraction,
                    machine=scale.machine,
                )
            else:
                result = guarded_run(
                    lambda s, name=scheme_name: make_scheme(
                        name, geometry, seed=s
                    ),
                    trace,
                    scheme=scheme_name,
                    base_seed=seed,
                    retry=retry,
                    watchdog_seconds=watchdog_seconds,
                    warmup_fraction=scale.warmup_fraction,
                    machine=scale.machine,
                )
            if isinstance(result, RunFailure):
                matrix.add_failure(result)
                continue
            if profiler is not None:
                profiler.add(result)
            matrix.add(result)
    return matrix


def run_benchmarks(
    schemes: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    isolate: bool = True,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
) -> ResultMatrix:
    """Run the (selected) SPEC-like benchmarks through every scheme."""
    scale = scale if scale is not None else ExperimentScale.default()
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    traces = [
        make_benchmark_trace(
            name,
            num_sets=scale.num_sets,
            length=scale.trace_length,
        )
        for name in names
    ]
    return run_matrix(traces, schemes, scale=scale, seed=seed,
                      profiler=profiler, isolate=isolate, retry=retry,
                      watchdog_seconds=watchdog_seconds)


def associativity_sweep(
    trace: Trace,
    schemes: Sequence[str],
    associativities: Sequence[int],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0xACE1,
    profiler: Optional[RunProfiler] = None,
    failures: Optional[List[RunFailure]] = None,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
) -> Dict[str, List[RunResult]]:
    """MPKI-vs-associativity curves (Figures 3 and 10).

    The trace's set mapping depends only on the set count, so the same
    trace is reused across associativities — exactly how the paper
    varies capacity while holding the reference stream fixed.

    Passing a ``failures`` list opts into per-run isolation: a failed
    run is appended there (tagged ``scheme@assoc``) and skipped from
    its curve rather than aborting the sweep.  Without it, curves must
    stay index-aligned with ``associativities``, so errors propagate.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    curves: Dict[str, List[RunResult]] = {name: [] for name in schemes}
    for associativity in associativities:
        geometry = scale.geometry(associativity=associativity)
        for scheme_name in schemes:
            if failures is None:
                cache = make_scheme(scheme_name, geometry, seed=seed)
                result = run_trace(
                    cache,
                    trace,
                    warmup_fraction=scale.warmup_fraction,
                    machine=scale.machine,
                )
            else:
                result = guarded_run(
                    lambda s, name=scheme_name, g=geometry: make_scheme(
                        name, g, seed=s
                    ),
                    trace,
                    scheme=f"{scheme_name}@{associativity}",
                    base_seed=seed,
                    retry=retry,
                    watchdog_seconds=watchdog_seconds,
                    warmup_fraction=scale.warmup_fraction,
                    machine=scale.machine,
                )
                if isinstance(result, RunFailure):
                    failures.append(result)
                    continue
            if profiler is not None:
                profiler.add(result)
            curves[scheme_name].append(result)
    return curves
