"""Multi-seed replication: mean and spread of any scheme metric.

The paper reports single deterministic runs (execution-driven
simulation); our synthetic traces have a generator seed, so a careful
reproduction should show that the headline comparisons are stable
across seeds.  :func:`replicate` runs one (scheme, benchmark) pair
under several trace seeds and returns summary statistics; the paper-
claims tests use it to guard against seed-lottery conclusions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import make_benchmark_trace


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean / spread of one metric across trace seeds."""

    scheme: str
    benchmark: str
    values: "tuple[float, ...]"

    @property
    def mean(self) -> float:
        """Arithmetic mean across seeds."""
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        """max - min across seeds."""
        return max(self.values) - min(self.values)


def replicate(
    scheme: str,
    benchmark: str,
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[ExperimentScale] = None,
    metric: Callable[[RunResult], float] = lambda r: r.mpki,
    seed: int = 0xACE1,
) -> ReplicationSummary:
    """Run one scheme on one benchmark across several trace seeds.

    ``seed`` is the *scheme* seed (the controller LFSR), threaded to
    :func:`make_scheme` exactly as :func:`~repro.sim.runner.run_matrix`
    does — ``seeds`` varies only the trace generator, so the replication
    isolates workload variance from controller randomness.
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    scale = scale if scale is not None else ExperimentScale.default()
    values: List[float] = []
    for seed_offset in seeds:
        trace = make_benchmark_trace(
            benchmark,
            num_sets=scale.num_sets,
            length=scale.trace_length,
            seed_offset=seed_offset,
        )
        cache = make_scheme(scheme, scale.geometry(), seed=seed)
        result = run_trace(
            cache,
            trace,
            warmup_fraction=scale.warmup_fraction,
            machine=scale.machine,
        )
        values.append(metric(result))
    return ReplicationSummary(
        scheme=scheme, benchmark=benchmark, values=tuple(values)
    )


def compare_with_confidence(
    scheme_a: str,
    scheme_b: str,
    benchmark: str,
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[ExperimentScale] = None,
) -> "tuple[ReplicationSummary, ReplicationSummary, bool]":
    """Replicate two schemes; True when A beats B on *every* seed.

    Per-seed pairing (same trace for both schemes) removes the workload
    variance, so "wins on every seed" is a strong, assumption-free
    ordering statement.
    """
    a = replicate(scheme_a, benchmark, seeds=seeds, scale=scale)
    b = replicate(scheme_b, benchmark, seeds=seeds, scale=scale)
    dominates = all(
        va < vb for va, vb in zip(a.values, b.values)
    )
    return a, b, dominates
