"""Crash-recoverable campaigns: declarative specs, journal, resume.

A *campaign* is the production shape of an experiment grid: a JSON (or
TOML, Python 3.11+) spec names benchmark sets, schemes, geometries,
seeds and optional fault plans; the cross product becomes ordered
:class:`~repro.sim.parallel.CellSpec` cells executed through
:class:`~repro.sim.parallel.ParallelRunner` and the content-addressed
:class:`~repro.sim.cache.RunCache`.

What distinguishes a campaign from ``repro bench`` is the durability
contract (DESIGN.md §12):

* Every cell transition is journaled to an append-only
  ``campaign.jsonl`` — ``cell_start`` when a cell is handed to a
  worker, ``cell_done`` (with the result's content digest and cache
  key) or ``cell_failed`` (with the structured
  :class:`~repro.sim.results.RunFailure`) when it lands.  Each record
  is flushed **and fsynced** before the campaign moves on, so a
  ``SIGKILL`` at any instant loses at most one torn trailing line —
  which replay tolerates, exactly like
  :func:`~repro.obs.sinks.load_events` with ``strict=False``.
* ``run_campaign`` *resumes by default*: it replays the journal, serves
  completed cells from the run cache (verifying the journaled digest),
  keeps journaled failures quarantined without re-running them, and
  re-arms the full :class:`~repro.resilience.harness.RetryPolicy` for
  cells that died mid-flight.
* A cell that exhausts its retries is **quarantined** — written to
  ``quarantine/cell-NNNNN.json`` and listed in the report's
  graceful-degradation banner — instead of aborting the campaign.

Determinism: the emitted ``matrix.txt``, ``summary.json`` and
``report.html`` contain nothing wall-clock- or host-dependent, so a
campaign killed at an arbitrary cell and resumed produces **byte
identical** artefacts to one that never died.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.cache.geometry import CacheGeometry
from repro.common.errors import (
    CampaignError,
    CampaignSpecError,
    ConfigError,
    ReproError,
)
from repro.common.io import atomic_write_text
from repro.obs.htmlreport import render_campaign_html
from repro.obs.profile import RunProfiler
from repro.resilience.faults import FaultPlan
from repro.resilience.harness import RetryPolicy
from repro.sim.cache import RunCache, result_to_dict
from repro.sim.columnar import BACKENDS
from repro.sim.config import canonical_scheme_name
from repro.sim.parallel import (
    CellObserver,
    CellOutcome,
    CellSpec,
    ParallelRunner,
)
from repro.sim.results import ResultMatrix, RunFailure, format_table
from repro.sim.simulator import RunResult
from repro.workloads.benchmark_sets import (
    benchmark_set_names,
    resolve_benchmarks,
)
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace
from repro.workloads.trace import Trace

#: Journal format marker, recorded in ``campaign_start``.
JOURNAL_FORMAT = 1

#: Keys a campaign spec document may carry at the top level.
_SPEC_KEYS = frozenset({
    "name", "schemes", "benchmarks", "geometries", "seeds",
    "fault_plans", "trace_length", "warmup_fraction", "metrics_window",
    "retry", "watchdog_seconds", "backend", "ledger",
})

_RETRY_KEYS = frozenset({"max_attempts", "reseed_step"})
_GEOMETRY_KEYS = frozenset({"sets", "assoc"})


def _fail(source: str, keypath: str, problem: str) -> "CampaignSpecError":
    """Uniform preflight error: file, key path, and the problem."""
    return CampaignSpecError(f"{source}: {keypath}: {problem}")


def _expect_int(source: str, keypath: str, value: Any,
                minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(source, keypath, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _fail(
            source, keypath, f"must be >= {minimum}, got {value!r}"
        )
    return value


def _expect_number(source: str, keypath: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(source, keypath, f"expected a number, got {value!r}")
    return float(value)


def _expect_list(source: str, keypath: str, value: Any) -> List[Any]:
    if not isinstance(value, list) or not value:
        raise _fail(
            source, keypath, f"expected a non-empty list, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class CampaignGeometry:
    """One LLC shape of the campaign grid (64-byte lines)."""

    sets: int
    assoc: int

    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            num_sets=self.sets, associativity=self.assoc, line_size=64
        )

    @property
    def tag(self) -> str:
        """Short id used in cell ids and labels, e.g. ``g256x16``."""
        return f"g{self.sets}x{self.assoc}"


@dataclass(frozen=True)
class CampaignSpec:
    """A validated, fully-resolved campaign description.

    Every field is already normalised — benchmarks expanded and sorted,
    scheme names lowered to factory keys, geometries constructed — so
    :func:`build_cells` is a pure deterministic expansion and
    :meth:`digest` identifies the grid regardless of how the spec file
    spelled it.
    """

    name: str
    source: str
    schemes: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    geometries: Tuple[CampaignGeometry, ...]
    seeds: Tuple[int, ...]
    fault_plans: Tuple[Optional[str], ...]
    trace_length: int
    warmup_fraction: float
    metrics_window: Optional[int]
    retry: Optional[RetryPolicy]
    watchdog_seconds: Optional[float]
    backend: Optional[str] = None
    ledger: bool = False

    def total_cells(self) -> int:
        return (
            len(self.benchmarks) * len(self.geometries) * len(self.seeds)
            * len(self.fault_plans) * len(self.schemes)
        )

    def digest(self) -> str:
        """Content hash of the *semantic* spec (not the file bytes).

        The source path is deliberately excluded so a moved or
        re-indented spec file still resumes its journal.
        """
        payload = {
            "name": self.name,
            "schemes": list(self.schemes),
            "benchmarks": list(self.benchmarks),
            "geometries": [[g.sets, g.assoc] for g in self.geometries],
            "seeds": list(self.seeds),
            "fault_plans": list(self.fault_plans),
            "trace_length": self.trace_length,
            "warmup_fraction": self.warmup_fraction,
            "metrics_window": self.metrics_window,
            "retry": (
                [self.retry.max_attempts, self.retry.reseed_step]
                if self.retry is not None else None
            ),
            "watchdog_seconds": self.watchdog_seconds,
        }
        if self.backend is not None:
            # Only specs that name a backend carry the key, so every
            # pre-existing journal digest keeps resuming.  (The backend
            # cannot change results — the digest guards *intent*.)
            payload["backend"] = self.backend
        if self.ledger:
            # Same only-when-set idiom; a ledgered campaign produces
            # different cell payloads, so it must not resume a
            # ledger-less journal (or vice versa).
            payload["ledger"] = True
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _parse_schemes(source: str, document: Dict[str, Any]) -> Tuple[str, ...]:
    items = _expect_list(source, "schemes", document.get("schemes"))
    keys: List[str] = []
    seen: Dict[str, int] = {}
    for index, item in enumerate(items):
        keypath = f"schemes[{index}]"
        if not isinstance(item, str):
            raise _fail(source, keypath,
                        f"expected a scheme name, got {item!r}")
        try:
            display = canonical_scheme_name(item)
        except ConfigError as exc:
            raise _fail(source, keypath, str(exc)) from exc
        if display in seen:
            raise _fail(
                source, keypath,
                f"duplicate scheme {item!r} "
                f"(same as schemes[{seen[display]}])",
            )
        seen[display] = index
        keys.append(item.lower())
    return tuple(keys)


def _parse_benchmarks(
    source: str, document: Dict[str, Any]
) -> Tuple[str, ...]:
    items = _expect_list(source, "benchmarks", document.get("benchmarks"))
    for index, item in enumerate(items):
        keypath = f"benchmarks[{index}]"
        if not isinstance(item, str):
            raise _fail(source, keypath,
                        f"expected a benchmark or set name, got {item!r}")
        try:
            # Token-at-a-time so the error names the offending index.
            resolve_benchmarks([item])
        except ConfigError as exc:
            raise _fail(
                source, keypath,
                f"unknown benchmark or set {item!r}; sets: "
                f"{', '.join(benchmark_set_names())}; benchmarks: "
                f"{', '.join(benchmark_names())}",
            ) from exc
    return tuple(resolve_benchmarks([str(item) for item in items]))


def _parse_geometries(
    source: str, document: Dict[str, Any]
) -> Tuple[CampaignGeometry, ...]:
    raw = document.get("geometries")
    if raw is None:
        return (CampaignGeometry(sets=256, assoc=16),)
    items = _expect_list(source, "geometries", raw)
    geometries: List[CampaignGeometry] = []
    seen: Dict[Tuple[int, int], int] = {}
    for index, item in enumerate(items):
        keypath = f"geometries[{index}]"
        if not isinstance(item, dict):
            raise _fail(source, keypath,
                        f"expected {{\"sets\": N, \"assoc\": N}}, "
                        f"got {item!r}")
        unknown = sorted(set(item) - _GEOMETRY_KEYS)
        if unknown:
            raise _fail(source, f"{keypath}.{unknown[0]}",
                        f"unknown geometry key (accepted: "
                        f"{', '.join(sorted(_GEOMETRY_KEYS))})")
        sets = _expect_int(source, f"{keypath}.sets", item.get("sets"))
        assoc = _expect_int(source, f"{keypath}.assoc", item.get("assoc"))
        geometry = CampaignGeometry(sets=sets, assoc=assoc)
        try:
            geometry.geometry()
        except ConfigError as exc:
            raise _fail(source, keypath, str(exc)) from exc
        pair = (sets, assoc)
        if pair in seen:
            raise _fail(source, keypath,
                        f"duplicate geometry {sets}x{assoc} "
                        f"(same as geometries[{seen[pair]}])")
        seen[pair] = index
        geometries.append(geometry)
    return tuple(geometries)


def _parse_seeds(source: str, document: Dict[str, Any]) -> Tuple[int, ...]:
    raw = document.get("seeds")
    if raw is None:
        return (0xACE1,)
    items = _expect_list(source, "seeds", raw)
    seeds: List[int] = []
    for index, item in enumerate(items):
        keypath = f"seeds[{index}]"
        seed = _expect_int(source, keypath, item)
        if seed in seeds:
            raise _fail(source, keypath, f"duplicate seed {seed!r}")
        seeds.append(seed)
    return tuple(seeds)


def _parse_fault_plans(
    source: str, document: Dict[str, Any]
) -> Tuple[Optional[str], ...]:
    raw = document.get("fault_plans")
    if raw is None:
        return (None,)
    items = _expect_list(source, "fault_plans", raw)
    plans: List[Optional[str]] = []
    for index, item in enumerate(items):
        keypath = f"fault_plans[{index}]"
        # TOML has no null: an empty string also means "no faults".
        plan: Optional[str] = None
        if item not in (None, ""):
            if not isinstance(item, str):
                raise _fail(source, keypath,
                            f"expected a fault-plan string or null, "
                            f"got {item!r}")
            try:
                parsed = FaultPlan.parse(item)
            except ReproError as exc:
                raise _fail(source, keypath,
                            f"invalid fault plan {item!r}: {exc}") from exc
            if not parsed.specs:
                raise _fail(source, keypath,
                            f"fault plan {item!r} injects nothing")
            plan = item
        if plan in plans:
            raise _fail(source, keypath, f"duplicate fault plan {item!r}")
        plans.append(plan)
    return tuple(plans)


def _parse_backend(
    source: str, document: Dict[str, Any]
) -> Optional[str]:
    raw = document.get("backend")
    if raw is None:
        return None
    if not isinstance(raw, str) or raw not in BACKENDS:
        raise _fail(source, "backend",
                    f"expected one of {', '.join(BACKENDS)}, got {raw!r}")
    return raw


def _parse_ledger(source: str, document: Dict[str, Any]) -> bool:
    raw = document.get("ledger", False)
    if not isinstance(raw, bool):
        raise _fail(source, "ledger",
                    f"expected true or false, got {raw!r}")
    return raw


def _parse_retry(
    source: str, document: Dict[str, Any]
) -> Optional[RetryPolicy]:
    raw = document.get("retry")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise _fail(source, "retry",
                    f"expected {{\"max_attempts\": N, \"reseed_step\": N}}, "
                    f"got {raw!r}")
    unknown = sorted(set(raw) - _RETRY_KEYS)
    if unknown:
        raise _fail(source, f"retry.{unknown[0]}",
                    f"unknown retry key (accepted: "
                    f"{', '.join(sorted(_RETRY_KEYS))})")
    max_attempts = _expect_int(
        source, "retry.max_attempts", raw.get("max_attempts", 1), minimum=1
    )
    reseed_step = _expect_int(
        source, "retry.reseed_step", raw.get("reseed_step", 1)
    )
    return RetryPolicy(max_attempts=max_attempts, reseed_step=reseed_step)


def _load_document(path: Path) -> Any:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignSpecError(
            f"cannot read campaign spec {path}: {exc}"
        ) from exc
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11: no baked-in parser
            raise CampaignSpecError(
                f"{path}: TOML specs need Python 3.11+ (tomllib); "
                "rewrite the spec as JSON"
            ) from exc
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignSpecError(
                f"{path}: invalid TOML: {exc}"
            ) from exc
    try:
        return json.loads(text)
    except ValueError as exc:
        raise CampaignSpecError(f"{path}: invalid JSON: {exc}") from exc


def load_campaign_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load and preflight-validate a campaign spec file.

    Every validation failure raises
    :class:`~repro.common.errors.CampaignSpecError` naming the file,
    the key path (``schemes[1]``, ``geometries[0].sets``, ...) and the
    offending value — the whole grid is vetted before a single
    simulation cycle is spent.
    """
    path = Path(path)
    source = str(path)
    document = _load_document(path)
    if not isinstance(document, dict):
        raise _fail(source, "<top level>",
                    f"expected an object, got {document!r}")
    unknown = sorted(set(document) - _SPEC_KEYS)
    if unknown:
        raise _fail(source, unknown[0],
                    f"unknown spec key (accepted: "
                    f"{', '.join(sorted(_SPEC_KEYS))})")
    name = document.get("name", path.stem)
    if not isinstance(name, str) or not name:
        raise _fail(source, "name",
                    f"expected a non-empty string, got {name!r}")
    trace_length = _expect_int(
        source, "trace_length", document.get("trace_length", 60_000),
        minimum=1,
    )
    warmup_fraction = _expect_number(
        source, "warmup_fraction", document.get("warmup_fraction", 0.25)
    )
    if not 0.0 <= warmup_fraction < 1.0:
        raise _fail(source, "warmup_fraction",
                    f"must lie in [0, 1), got {warmup_fraction!r}")
    metrics_window = document.get("metrics_window")
    if metrics_window is not None:
        metrics_window = _expect_int(
            source, "metrics_window", metrics_window, minimum=1
        )
    watchdog_seconds: Optional[float] = None
    if document.get("watchdog_seconds") is not None:
        watchdog_seconds = _expect_number(
            source, "watchdog_seconds", document["watchdog_seconds"]
        )
        if watchdog_seconds <= 0.0:
            raise _fail(source, "watchdog_seconds",
                        f"must be positive, got {watchdog_seconds!r}")
    return CampaignSpec(
        name=name,
        source=source,
        schemes=_parse_schemes(source, document),
        benchmarks=_parse_benchmarks(source, document),
        geometries=_parse_geometries(source, document),
        seeds=_parse_seeds(source, document),
        fault_plans=_parse_fault_plans(source, document),
        trace_length=trace_length,
        warmup_fraction=warmup_fraction,
        metrics_window=metrics_window,
        retry=_parse_retry(source, document),
        watchdog_seconds=watchdog_seconds,
        backend=_parse_backend(source, document),
        ledger=_parse_ledger(source, document),
    )


@dataclass(frozen=True)
class CampaignCell:
    """One expanded grid cell: the runner spec plus its stable id."""

    cell_id: str
    spec: CellSpec


def build_cells(spec: CampaignSpec) -> List[CampaignCell]:
    """Expand the spec into ordered, picklable cells.

    The order is a pure function of the spec — benchmark-major, then
    geometry, seed, fault plan, scheme — so cell indices are stable
    across processes and sessions, which is what lets the journal refer
    to cells by index.  Labels carry only the axes the spec actually
    varies (geometry/seed suffixes appear only in multi-geometry /
    multi-seed campaigns); fault plans are always labelled.
    """
    multi_geometry = len(spec.geometries) > 1
    multi_seed = len(spec.seeds) > 1
    traces: Dict[int, Dict[str, Trace]] = {}
    cells: List[CampaignCell] = []
    index = 0
    for benchmark in spec.benchmarks:
        for geometry in spec.geometries:
            per_sets = traces.setdefault(geometry.sets, {})
            trace = per_sets.get(benchmark)
            if trace is None:
                trace = make_benchmark_trace(
                    benchmark,
                    num_sets=geometry.sets,
                    length=spec.trace_length,
                )
                per_sets[benchmark] = trace
            for seed in spec.seeds:
                for plan in spec.fault_plans:
                    for scheme in spec.schemes:
                        label = canonical_scheme_name(scheme)
                        if multi_geometry:
                            label += f"@{geometry.sets}x{geometry.assoc}"
                        if multi_seed:
                            label += f"#s{seed}"
                        if plan is not None:
                            label += f"!{plan}"
                        cell_id = (
                            f"{benchmark}/{scheme}/{geometry.tag}/s{seed}"
                        )
                        if plan is not None:
                            cell_id += f"/f={plan}"
                        cells.append(CampaignCell(
                            cell_id=cell_id,
                            spec=CellSpec(
                                index=index,
                                scheme=scheme,
                                label=label,
                                trace=trace,
                                geometry=geometry.geometry(),
                                seed=seed,
                                warmup_fraction=spec.warmup_fraction,
                                retry=spec.retry,
                                watchdog_seconds=spec.watchdog_seconds,
                                metrics_window=spec.metrics_window,
                                fault_plan=plan,
                                backend=spec.backend,
                                ledger=spec.ledger,
                            ),
                        ))
                        index += 1
    return cells


def result_digest(result: RunResult) -> str:
    """Content hash of a result's canonical JSON form.

    Stable across store/load round-trips (tuples and lists serialise
    identically), so the journaled digest of a just-finished cell
    equals the digest of the same cell served from the run cache.
    """
    canonical = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CampaignJournal:
    """Append-only ``campaign.jsonl`` writer with per-record durability.

    Every record is one JSON line, flushed *and fsynced* before
    :meth:`append` returns: after a crash the journal is complete up to
    the final record, which at worst is torn mid-line — a state
    :func:`load_journal` tolerates.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None

    def append(self, kind: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"kind": kind}
        record.update(fields)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _trim_torn_tail(path: Path) -> None:
    """Drop a torn final line so the next append starts a clean record.

    Safe by construction: the torn record was never fsynced to
    completion, so nothing ever acknowledged it — and without the trim,
    appending would concatenate the next record onto the torn bytes and
    turn tolerable tail damage into mid-file corruption.
    """
    data = path.read_bytes()
    keep = data.rfind(b"\n") + 1
    with path.open("r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())


def load_journal(
    path: Union[str, Path]
) -> Tuple[List[Dict[str, Any]], bool]:
    """Read journal records, tolerating a torn final line.

    Returns ``(records, truncated)``; ``truncated`` is True when the
    last line was not valid JSON — the signature of a crash mid-append,
    which per-record fsync guarantees is the *only* possible damage.  A
    malformed line anywhere else is real corruption and raises
    :class:`~repro.common.errors.CampaignError`.  A missing journal
    reads as empty.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return [], False
    except OSError as exc:
        raise CampaignError(
            f"cannot read campaign journal {path}: {exc}"
        ) from exc
    records: List[Dict[str, Any]] = []
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except ValueError as exc:
            if number == len(lines):
                return records, True
            raise CampaignError(
                f"campaign journal {path} line {number} is corrupt "
                f"(not torn-tail damage): {exc}"
            ) from exc
        records.append(record)
    return records, False


@dataclass
class JournalState:
    """The replayed view of a campaign journal."""

    spec_digest: Optional[str] = None
    name: Optional[str] = None
    total_cells: Optional[int] = None
    started: Dict[int, str] = field(default_factory=dict)
    completed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    truncated: bool = False
    records: int = 0

    @property
    def in_flight(self) -> List[int]:
        """Cells started but never finished — a worker died on them."""
        return sorted(
            index for index in self.started
            if index not in self.completed and index not in self.failed
        )


def replay_journal(path: Union[str, Path]) -> JournalState:
    """Fold journal records into per-cell terminal state (last wins)."""
    records, truncated = load_journal(path)
    state = JournalState(truncated=truncated, records=len(records))
    for record in records:
        kind = record.get("kind")
        if kind == "campaign_start":
            state.spec_digest = record.get("spec_digest")
            state.name = record.get("name")
            state.total_cells = record.get("total_cells")
        elif kind == "cell_start":
            index = record.get("cell")
            if isinstance(index, int):
                state.started[index] = str(record.get("id", ""))
        elif kind == "cell_done":
            index = record.get("cell")
            if isinstance(index, int):
                state.completed[index] = record
                state.failed.pop(index, None)
        elif kind == "cell_failed":
            index = record.get("cell")
            if isinstance(index, int):
                state.failed[index] = record
                state.completed.pop(index, None)
        # campaign_resume / campaign_end carry no per-cell state.
    return state


class _JournalObserver(CellObserver):
    """Streams runner lifecycle callbacks into the campaign journal."""

    def __init__(
        self, journal: CampaignJournal, cell_ids: Dict[int, str]
    ) -> None:
        self.journal = journal
        self.cell_ids = cell_ids

    def cell_started(self, spec: CellSpec) -> None:
        self.journal.append(
            "cell_start", cell=spec.index,
            id=self.cell_ids.get(spec.index, spec.label),
        )

    def cell_finished(
        self,
        spec: CellSpec,
        outcome: CellOutcome,
        cached: bool,
        key: Optional[str],
    ) -> None:
        cell_id = self.cell_ids.get(spec.index, spec.label)
        if isinstance(outcome, RunFailure):
            self.journal.append(
                "cell_failed", cell=spec.index, id=cell_id,
                failure=outcome.as_dict(),
            )
        else:
            self.journal.append(
                "cell_done", cell=spec.index, id=cell_id,
                key=key, digest=result_digest(outcome), cached=cached,
            )


def _failure_from_record(record: Dict[str, Any]) -> RunFailure:
    """Rebuild a quarantined cell's failure from its journal record."""
    payload = record.get("failure", {})
    return RunFailure(
        workload=str(payload.get("workload", "?")),
        scheme=str(payload.get("scheme", "?")),
        error_type=str(payload.get("error_type", "?")),
        message=str(payload.get("message", "")),
        attempts=int(payload.get("attempts", 1)),
        seeds=tuple(payload.get("seeds", ())),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )


@dataclass(frozen=True)
class QuarantinedCell:
    """One cell that exhausted its retry budget."""

    cell: int
    cell_id: str
    failure: RunFailure

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON view (no wall-clock fields)."""
        return {
            "cell": self.cell,
            "id": self.cell_id,
            "workload": self.failure.workload,
            "scheme": self.failure.scheme,
            "error_type": self.failure.error_type,
            "message": self.failure.message,
            "attempts": self.failure.attempts,
            "seeds": list(self.failure.seeds),
        }


@dataclass
class CampaignOutcome:
    """What one ``run_campaign`` invocation did and produced."""

    spec: CampaignSpec
    directory: Path
    matrix: ResultMatrix
    total_cells: int
    executed: int
    resumed: int
    quarantined: List[QuarantinedCell]
    outputs: Dict[str, Path]

    @property
    def ok(self) -> bool:
        return not self.quarantined


def default_campaign_dir(spec_path: Union[str, Path]) -> Path:
    """Where a spec's campaign state lives: ``<spec stem>.campaign``."""
    return Path(spec_path).with_suffix(".campaign")


def _render_matrix_text(
    spec: CampaignSpec,
    matrix: ResultMatrix,
    normalized: Optional[Dict[str, Dict[str, float]]],
    quarantined: Sequence[QuarantinedCell],
) -> str:
    completed = spec.total_cells() - len(quarantined)
    lines = [
        f"campaign {spec.name}: {spec.total_cells()} cells, "
        f"{completed} completed, {len(quarantined)} quarantined",
        "",
        format_table(
            matrix.metric_table(lambda result: result.mpki),
            matrix.schemes, title="MPKI",
        ),
    ]
    if normalized is not None:
        lines.append("")
        lines.append(format_table(
            normalized, matrix.schemes,
            title="MPKI normalized to LRU (geomean over workloads)",
        ))
    if quarantined:
        lines.append("")
        lines.append("quarantined cells:")
        for entry in quarantined:
            lines.append(
                f"  cell {entry.cell:05d} {entry.cell_id}: "
                f"{entry.failure.error_type}: {entry.failure.message} "
                f"({entry.failure.attempts} attempt(s))"
            )
    return "\n".join(lines) + "\n"


def _normalized_or_none(
    matrix: ResultMatrix,
) -> Optional[Dict[str, Dict[str, float]]]:
    """The LRU-normalised table, or None when it cannot be built.

    Graceful degradation: a campaign without an ``LRU`` column, or one
    whose baseline cell was quarantined, still renders its raw MPKI
    table — the normalised view is just omitted.
    """
    if "LRU" not in matrix.schemes:
        return None
    try:
        return matrix.normalized_table(
            lambda result: result.mpki, baseline="LRU",
        )
    except ConfigError:
        return None


def _write_quarantine(
    directory: Path, quarantined: Sequence[QuarantinedCell]
) -> None:
    """Materialise ``quarantine/cell-NNNNN.json``, one file per cell.

    The directory mirrors the current campaign state exactly: stale
    reports from a previous resume are removed, so its listing *is* the
    degradation report.
    """
    quarantine_dir = directory / "quarantine"
    wanted = {
        quarantine_dir / f"cell-{entry.cell:05d}.json": entry
        for entry in quarantined
    }
    if quarantine_dir.is_dir():
        for stale in quarantine_dir.glob("cell-*.json"):
            if stale not in wanted:
                stale.unlink()
    if not wanted:
        return
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    for path, entry in wanted.items():
        atomic_write_text(
            path,
            json.dumps(entry.as_dict(), indent=2, sort_keys=True) + "\n",
        )


def run_campaign(
    spec_path: Union[str, Path],
    directory: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
    fresh: bool = False,
    run_cache_dir: Optional[Union[str, Path]] = None,
    telemetry_dir: Optional[Union[str, Path]] = None,
    profiler: Optional[RunProfiler] = None,
    index_db: Optional[Union[str, Path]] = None,
) -> CampaignOutcome:
    """Run (or resume) the campaign described by ``spec_path``.

    Resume is the default: the journal in ``directory`` is replayed,
    completed cells are served from the run cache (their journaled
    digest is verified; a lost or corrupt cache entry silently re-runs
    the cell), journaled failures stay quarantined, and only the
    remaining cells execute — so a killed campaign continues from where
    it died and its final artefacts are byte-identical to an
    uninterrupted run.  ``fresh=True`` discards the journal and
    quarantine reports first (the content-addressed run cache is always
    safe to keep).

    Returns a :class:`CampaignOutcome`; a quarantined cell never raises
    — it is reported in ``matrix.txt``, ``summary.json``, the HTML
    degradation banner and ``quarantine/``.

    ``index_db`` names an observatory index
    (:class:`~repro.obs.index.ArtifactIndex`) into which the finished
    campaign directory is ingested after the journal closes and the
    summary lands — the ``repro campaign run --index`` hook.  Ingestion
    is idempotent, so resumed campaigns simply advance their row.
    """
    spec = load_campaign_spec(spec_path)
    directory = (
        Path(directory) if directory is not None
        else default_campaign_dir(spec_path)
    )
    directory.mkdir(parents=True, exist_ok=True)
    journal_path = directory / "campaign.jsonl"
    if fresh and journal_path.exists():
        journal_path.unlink()
    cells = build_cells(spec)
    state = replay_journal(journal_path)
    if state.truncated:
        _trim_torn_tail(journal_path)
    digest = spec.digest()
    if state.spec_digest is not None and state.spec_digest != digest:
        raise CampaignError(
            f"journal {journal_path} was written by a different spec "
            f"(digest {state.spec_digest[:12]}..., current "
            f"{digest[:12]}...); pass --fresh to discard it"
        )
    run_cache = RunCache(
        Path(run_cache_dir) if run_cache_dir is not None
        else directory / "runcache"
    )

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    quarantined: Dict[int, QuarantinedCell] = {}
    pending: List[CellSpec] = []
    resumed = 0
    for cell in cells:
        index = cell.spec.index
        done = state.completed.get(index)
        if done is not None:
            key = done.get("key")
            served = run_cache.get(key) if isinstance(key, str) else None
            if served is not None and result_digest(served) == done.get(
                "digest"
            ):
                outcomes[index] = served
                resumed += 1
                continue
            # Journal says done but the cache cannot prove it: re-run.
        failed = state.failed.get(index)
        if failed is not None:
            failure = _failure_from_record(failed)
            outcomes[index] = failure
            quarantined[index] = QuarantinedCell(
                cell=index, cell_id=cell.cell_id, failure=failure
            )
            resumed += 1
            continue
        pending.append(cell.spec)

    cell_ids = {cell.spec.index: cell.cell_id for cell in cells}
    with CampaignJournal(journal_path) as journal:
        if state.records == 0:
            journal.append(
                "campaign_start", format=JOURNAL_FORMAT, name=spec.name,
                spec_digest=digest, total_cells=len(cells),
            )
        else:
            journal.append("campaign_resume", pending=len(pending))
        if pending:
            runner = ParallelRunner(
                max_workers=jobs,
                run_cache=run_cache,
                profiler=profiler,
                telemetry_dir=telemetry_dir,
                observer=_JournalObserver(journal, cell_ids),
            )
            for cell_spec, outcome in zip(pending, runner.run(pending)):
                outcomes[cell_spec.index] = outcome
                if isinstance(outcome, RunFailure):
                    quarantined[cell_spec.index] = QuarantinedCell(
                        cell=cell_spec.index,
                        cell_id=cell_ids[cell_spec.index],
                        failure=outcome,
                    )
        journal.append(
            "campaign_end",
            completed=len(cells) - len(quarantined),
            quarantined=sorted(quarantined),
        )

    matrix = ResultMatrix()
    for cell, outcome in zip(cells, outcomes):
        if isinstance(outcome, RunFailure):
            matrix.add_failure(outcome)
        elif outcome is not None:
            # Relabel with the campaign's axis-aware label; the cached
            # entry itself is never touched.
            matrix.add(replace(outcome, scheme=cell.spec.label))

    quarantine_list = [quarantined[index] for index in sorted(quarantined)]
    _write_quarantine(directory, quarantine_list)
    normalized = _normalized_or_none(matrix)

    matrix_path = directory / "matrix.txt"
    atomic_write_text(
        matrix_path,
        _render_matrix_text(spec, matrix, normalized, quarantine_list),
    )
    summary_path = directory / "summary.json"
    summary = {
        "format": 1,
        "name": spec.name,
        "spec_digest": digest,
        "total_cells": len(cells),
        "completed": len(cells) - len(quarantine_list),
        "quarantined": [entry.as_dict() for entry in quarantine_list],
        "mpki": matrix.metric_table(lambda result: result.mpki),
        "normalized_mpki": normalized,
    }
    if spec.ledger:
        # Per-cell capacity-flow roll-ups; the key appears only for
        # ledgered campaigns, so every existing summary.json (and the
        # resume smoke's byte comparison) keeps its exact bytes.
        summary["ledgers"] = matrix.metric_table(
            lambda result: (
                result.ledger.summary() if result.ledger is not None
                else None
            )
        )
    atomic_write_text(
        summary_path, json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    report_path = directory / "report.html"
    atomic_write_text(
        report_path,
        render_campaign_html(
            name=spec.name,
            total_cells=len(cells),
            mpki=summary["mpki"],
            schemes=list(matrix.schemes),
            normalized=normalized,
            quarantined=[entry.as_dict() for entry in quarantine_list],
        ),
    )
    if index_db is not None:
        # Lazy import: sim imports obs only when the hook is used, and
        # obs.index itself imports sim lazily (no cycle at module load).
        from repro.obs.index import ArtifactIndex

        with ArtifactIndex(index_db) as artifact_index:
            artifact_index.ingest(directory)
    return CampaignOutcome(
        spec=spec,
        directory=directory,
        matrix=matrix,
        total_cells=len(cells),
        executed=len(pending),
        resumed=resumed,
        quarantined=quarantine_list,
        outputs={
            "journal": journal_path,
            "matrix": matrix_path,
            "summary": summary_path,
            "report": report_path,
        },
    )


def campaign_status(directory: Union[str, Path]) -> str:
    """Human-readable journal replay for ``repro campaign status``."""
    directory = Path(directory)
    journal_path = directory / "campaign.jsonl"
    if not journal_path.exists():
        raise CampaignError(f"no campaign journal at {journal_path}")
    state = replay_journal(journal_path)
    name = state.name or directory.name
    done = len(state.completed)
    failed = len(state.failed)
    in_flight = len(state.in_flight)
    lines: List[str] = []
    if state.total_cells is not None:
        pendings = max(0, state.total_cells - done - failed - in_flight)
        lines.append(
            f"campaign {name}: {state.total_cells} cells — {done} done, "
            f"{failed} quarantined, {in_flight} in flight, "
            f"{pendings} pending"
        )
    else:
        lines.append(
            f"campaign {name}: {done} done, {failed} quarantined, "
            f"{in_flight} in flight (no campaign_start record)"
        )
    if state.truncated:
        lines.append(
            "journal tail is torn (crash mid-append) — tolerated; "
            "resume re-runs the affected cell"
        )
    for index in sorted(state.failed):
        record = state.failed[index]
        failure = _failure_from_record(record)
        lines.append(
            f"  quarantined cell {index:05d} {record.get('id', '?')}: "
            f"{failure.error_type}: {failure.message}"
        )
    return "\n".join(lines) + "\n"
