"""Simulation configuration and the scheme factory.

:class:`MachineConfig` collects the Table 1 parameters the timing model
consumes; :func:`make_scheme` builds any of the evaluated LLC schemes
by the names the paper uses, so experiments are driven by declarative
(scheme-name, geometry) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.common.rng import Lfsr
from repro.core.config import StemConfig
from repro.obs.tracer import Tracer
from repro.core.stem_cache import StemCache
from repro.policies.registry import make_policy
from repro.spatial.page_coloring import PageColoringCache
from repro.spatial.sbc import SbcCache
from repro.spatial.sbc_static import StaticSbcCache
from repro.spatial.victim_cache import VictimCache
from repro.spatial.vway import VwayCache
from repro.timing.cpi import PAPER_CPI, CpiModel
from repro.timing.latency import PAPER_LATENCY, LatencyModel

#: The five competing schemes of Figures 7-10, plus the LRU baseline.
PAPER_SCHEMES = ("LRU", "DIP", "PeLIFO", "V-Way", "SBC", "STEM")


@dataclass(frozen=True)
class MachineConfig:
    """Timing-relevant machine parameters (Table 1 + DESIGN.md §7)."""

    latency: LatencyModel = PAPER_LATENCY
    cpi: CpiModel = PAPER_CPI


def _policy_cache(policy_name: str) -> Callable[..., SetAssociativeCache]:
    def build(geometry: CacheGeometry, seed: int = 0xACE1,
              tracer: Optional[Tracer] = None,
              **_: object) -> SetAssociativeCache:
        return SetAssociativeCache(
            geometry, make_policy(policy_name), rng=Lfsr(seed=seed),
            tracer=tracer,
        )

    return build


def _build_vway(geometry: CacheGeometry, seed: int = 0xACE1,
                tracer: Optional[Tracer] = None,
                **kwargs: object) -> VwayCache:
    return VwayCache(geometry, rng=Lfsr(seed=seed), tracer=tracer, **kwargs)


def _build_sbc(geometry: CacheGeometry, seed: int = 0xACE1,
               tracer: Optional[Tracer] = None,
               **kwargs: object) -> SbcCache:
    return SbcCache(geometry, rng=Lfsr(seed=seed), tracer=tracer, **kwargs)


def _build_static_sbc(geometry: CacheGeometry, seed: int = 0xACE1,
                      tracer: Optional[Tracer] = None,
                      **kwargs: object) -> StaticSbcCache:
    return StaticSbcCache(
        geometry, rng=Lfsr(seed=seed), tracer=tracer, **kwargs
    )


def _build_rocs(geometry: CacheGeometry, seed: int = 0xACE1,
                tracer: Optional[Tracer] = None,
                **kwargs: object) -> PageColoringCache:
    # ROCS carries no tracepoints yet; the tracer is accepted for a
    # uniform factory signature and simply never receives events.
    return PageColoringCache(geometry, rng=Lfsr(seed=seed), **kwargs)


def _build_victim(geometry: CacheGeometry, seed: int = 0xACE1,
                  tracer: Optional[Tracer] = None,
                  **kwargs: object) -> VictimCache:
    # Victim buffer carries no tracepoints yet; see _build_rocs.
    return VictimCache(geometry, rng=Lfsr(seed=seed), **kwargs)


def _build_stem(geometry: CacheGeometry, seed: int = 0xACE1,
                config: Optional[StemConfig] = None,
                tracer: Optional[Tracer] = None,
                **_: object) -> StemCache:
    return StemCache(
        geometry, config=config, rng=Lfsr(seed=seed), tracer=tracer
    )


_SCHEME_FACTORIES: Dict[str, Callable] = {
    "lru": _policy_cache("lru"),
    "lip": _policy_cache("lip"),
    "bip": _policy_cache("bip"),
    "dip": _policy_cache("dip"),
    "fifo": _policy_cache("fifo"),
    "random": _policy_cache("random"),
    "nru": _policy_cache("nru"),
    "srrip": _policy_cache("srrip"),
    "drrip": _policy_cache("drrip"),
    "pelifo": _policy_cache("pelifo"),
    "v-way": _build_vway,
    "vway": _build_vway,
    "sbc": _build_sbc,
    "staticsbc": _build_static_sbc,
    "static-sbc": _build_static_sbc,
    "rocs": _build_rocs,
    "victim": _build_victim,
    "stem": _build_stem,
}

#: Canonical display names keyed by lower-case factory name.
_DISPLAY_NAMES = {
    "lru": "LRU", "lip": "LIP", "bip": "BIP", "dip": "DIP",
    "fifo": "FIFO", "random": "Random", "nru": "NRU", "srrip": "SRRIP",
    "drrip": "DRRIP", "pelifo": "PeLIFO", "v-way": "V-Way", "vway": "V-Way",
    "sbc": "SBC", "staticsbc": "StaticSBC", "static-sbc": "StaticSBC",
    "rocs": "ROCS", "victim": "Victim", "stem": "STEM",
}


def available_schemes() -> List[str]:
    """Canonical names of every buildable scheme."""
    return sorted({_DISPLAY_NAMES[key] for key in _SCHEME_FACTORIES})


def registry_scheme_keys() -> List[str]:
    """One factory key per distinct scheme, aliases deduplicated.

    Spelling aliases (``vway``/``v-way``, ``static-sbc``/``staticsbc``)
    map to the same display name; the first registered key wins, in
    registration order — the stable iteration set for anything that
    wants to cover *every* scheme exactly once (e.g. the throughput
    recorder).
    """
    keys: List[str] = []
    seen: set = set()
    for key in _SCHEME_FACTORIES:
        display = _DISPLAY_NAMES[key]
        if display not in seen:
            seen.add(display)
            keys.append(key)
    return keys


def canonical_scheme_name(name: str) -> str:
    """Map any accepted spelling to the display name used in tables."""
    key = name.lower()
    if key not in _DISPLAY_NAMES:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        )
    return _DISPLAY_NAMES[key]


def make_scheme(name: str, geometry: CacheGeometry, seed: int = 0xACE1,
                tracer: Optional[Tracer] = None, **kwargs: object):
    """Instantiate the LLC scheme registered under ``name``.

    ``tracer`` is handed to schemes that carry tracepoints (all of the
    paper's competitors); the build seed is stamped on the returned
    cache as ``cache.seed`` so run manifests can record it.
    """
    factory = _SCHEME_FACTORIES.get(name.lower())
    if factory is None:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        )
    cache = factory(geometry, seed=seed, tracer=tracer, **kwargs)
    cache.seed = seed
    return cache


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time.

    ``paper()`` mirrors the publication's configuration; ``default()``
    is the laptop-scale setting used by the experiment scripts; and
    ``smoke()`` keeps the benchmark suite fast.
    """

    num_sets: int = 256
    associativity: int = 16
    trace_length: int = 400_000
    warmup_fraction: float = 0.25
    machine: MachineConfig = field(default_factory=MachineConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError(
                f"warmup_fraction must lie in [0, 1), got {self.warmup_fraction}"
            )

    def geometry(self, associativity: Optional[int] = None,
                 line_size: int = 64) -> CacheGeometry:
        """The LLC geometry at this scale."""
        return CacheGeometry(
            num_sets=self.num_sets,
            associativity=(
                associativity if associativity is not None
                else self.associativity
            ),
            line_size=line_size,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Table 1's 2 MB / 16-way / 2048-set LLC (slow in pure Python)."""
        return cls(num_sets=2048, associativity=16, trace_length=2_000_000)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """The laptop-scale configuration used by examples/experiments."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Small and fast: for tests and pytest-benchmark targets."""
        return cls(num_sets=64, associativity=16, trace_length=60_000)
