"""Parallel experiment engine: grid cells sharded across processes.

The paper's evaluation is a large (scheme x workload x geometry) grid
whose cells are fully independent — each builds its own cache from its
own seed and consumes an immutable trace.  :class:`ParallelRunner`
exploits that: every cell is described by a picklable :class:`CellSpec`,
executed by the module-level :func:`_execute_cell` (inline, or in a
``ProcessPoolExecutor`` worker), and the results are reassembled **by
cell index** so the output is identical to the serial path no matter
which worker finished first.

Determinism contract
--------------------
* Cell seeds are assigned in the parent before any worker starts: every
  cell receives the same ``seed`` (and, on retries, the same
  ``RetryPolicy`` reseeding schedule ``base_seed + attempt * step``)
  that the serial loop would have used, so per-worker seed derivation
  is a pure function of the cell, not of scheduling.
* Workers never share mutable state — each returns its finished
  :class:`~repro.sim.simulator.RunResult` (or structured
  :class:`~repro.sim.results.RunFailure`), and the parent merges
  results, profiler records, and failure lists in canonical cell order.
* Crash tolerance is preserved: an isolated cell still runs through
  :func:`~repro.resilience.harness.guarded_run` inside the worker, so a
  poisoned cell comes back as a ``RunFailure`` record, not a dead pool.

An optional :class:`~repro.sim.cache.RunCache` short-circuits cells
whose content-addressed key already has a stored result; hits never
reach the pool at all.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError
from repro.obs.fleet import load_fleet, write_status
from repro.obs.manifest import build_manifest
from repro.obs.profile import RunProfiler
from repro.obs.telemetry import (
    CellTelemetry,
    GridTelemetry,
    TelemetrySpec,
)
from repro.resilience.faults import FaultInjector, FaultPlan, InjectingCache
from repro.resilience.harness import RetryPolicy, guarded_run
from repro.sim.config import MachineConfig, make_scheme
from repro.sim.results import RunFailure
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.trace import Trace

#: One cell outcome: a finished run or a structured failure record.
CellOutcome = Union[RunResult, RunFailure]


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one (scheme, trace, geometry) grid cell.

    ``scheme`` is the factory name handed to
    :func:`~repro.sim.config.make_scheme`; ``label`` is the name used in
    failure records (the runner passes e.g. ``"dip@8"`` for sweep
    cells).  ``isolate`` selects between crash-tolerant
    :func:`guarded_run` execution and fail-fast propagation, exactly
    mirroring the serial runner's contract.

    ``fault_plan`` (compact :class:`~repro.resilience.faults.FaultPlan`
    text, e.g. ``"sc_s:2,trace:4"``) wraps the built scheme in an
    :class:`~repro.resilience.faults.InjectingCache` seeded with the
    cell seed, so campaign grids can cross fault plans with every other
    axis; ``None`` (the default) costs nothing.

    ``backend`` picks the execution path (``"auto"``/``"python"``/
    ``"numpy"``, see :mod:`repro.sim.columnar`).  It is deliberately
    *not* part of :func:`cell_cache_key`: the exactness contract makes
    backends interchangeable, so a cached scalar result satisfies a
    numpy request and vice versa.

    ``ledger=True`` attaches the capacity-flow
    :class:`~repro.obs.ledger.LedgerSink` inside the run, so the cell's
    :class:`RunResult` carries a sealed
    :class:`~repro.obs.ledger.RunLedger`.  Unlike ``backend`` it *is*
    part of the cache key (a ledgered result is a strict superset of a
    ledger-less one), using the same only-when-set idiom as
    ``fault_plan`` so every pre-existing key stays valid.
    """

    index: int
    scheme: str
    label: str
    trace: Trace
    geometry: CacheGeometry
    seed: int
    warmup_fraction: float = 0.25
    machine: Optional[MachineConfig] = None
    isolate: bool = True
    retry: Optional[RetryPolicy] = None
    watchdog_seconds: Optional[float] = None
    metrics_window: Optional[int] = None
    fault_plan: Optional[str] = None
    backend: Optional[str] = None
    ledger: bool = False


def _build_cell_cache(spec: CellSpec, seed: int):
    """Build the cell's scheme, wrapping it for fault injection if asked.

    The injector draws its schedule from the same seed as the scheme,
    so a retry-reseeded attempt gets a genuinely different fault
    schedule along with its different LFSR stream — one seed is the
    whole cell's identity.
    """
    cache = make_scheme(spec.scheme, spec.geometry, seed=seed)
    if spec.fault_plan is not None:
        plan = FaultPlan.parse(spec.fault_plan)
        injector = FaultInjector(plan, len(spec.trace), seed=seed)
        cache = InjectingCache(cache, injector)
    return cache


def _execute_cell(
    spec: CellSpec, telemetry_spec: Optional[TelemetrySpec] = None
) -> CellOutcome:
    """Run one cell; module-level so it pickles into pool workers.

    ``telemetry_spec`` is the per-run telemetry channel handed over by
    the parent :class:`ParallelRunner`; combined with the cell index it
    yields the worker-side :class:`CellTelemetry` writer (span ids are
    a pure function of the grid span and the index, so no handshake
    crosses the process boundary).
    """
    telemetry: Optional[CellTelemetry] = None
    if telemetry_spec is not None:
        telemetry = CellTelemetry(
            telemetry_spec,
            index=spec.index,
            label=spec.label,
            workload=spec.trace.name,
        )
    try:
        if not spec.isolate:
            if telemetry is not None:
                telemetry.cell_start(
                    total_accesses=len(spec.trace),
                    seed=spec.seed,
                    watchdog_seconds=spec.watchdog_seconds,
                )
            try:
                cache = _build_cell_cache(spec, spec.seed)
                result = run_trace(
                    cache,
                    spec.trace,
                    warmup_fraction=spec.warmup_fraction,
                    machine=spec.machine,
                    metrics_window=spec.metrics_window,
                    telemetry=telemetry,
                    backend=spec.backend,
                    ledger=spec.ledger,
                )
            except BaseException as exc:
                if telemetry is not None:
                    telemetry.cell_end(
                        "failed", error_type=type(exc).__name__
                    )
                raise
            if telemetry is not None:
                telemetry.cell_end("ok")
            return result
        return guarded_run(
            lambda seed: _build_cell_cache(spec, seed),
            spec.trace,
            scheme=spec.label,
            base_seed=spec.seed,
            retry=spec.retry,
            watchdog_seconds=spec.watchdog_seconds,
            warmup_fraction=spec.warmup_fraction,
            machine=spec.machine,
            metrics_window=spec.metrics_window,
            telemetry=telemetry,
            backend=spec.backend,
            ledger=spec.ledger,
        )
    finally:
        if telemetry is not None:
            telemetry.close()


def cell_cache_key(spec: CellSpec) -> Optional[str]:
    """Content-addressed key of a cell, or None when it has none.

    Builds the scheme (cheap — allocation only, no simulation) and
    reuses the run manifest's deterministic ``hashed_payload`` — scheme
    class + geometry + config + trace metadata + seed + package version
    — then extends it with what the manifest hash deliberately leaves
    out but a cached *result* depends on: the raw trace content digest,
    the warm-up split, and the timing-model parameters.  A cell whose
    scheme cannot even be built (a poisoned factory) has no key; the
    executor then takes the normal (guarded) path.
    """
    try:
        cache = make_scheme(spec.scheme, spec.geometry, seed=spec.seed)
        manifest = build_manifest(cache, spec.trace)
    except Exception:  # noqa: BLE001 — uncacheable, not fatal
        return None
    machine = spec.machine if spec.machine is not None else MachineConfig()
    payload: Dict[str, Any] = {
        "cell": manifest.hashed_payload(),
        "trace_digest": spec.trace.content_digest(),
        "warmup_fraction": spec.warmup_fraction,
        "machine": asdict(machine),
        # Windowed runs carry a series the unwindowed result lacks, so
        # the window length is part of the cell's identity.
        "metrics_window": spec.metrics_window,
    }
    if spec.fault_plan is not None:
        # Only faulted cells carry the field, so every pre-existing
        # key (and cached entry) stays valid.
        payload["fault_plan"] = spec.fault_plan
    if spec.ledger:
        # Ledgered results carry a payload ledger-less ones lack, so
        # they must not satisfy (or be satisfied by) plain lookups.
        payload["ledger"] = True
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CellObserver:
    """No-op base for per-cell lifecycle callbacks.

    The campaign layer journals cell execution through these hooks
    (DESIGN.md §12); subclass and override what you need.  Callbacks
    run in the **parent** process — :meth:`cell_started` when the cell
    is handed to a worker (or executed inline), :meth:`cell_finished`
    when its outcome lands, in completion order — so an observer may
    keep open file handles without worrying about pickling.  Observers
    must only *observe*: outcomes are byte-identical with or without
    one.
    """

    def cell_started(self, spec: CellSpec) -> None:
        """``spec`` is about to execute (inline) or was submitted."""

    def cell_finished(
        self,
        spec: CellSpec,
        outcome: CellOutcome,
        cached: bool,
        key: Optional[str],
    ) -> None:
        """``spec`` produced ``outcome``.

        ``cached`` marks a run-cache hit (the cell never executed);
        ``key`` is the cell's content-addressed cache key, or None when
        it has none.
        """


class ParallelRunner:
    """Shards :class:`CellSpec` cells across a process pool.

    ``max_workers=None`` (or 1) runs every cell inline in submission
    order — the serial path and the degenerate parallel path are the
    same code, which is what makes the equivalence guarantee cheap to
    maintain.  With more workers, cells run under a
    ``ProcessPoolExecutor`` and results are stitched back by index.

    ``telemetry_dir`` arms the live fleet-telemetry channel
    (DESIGN.md §11): the runner opens a :class:`GridTelemetry` over the
    directory, plans every cell, ships a :class:`TelemetrySpec` into
    each worker (whose :class:`CellTelemetry` writes spans, heartbeats
    and resource samples), records completions, and refreshes the
    machine-readable ``status.json`` at most every ``status_interval``
    seconds — the surface ``repro top`` renders.  Telemetry never
    influences outcomes: matrices are byte-identical with it on or off,
    serial or parallel.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        run_cache: Optional[Any] = None,
        profiler: Optional[RunProfiler] = None,
        telemetry_dir: Optional[Any] = None,
        status_interval: float = 1.0,
        observer: Optional[CellObserver] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self.run_cache = run_cache
        self.profiler = profiler
        self.telemetry_dir = telemetry_dir
        self.status_interval = status_interval
        self.observer = observer

    def run(self, specs: Sequence[CellSpec]) -> List[CellOutcome]:
        """Execute every cell; returns outcomes in ``specs`` order."""
        if self.telemetry_dir is None:
            return self._run(specs, None)
        # Telemetry armed: the grid span, per-cell plans, completions
        # and periodic status.json snapshots flow through the run-dir
        # channel; the simulation outcomes are byte-identical either
        # way (the writers only observe).
        with GridTelemetry(self.telemetry_dir) as grid:
            grid.grid_start(len(specs))
            for spec in specs:
                grid.cell_plan(
                    index=spec.index,
                    label=spec.label,
                    workload=spec.trace.name,
                    total_accesses=len(spec.trace),
                    watchdog_seconds=spec.watchdog_seconds,
                )
            try:
                return self._run(specs, grid)
            finally:
                grid.grid_end()
                self._write_status(grid)

    def _write_status(self, grid: GridTelemetry) -> None:
        write_status(grid.run_dir, load_fleet(grid.run_dir))

    def _run(
        self, specs: Sequence[CellSpec], grid: Optional[GridTelemetry]
    ) -> List[CellOutcome]:
        results: List[Optional[CellOutcome]] = [None] * len(specs)
        pending: List[tuple] = []
        run_cache = self.run_cache
        observer = self.observer
        hits_before = run_cache.hits if run_cache is not None else 0
        misses_before = run_cache.misses if run_cache is not None else 0
        corrupt_before = (
            getattr(run_cache, "corrupt_entries", 0)
            if run_cache is not None else 0
        )
        telemetry_spec = grid.spec if grid is not None else None
        last_status = perf_counter()
        for position, spec in enumerate(specs):
            key = None
            if run_cache is not None:
                key = cell_cache_key(spec)
                cached = run_cache.get(key) if key is not None else None
                if cached is not None:
                    results[position] = cached
                    if grid is not None:
                        grid.cell_cached(spec.index)
                    if observer is not None:
                        observer.cell_finished(spec, cached, True, key)
                    continue
            pending.append((position, spec, key))

        def note_done(spec: CellSpec, outcome: CellOutcome) -> None:
            nonlocal last_status
            if grid is None:
                return
            grid.cell_done(
                spec.index,
                "failed" if isinstance(outcome, RunFailure) else "ok",
            )
            now = perf_counter()
            if now - last_status >= self.status_interval:
                last_status = now
                self._write_status(grid)

        def note_finished(
            spec: CellSpec, outcome: CellOutcome, key: Optional[str]
        ) -> None:
            if observer is not None:
                observer.cell_finished(spec, outcome, False, key)
            note_done(spec, outcome)

        workers = self.max_workers
        if workers is None or workers <= 1 or len(pending) <= 1:
            for position, spec, key in pending:
                if observer is not None:
                    observer.cell_started(spec)
                outcome = _execute_cell(spec, telemetry_spec)
                results[position] = self._store(spec, key, outcome)
                note_finished(spec, outcome, key)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for position, spec, key in pending:
                    if observer is not None:
                        observer.cell_started(spec)
                    future = pool.submit(_execute_cell, spec, telemetry_spec)
                    futures[future] = (position, spec, key)
                for future in as_completed(futures):
                    position, spec, key = futures[future]
                    outcome = future.result()
                    results[position] = self._store(spec, key, outcome)
                    note_finished(spec, outcome, key)
        if self.profiler is not None:
            # Profiler records are merged here, in canonical cell order,
            # from the timing payloads the workers returned — never by
            # mutating the profiler across processes.
            for outcome in results:
                if isinstance(outcome, RunResult):
                    self.profiler.add(outcome)
            if run_cache is not None:
                self.profiler.note_run_cache(
                    run_cache.hits - hits_before,
                    run_cache.misses - misses_before,
                    getattr(run_cache, "corrupt_entries", 0)
                    - corrupt_before,
                )
        return list(results)

    def _store(
        self, spec: CellSpec, key: Optional[str], outcome: CellOutcome
    ) -> CellOutcome:
        """Persist a cacheable outcome; failures are never cached."""
        if (
            self.run_cache is not None
            and key is not None
            and isinstance(outcome, RunResult)
            and outcome.manifest is not None
            and outcome.manifest.seed == spec.seed
        ):
            # The seed guard skips retry-reseeded successes: their state
            # diverges from what the key (built from spec.seed) claims.
            self.run_cache.put(key, outcome)
        return outcome
