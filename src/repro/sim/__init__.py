"""Simulation driver: scheme factory, trace runner, sweeps, tables."""

from repro.sim.config import (
    PAPER_SCHEMES,
    ExperimentScale,
    MachineConfig,
    available_schemes,
    canonical_scheme_name,
    make_scheme,
)
from repro.sim.cache import RunCache
from repro.sim.campaign import (
    CampaignOutcome,
    CampaignSpec,
    build_cells,
    campaign_status,
    load_campaign_spec,
    run_campaign,
)
from repro.sim.parallel import (
    CellObserver,
    CellSpec,
    ParallelRunner,
    cell_cache_key,
)
from repro.sim.replication import (
    ReplicationSummary,
    compare_with_confidence,
    replicate,
)
from repro.sim.results import (
    ResultMatrix,
    RunFailure,
    format_series,
    format_table,
)
from repro.sim.runner import associativity_sweep, run_benchmarks, run_matrix
from repro.sim.simulator import RunResult, run_trace
from repro.sim.timeline import Timeline, run_timeline

__all__ = [
    "CampaignOutcome",
    "CampaignSpec",
    "CellObserver",
    "CellSpec",
    "ExperimentScale",
    "MachineConfig",
    "PAPER_SCHEMES",
    "ParallelRunner",
    "ReplicationSummary",
    "ResultMatrix",
    "RunCache",
    "RunFailure",
    "RunResult",
    "Timeline",
    "associativity_sweep",
    "build_cells",
    "campaign_status",
    "cell_cache_key",
    "load_campaign_spec",
    "run_campaign",
    "available_schemes",
    "canonical_scheme_name",
    "compare_with_confidence",
    "format_series",
    "format_table",
    "make_scheme",
    "replicate",
    "run_benchmarks",
    "run_matrix",
    "run_timeline",
    "run_trace",
]
