"""Columnar numpy simulation backend with a scalar-oracle exactness contract.

The scalar simulator replays a trace one access at a time.  This module
replays the *same* trace as structure-of-arrays numpy kernels and is
required to be **bit-for-bit identical** to the scalar path: same
:class:`~repro.common.stats.CacheStats`, same run-manifest hash, same
windowed metrics series, same final cache state (up to physical way
labels, which no observable surface exposes), same RNG stream.  The
scalar path stays the oracle; the columnar path is an optimisation that
must never be distinguishable through results (DESIGN.md §13).

Only schemes with a proven-exact kernel run columnar.  Today that is
exactly one: a pure-LRU :class:`~repro.cache.basecache.SetAssociativeCache`
with no tracer, no eviction listener and no fault injector.  LRU is
special because its state has *bounded history* — the resident blocks
of a set are its ``A`` most-recently-touched distinct tags — which lets
time itself be parallelised (see :func:`_build_plan`).  Every other
scheme (BIP/DIP/DRRIP/Random draw from one global RNG whose draw order
serialises the stream; FIFO/LIP residency depends on unbounded
miss/insertion history; STEM adds cross-set spills) falls back to the
scalar path transparently — ``backend="numpy"`` is a request, not a
demand.

The kernel: each set's access stream is cut into segments of
:data:`_SEGMENT` accesses.  A segment simulated from an *empty* set is
exact provided its lookback window ``[l, a)`` contains at least ``A``
distinct tags (then the sim's resident set at ``a`` provably equals the
real one: the ``A`` most recent distinct tags, with exact last-touch
keys) or ``l == 0``.  Segments whose window shows ``<= A`` distinct
tags and no tag older than the window are *static all-hit lanes*:
every access provably hits and evicts nothing, so they need no
simulation at all.  The remaining lanes — thousands of them — run in
lockstep rounds of contiguous array ops.  Dirty bits for blocks filled
before a lane's window are resolved afterwards from static
last-write/last-miss occurrence tables (the epilogue).
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import List, Optional

from repro.cache.basecache import SetAssociativeCache
from repro.common.errors import ConfigError, WatchdogTimeout
from repro.policies.lru import LruPolicy

try:  # numpy is an optional accelerator (the `fast` extra), never required
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the CI no-numpy job
    np = None

#: Backend names accepted by ``run_trace(backend=...)`` and the CLI.
BACKEND_AUTO = "auto"
BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"
BACKENDS = (BACKEND_AUTO, BACKEND_PYTHON, BACKEND_NUMPY)

#: Segment length in set-local accesses.  64 measured best across
#: 64..2048-set geometries: long enough to amortise per-round overhead,
#: short enough that lookback extension stays rare.
_SEGMENT = 64

#: Initial lookback window; extended x4 per ladder rung when it shows
#: fewer than ``A`` distinct tags.
_LOOKBACK = 64

#: Rounds between cooperative wall-clock/heartbeat checks in the replay
#: loop (a round touches thousands of lanes, so this is coarse).
_DEADLINE_ROUND_STRIDE = 64

#: Scalar-set feed accesses between watchdog checks (mirrors the
#: scalar driver's stride).
_SCALAR_STRIDE = 8192

#: Element-count ceilings for the two dense allocations whose size is
#: data-dependent: the round-major replay matrix (R x L) and the
#: tag-id -> way lookup (L x D).  A pathological trace that blows
#: either bound falls back to the scalar path instead of thrashing.
_MAX_DENSE_ELEMENTS = 1 << 26


def numpy_available() -> bool:
    """Whether the numpy backend can run at all (import succeeded)."""
    return np is not None


_warned_missing_numpy = False


def _warn_missing_numpy() -> None:
    """One UserWarning per process when numpy would have been used."""
    global _warned_missing_numpy
    if _warned_missing_numpy:
        return
    _warned_missing_numpy = True
    warnings.warn(
        "numpy is not installed; the columnar backend is unavailable and "
        "runs fall back to the pure-python simulator (results are "
        "identical, only slower). Install the 'fast' extra to enable it.",
        UserWarning,
        stacklevel=3,
    )


def kernel_eligible(cache) -> bool:
    """Whether ``cache`` has an exact columnar kernel.

    Deliberately strict: exact types only (a subclass may override
    behaviour the kernel does not model), no instance-level override of
    the access methods (a spy or wrapper expects to see every access),
    no tracer (per-event streams need per-access execution), no
    eviction listener, no prior accesses (the kernel derives state from
    the trace alone, so the cache must start empty), and an
    associativity the int8 way-lookup can index.
    """
    return (
        type(cache) is SetAssociativeCache
        and type(cache.policy) is LruPolicy
        and "access" not in cache.__dict__
        and "access_batch" not in cache.__dict__
        and cache.eviction_listener is None
        and not cache.tracer.enabled
        and 1 <= cache.geometry.associativity <= 127
        and cache._access_base + cache.stats.accesses == 0
    )


def resolve_backend(backend: Optional[str], cache) -> str:
    """Map a requested backend to the one that will actually run.

    ``None``/``"auto"`` selects numpy exactly when it is importable and
    the cache has an exact kernel.  An explicit ``"numpy"`` request on
    an ineligible scheme falls back to ``"python"`` silently — the
    contract makes the two indistinguishable — while a missing numpy
    installation warns once per process (the user asked for speed they
    cannot get).  Unknown names raise :class:`ConfigError`.
    """
    if backend is None:
        backend = BACKEND_AUTO
    if backend not in BACKENDS:
        raise ConfigError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == BACKEND_PYTHON:
        return BACKEND_PYTHON
    eligible = kernel_eligible(cache)
    if not numpy_available():
        if eligible or backend == BACKEND_NUMPY:
            _warn_missing_numpy()
        return BACKEND_PYTHON
    return BACKEND_NUMPY if eligible else BACKEND_PYTHON


# ----------------------------------------------------------------------
# Plan: everything derivable from (trace, geometry, writes) alone
# ----------------------------------------------------------------------


def _build_plan(s, t, w, num_sets: int, assoc: int):
    """Static derivation of the whole-trace replay layout.

    Pure function of the access stream — no simulation happens here —
    so the result is cached on the trace exactly like
    ``precompute_geometry`` and amortises across runs, warm-up splits
    and schemes sharing a geometry.  Returns ``None`` when a guard
    trips (composite sort keys would overflow int64, or a dense array
    would exceed :data:`_MAX_DENSE_ELEMENTS`); the caller then uses the
    scalar path.
    """
    n = len(s)
    A = assoc
    seg = _SEGMENT
    look = _LOOKBACK
    # Set-local positions via one stable argsort by set.
    sorder = np.argsort(s, kind="stable")
    ss = s[sorder]
    gs = np.ones(n, dtype=bool)
    gs[1:] = ss[1:] != ss[:-1]
    sstart = np.maximum.accumulate(np.where(gs, np.arange(n), -1))
    p = np.empty(n, dtype=np.int64)
    p[sorder] = np.arange(n) - sstart
    set_counts = np.bincount(s, minlength=num_sets)
    set_offsets = np.concatenate(([0], np.cumsum(set_counts))).astype(np.int64)
    # One composite sort by (set, tag, pos): rows group by (set, tag)
    # pair, ordered by position within each group — the occurrence
    # table that powers lookback checks, the write-back epilogue and
    # final-state reconstruction.
    K2 = int(n) + 1
    tmax = int(t.max()) + 1
    if num_sets * tmax * K2 + n >= (1 << 62):
        return None
    ckey = (s.astype(np.int64) * tmax + t.astype(np.int64)) * K2 + p
    porder = np.argsort(ckey, kind="stable")
    occ_key = ckey[porder]
    occ_p = p[porder]
    pgs = np.ones(n, dtype=bool)
    pgs[1:] = occ_key[1:] // K2 != occ_key[:-1] // K2
    grp_num = np.cumsum(pgs, dtype=np.int64) - 1
    grp_base = grp_num * np.int64(2 * K2)
    # Per-set dense tag ids (0..D-1 within each set) for the int8
    # way-of lookup.
    pset = s[porder]
    new_set = np.ones(n, dtype=bool)
    new_set[1:] = pset[1:] != pset[:-1]
    set_g0 = np.maximum.accumulate(np.where(new_set, grp_num, -1))
    tagid = np.empty(n, dtype=np.int64)
    tagid[porder] = grp_num - set_g0
    D = int(tagid.max()) + 1
    # Previous occurrence of the same (set, tag), as a set-local
    # position (-1 = first ever).
    prev_local = np.full(n, -1, dtype=np.int64)
    idx_same = np.flatnonzero(~pgs)
    prev_local[porder[idx_same]] = occ_p[idx_same - 1]
    # Static group tables: raw tag, first-group-of-set, last occurrence.
    first_rows = np.flatnonzero(pgs)
    tag_of_group = t[porder[first_rows]]
    group_last_row = np.concatenate((first_rows[1:] - 1, [n - 1]))
    last_occ_of_group = occ_p[group_last_row]
    set_first_group = np.full(num_sets, -1, dtype=np.int64)
    srows = np.flatnonzero(new_set)
    set_first_group[pset[srows]] = grp_num[srows]
    # Last write at-or-before each occurrence row (static cummax per
    # group via the grp_base offset trick).
    if w is not None:
        wvals = np.where(w[porder], occ_p, np.int64(-1)) + grp_base
        last_write_at = np.maximum.accumulate(wvals) - grp_base
    else:
        last_write_at = None
    # Cold (first-ever) accesses per set, in ascending global order —
    # per-set fill levels at any boundary T are min(A, colds before T),
    # which is what the occupancy gauges sample.
    cold_gpos = np.flatnonzero(prev_local < 0)
    cold_set = s[cold_gpos]
    # --- lane ladder ------------------------------------------------
    nseg_per_set = (set_counts + seg - 1) // seg
    Lall = int(nseg_per_set.sum())
    lane_set = np.repeat(np.arange(num_sets), nseg_per_set)
    seg_idx = np.arange(Lall) - np.repeat(
        np.concatenate(([0], np.cumsum(nseg_per_set[:-1]))), nseg_per_set)
    lane_a = seg_idx * seg
    lane_b = np.minimum(lane_a + seg, set_counts[lane_set])
    lane_l = np.maximum(0, lane_a - look)
    prev_slo = prev_local[sorder]
    base = set_offsets[lane_set]

    def lane_checks(idx):
        """(distinct in [l,a), distinct in [l,b), pre-window refs in
        [a,b)) for every lane in ``idx``, in one expansion pass."""
        lens = (lane_b - lane_l)[idx]
        tot = int(lens.sum())
        stl = np.repeat(np.arange(len(idx)), lens)
        kk = np.arange(tot) - np.repeat(
            np.concatenate(([0], np.cumsum(lens[:-1]))), lens)
        pos = lane_l[idx][stl] + kk
        pv = prev_slo[base[idx][stl] + pos]
        lref = lane_l[idx][stl]
        firsts = pv < lref
        in_look = pos < lane_a[idx][stl]
        d_look = np.bincount(stl, weights=firsts & in_look, minlength=len(idx))
        d_all = np.bincount(stl, weights=firsts, minlength=len(idx))
        viol = np.bincount(stl, weights=(~in_look) & (pv < lref),
                           minlength=len(idx))
        return d_look, d_all, viol

    # 0 pending -> 1 kernel lane -> 2 static all-hit lane -> 3 scalar.
    status = np.zeros(Lall, dtype=np.int8)
    status[lane_l == 0] = 1
    scalar_set = np.zeros(num_sets, dtype=bool)
    for rung in range(3):
        pend = np.flatnonzero(status == 0)
        if not len(pend):
            break
        d_look, d_all, viol = lane_checks(pend)
        ok_kernel = d_look >= A
        ok_static = (~ok_kernel) & (d_all <= A) & (viol == 0)
        status[pend[ok_kernel]] = 1
        status[pend[ok_static]] = 2
        rest = pend[~ok_kernel & ~ok_static]
        if rung < 2:
            lane_l[rest] = np.maximum(
                0, lane_a[rest] - (lane_a[rest] - lane_l[rest]) * 4)
            status[rest[lane_l[rest] == 0]] = 1
        else:
            status[rest] = 3
            scalar_set[lane_set[rest]] = True
    # A scalar set is handled wholesale by the real cache, so its other
    # lanes are dropped regardless of their own status.
    kern = (status == 1) & ~scalar_set[lane_set]
    stat = (status == 2) & ~scalar_set[lane_set]
    sidx = np.flatnonzero(stat)
    if len(sidx):
        lens = (lane_b - lane_a)[sidx]
        stl = np.repeat(sidx, lens)
        kk = np.arange(int(lens.sum())) - np.repeat(
            np.concatenate(([0], np.cumsum(lens[:-1]))), lens)
        static_g = sorder[base[stl] + lane_a[stl] + kk]
    else:
        static_g = np.empty(0, dtype=np.int64)
    kidx = np.flatnonzero(kern)
    lane_set = lane_set[kidx]
    lane_l = lane_l[kidx]
    lane_a = lane_a[kidx]
    lane_b = lane_b[kidx]
    lengths = lane_b - lane_l
    # Longest lanes first: searchsorted over the descending lengths
    # gives the active-lane count per round, so the round loop always
    # works on a contiguous prefix.
    lorder = np.argsort(-lengths, kind="stable")
    lane_set = lane_set[lorder]
    lane_l = lane_l[lorder]
    lane_a = lane_a[lorder]
    lane_b = lane_b[lorder]
    lengths = lengths[lorder]
    L = len(lane_set)
    R = int(lengths.max()) if L else 0
    if L and (R * L > _MAX_DENSE_ELEMENTS or L * D > _MAX_DENSE_ELEMENTS):
        return None
    seg0 = (lane_a - lane_l).astype(np.int64)
    if L:
        tot = int(lengths.sum())
        stl = np.repeat(np.arange(L), lengths)
        kk = np.arange(tot) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths)
        pos = lane_l[stl] + kk
        g = sorder[set_offsets[lane_set[stl]] + pos]
        flatpos = kk * L + stl
        rm_tid = np.zeros(R * L, dtype=np.int32)
        rm_key = np.zeros(R * L, dtype=np.int32)
        rm_tid[flatpos] = tagid[g]
        rm_key[flatpos] = p[g]
        if w is not None:
            rm_w = np.zeros(R * L, dtype=bool)
            rm_w[flatpos] = w[g]
            rm_w = rm_w.reshape(R, L)
        else:
            rm_w = None
        auth = kk >= seg0[stl]
        auth_rm = flatpos[auth]
        auth_g = g[auth]
        g2rm = np.full(n, -1, dtype=np.int64)
        g2rm[auth_g] = auth_rm
        occ_rm = g2rm[porder]
        active_at = np.searchsorted(-lengths, -np.arange(1, R + 1),
                                    side="right")
        seg0_pos = rm_key.reshape(R, L)[
            np.minimum(seg0, R - 1), np.arange(L)].astype(np.int32)
        rm_tid = rm_tid.reshape(R, L)
        rm_key = rm_key.reshape(R, L)
    else:
        rm_tid = rm_key = rm_w = None
        auth_rm = auth_g = np.empty(0, dtype=np.int64)
        occ_rm = np.full(n, -1, dtype=np.int64)
        active_at = np.empty(0, dtype=np.int64)
        seg0_pos = np.empty(0, dtype=np.int32)
    # Final-state source per set: the kernel lane with the largest
    # segment start (trailing static lanes provably leave residency,
    # ways, keys and fill counts unchanged).
    sync_lane = np.full(num_sets, -1, dtype=np.int64)
    if L:
        lex = np.lexsort((lane_a, lane_set))
        last_of_run = np.ones(L, dtype=bool)
        last_of_run[:-1] = lane_set[lex][1:] != lane_set[lex][:-1]
        rows = lex[last_of_run]
        sync_lane[lane_set[rows]] = rows
    scalar_sets = np.flatnonzero(scalar_set)
    scalar_g = (
        np.sort(np.concatenate(
            [sorder[set_offsets[si]:set_offsets[si] + set_counts[si]]
             for si in scalar_sets]))
        if len(scalar_sets) else np.empty(0, dtype=np.int64)
    )
    # Membership prefix over scalar-handled accesses, for O(1) span
    # accounting of how many accesses the kernel covers.
    scalar_mark = np.zeros(n, dtype=np.int64)
    if len(scalar_g):
        scalar_mark[scalar_g] = 1
    scalar_cum = np.concatenate(([0], np.cumsum(scalar_mark)))
    return {
        "n": n, "A": A, "D": D, "L": L, "R": R,
        "num_sets": num_sets,
        "sorder": sorder, "set_counts": set_counts,
        "set_offsets": set_offsets,
        "porder": porder, "occ_key": occ_key, "occ_p": occ_p,
        "grp_base": grp_base, "K2": np.int64(K2), "tmax": np.int64(tmax),
        "tag_of_group": tag_of_group,
        "group_last_row": group_last_row,
        "last_occ_of_group": last_occ_of_group,
        "set_first_group": set_first_group,
        "last_write_at": last_write_at,
        "cold_gpos": cold_gpos, "cold_set": cold_set,
        "lane_set": lane_set.astype(np.int64), "seg0": seg0,
        "seg0_pos": seg0_pos,
        "rm_tid": rm_tid, "rm_key": rm_key, "rm_w": rm_w,
        "active_at": active_at,
        "auth_rm": auth_rm, "auth_g": auth_g, "occ_rm": occ_rm,
        "static_g": static_g,
        "sync_lane": sync_lane,
        "scalar_sets": scalar_sets, "scalar_g": scalar_g,
        "scalar_cum": scalar_cum,
        "have_writes": w is not None,
    }


def _plan_for(cache, trace, writes):
    """Fetch or build the trace's columnar plan for this geometry.

    Cached on the trace (like ``precompute_geometry``'s arrays, and
    likewise dropped from pickles) keyed by the address split, the
    associativity and whether write flags participate.  ``False`` is
    cached for guard-tripped builds so they are not retried per run.
    """
    mapper = cache.mapper
    key = (
        mapper.offset_bits, mapper.index_bits,
        cache.geometry.associativity, writes is not None,
    )
    plans = trace._columnar_plans
    plan = plans.get(key)
    if plan is None:
        set_indices, tags = trace.precompute_geometry(mapper)
        s = np.asarray(set_indices, dtype=np.int64)
        t = np.asarray(tags, dtype=np.int64)
        w = np.asarray(writes, dtype=bool) if writes is not None else None
        plan = _build_plan(
            s, t, w, cache.geometry.num_sets, cache.geometry.associativity
        )
        plans[key] = plan if plan is not None else False
    return plan if plan is not False else None


# ----------------------------------------------------------------------
# Replay: the lockstep round loop (the only per-run simulation cost)
# ----------------------------------------------------------------------


class _GaugeSource:
    """Stand-in the metrics registry samples instead of the cache.

    Carries the *real* ``cache.stats`` (the engine has already flushed
    exact counters for the boundary) plus gauge/per-set views computed
    from the static cold-access table, so ``MetricsRegistry.sample``
    runs its own unmodified code and the resulting series is
    byte-identical to the scalar path's.
    """

    def __init__(self, stats, gauges: dict, per_set: dict) -> None:
        self.stats = stats
        self._gauges = gauges
        self._per_set = per_set

    def metrics_gauges(self) -> dict:
        return self._gauges

    def metrics_per_set(self) -> dict:
        return self._per_set


class ColumnarEngine:
    """One run's columnar executor: replay once, attribute per span.

    Drives the whole trace through the kernel on the first span, then
    serves every span ``[start, stop)`` from per-access outcome prefix
    sums — warm-up/measured splits and metrics windows all reduce to
    two subtractions.  Accesses belonging to scalar-fallback sets (sets
    whose lanes failed every ladder rung; none on the benchmark
    workloads) are fed through the real ``cache.access`` in stream
    order, so their state and statistics are scalar by construction.
    At the final span boundary the cache's dictionaries, policy
    recency order, dirty bits and free lists are synchronised to the
    exact end-of-trace state.
    """

    def __init__(self, cache, trace, writes, plan) -> None:
        self.cache = cache
        self.plan = plan
        self.trace_name = trace.name
        self.addresses = trace.addresses
        self.writes = writes
        self.n = plan["n"]
        self._replayed = False
        self._synced = False
        self._hit_cum = None
        self._ev_cum = None
        self._wb_cum = None
        self._hit_rm = None
        self._state = None
        # Incremental occupancy cursor over the static cold table.
        self._filled = np.zeros(plan["num_sets"], dtype=np.int64)
        self._cold_ptr = 0

    # -- replay --------------------------------------------------------

    def _replay(self, deadline_at, beat) -> None:
        plan = self.plan
        L, R, D, A = plan["L"], plan["R"], plan["D"], plan["A"]
        have_writes = plan["have_writes"]
        evb = [[] for _ in range(6)]
        if L:
            rm_tid, rm_key, rm_w = plan["rm_tid"], plan["rm_key"], plan["rm_w"]
            active_at, seg0 = plan["active_at"], plan["seg0"]
            lane_set, seg0_pos = plan["lane_set"], plan["seg0_pos"]
            way_of = np.full(L * D, -1, dtype=np.int8)
            tid_state = np.zeros(L * A, dtype=np.int32)
            key_state = np.full((L, A), np.int32(-2**31), dtype=np.int32)
            fp_state = np.full(L * A, -1, dtype=np.int32)
            dirty = np.zeros(L * A, dtype=bool) if have_writes else None
            fill_count = np.zeros(L, dtype=np.int32)
            hit_rm = np.zeros((R, L), dtype=bool)
            arD = np.arange(L, dtype=np.int64) * D
            flat_key = key_state.ravel()
            for r in range(R):
                if r % _DEADLINE_ROUND_STRIDE == 0 and r:
                    position = int(self.n * r / R)
                    if beat is not None:
                        beat(position)
                    if deadline_at is not None and perf_counter() > deadline_at:
                        raise WatchdogTimeout(
                            f"trace {self.trace_name!r}: run exceeded its "
                            f"wall-clock deadline after {position} accesses"
                        )
                La = active_at[r]
                tids_r = rm_tid[r, :La]
                keys_r = rm_key[r, :La]
                way = way_of[arD[:La] + tids_r].astype(np.int64)
                hit = way >= 0
                hidx = np.flatnonzero(hit)
                hslot = hidx * A + way[hidx]
                flat_key[hslot] = keys_r[hidx]
                if have_writes:
                    dirty[hslot[rm_w[r, hidx]]] = True
                midx = np.flatnonzero(~hit)
                if len(midx):
                    fc = fill_count[midx]
                    wy = fc.astype(np.int64)
                    full = fc >= A
                    fidx = midx[full]
                    if len(fidx):
                        vic = key_state[:La].argmin(1)[fidx]
                        wy[full] = vic
                        vslot = fidx * A + vic
                        way_of[fidx * D + tid_state[vslot]] = -1
                        fa = np.flatnonzero(r >= seg0[fidx])
                        if len(fa):
                            vs = vslot[fa]
                            evb[0].append(lane_set[fidx[fa]])
                            evb[1].append(keys_r[fidx[fa]].astype(np.int64))
                            evb[2].append(tid_state[vs].astype(np.int64))
                            evb[3].append(dirty[vs] if have_writes
                                          else np.zeros(len(vs), dtype=bool))
                            evb[4].append(fp_state[vs].astype(np.int64))
                            evb[5].append(seg0_pos[fidx[fa]].astype(np.int64))
                    mslot = midx * A + wy
                    tid_state[mslot] = tids_r[midx]
                    flat_key[mslot] = keys_r[midx]
                    fp_state[mslot] = keys_r[midx]
                    way_of[midx * D + tids_r[midx]] = wy.astype(np.int8)
                    if have_writes:
                        dirty[mslot] = rm_w[r, midx]
                    fill_count[midx] = np.minimum(fc + 1, A)
                hit_rm[r, :La] = hit
            self._hit_rm = hit_rm
            self._state = (tid_state, fill_count)
        ev = tuple(
            np.concatenate(buf) if buf else np.empty(0, dtype=np.int64)
            for buf in evb
        )
        self._finalize(ev)
        self._replayed = True

    def _finalize(self, ev) -> None:
        """Per-access outcome arrays + epilogue write-back resolution."""
        plan = self.plan
        n = self.n
        hit_g = np.zeros(n, dtype=bool)
        if self._hit_rm is not None:
            hit_g[plan["auth_g"]] = self._hit_rm.ravel()[plan["auth_rm"]]
        hit_g[plan["static_g"]] = True
        ev_set, ev_pos, ev_tid, ev_dirty, ev_fpos, ev_seg0p = ev
        wb = ev_dirty.astype(bool)
        last_miss_at = None
        if plan["have_writes"]:
            # Last miss at-or-before each occurrence row.  Misses of
            # scalar-set rows are wrong here (their hits are not in
            # hit_g), but no scalar-set group is ever queried.
            occ_hit = hit_g[plan["porder"]]
            vals = (np.where(~occ_hit, plan["occ_p"], np.int64(-1))
                    + plan["grp_base"])
            last_miss_at = np.maximum.accumulate(vals) - plan["grp_base"]
            if len(ev_tid):
                # Victims filled during the lookback prefix carry the
                # lane's dirty-from-empty guess; replace it with the
                # exact static answer: was the victim written at or
                # after its true (whole-history) fill?
                wb = wb.copy()
                sub = np.flatnonzero(ev_fpos < ev_seg0p)
                if len(sub):
                    tags = plan["tag_of_group"][
                        plan["set_first_group"][ev_set[sub]] + ev_tid[sub]]
                    q = ((ev_set[sub] * plan["tmax"] + tags) * plan["K2"]
                         + ev_pos[sub])
                    idx = np.searchsorted(plan["occ_key"], q, side="left") - 1
                    wb[sub] = (plan["last_write_at"][idx]
                               >= last_miss_at[idx])
        self._last_miss_at = last_miss_at
        # Eviction/write-back flags at the global position of the
        # evicting access, then prefix sums for O(1) span deltas.
        ev_flag = np.zeros(n, dtype=np.int64)
        wb_flag = np.zeros(n, dtype=np.int64)
        if len(ev_tid):
            ev_g = plan["sorder"][plan["set_offsets"][ev_set] + ev_pos]
            ev_flag[ev_g] = 1
            wb_flag[ev_g] = wb.astype(np.int64)
        self._hit_cum = np.concatenate(([0], np.cumsum(hit_g)))
        self._ev_cum = np.concatenate(([0], np.cumsum(ev_flag)))
        self._wb_cum = np.concatenate(([0], np.cumsum(wb_flag)))
        self._hit_g = hit_g

    # -- span execution ------------------------------------------------

    def span(self, start: int, stop: int, deadline_at, beat) -> None:
        """Account accesses ``[start, stop)`` onto the cache's stats."""
        if not self._replayed:
            self._replay(deadline_at, beat)
        if start >= stop:
            return
        plan = self.plan
        if len(plan["scalar_g"]):
            self._feed_scalar(start, stop, deadline_at)
        total = stop - start
        scalar = int(plan["scalar_cum"][stop] - plan["scalar_cum"][start])
        covered = total - scalar
        hits = int(self._hit_cum[stop] - self._hit_cum[start])
        stats = self.cache.stats
        stats.accesses += covered
        stats.hits += hits
        stats.local_hits += hits
        misses = covered - hits
        stats.misses += misses
        stats.misses_single_probe += misses
        stats.evictions += int(self._ev_cum[stop] - self._ev_cum[start])
        stats.writebacks += int(self._wb_cum[stop] - self._wb_cum[start])
        if beat is not None:
            beat(stop)
        if deadline_at is not None and perf_counter() > deadline_at:
            raise WatchdogTimeout(
                f"trace {self.trace_name!r}: run exceeded its wall-clock "
                f"deadline after {stop} accesses"
            )
        if stop >= self.n and not self._synced:
            self._sync_state()

    def _feed_scalar(self, start: int, stop: int, deadline_at) -> None:
        """Scalar-fallback sets run through the real cache, in order."""
        scalar_g = self.plan["scalar_g"]
        lo = int(np.searchsorted(scalar_g, start))
        hi = int(np.searchsorted(scalar_g, stop))
        access = self.cache.access
        addresses = self.addresses
        writes = self.writes
        for chunk in range(lo, hi, _SCALAR_STRIDE):
            for gi in scalar_g[chunk:min(hi, chunk + _SCALAR_STRIDE)]:
                gi = int(gi)
                if writes is None:
                    access(addresses[gi])
                else:
                    access(addresses[gi], writes[gi])
            if deadline_at is not None and perf_counter() > deadline_at:
                raise WatchdogTimeout(
                    f"trace {self.trace_name!r}: run exceeded its "
                    f"wall-clock deadline after {stop} accesses"
                )

    # -- windowed-metrics sampling -------------------------------------

    def sample_target(self, boundary: int):
        """The object the metrics registry samples at ``boundary``.

        Fill levels are exact without touching live state: a set's
        occupancy after T accesses is min(A, first-ever accesses seen),
        because no eviction ever empties a way.  Scalar-fallback sets
        satisfy the same identity, so one static table covers all.
        """
        plan = self.plan
        cold_gpos = plan["cold_gpos"]
        hi = int(np.searchsorted(cold_gpos, boundary))
        if hi > self._cold_ptr:
            np.add.at(self._filled, plan["cold_set"][self._cold_ptr:hi], 1)
            self._cold_ptr = hi
        A = plan["A"]
        rows = np.minimum(self._filled, A)
        capacity = plan["num_sets"] * A
        gauges = {"occupancy_fraction": float(rows.sum()) / capacity}
        per_set = {"occupancy": [int(v) for v in rows]}
        return _GaugeSource(self.cache.stats, gauges, per_set)

    # -- final-state synchronisation -----------------------------------

    def _sync_state(self) -> None:
        """Write the exact end-of-trace state into the live cache.

        Residency and way assignment come from each set's last kernel
        lane; recency order and dirty bits come from the static
        occurrence tables (a resident block's key is its last touch,
        its dirty bit is ``last write >= last fill``).  Physical way
        labels can differ from the scalar run's for sets that were
        reconstructed from a lookback window — LRU's observable
        behaviour (which *tags* hit, evict, write back, in what order)
        is invariant under way relabelling, and no stats, manifest,
        metrics or continuation surface exposes the labels.
        """
        self._synced = True
        plan = self.plan
        cache = self.cache
        A = plan["A"]
        have_writes = plan["have_writes"]
        sync_lane = plan["sync_lane"]
        set_counts = plan["set_counts"]
        scalar = set(int(si) for si in plan["scalar_sets"])
        tid_state, fill_count = (
            self._state if self._state is not None else (None, None)
        )
        if have_writes:
            lw_end = plan["last_write_at"][plan["group_last_row"]]
            lm_end = self._last_miss_at[plan["group_last_row"]]
        orders = cache.policy._order
        for si in range(plan["num_sets"]):
            if set_counts[si] == 0 or si in scalar:
                continue
            lane = int(sync_lane[si])
            fc = int(fill_count[lane])
            tids = tid_state[lane * A: lane * A + fc]
            groups = plan["set_first_group"][si] + tids
            tags = plan["tag_of_group"][groups]
            last_occ = plan["last_occ_of_group"][groups]
            table = {}
            way_row: List[Optional[int]] = [None] * A
            dirty_row = [False] * A
            for k in range(fc):
                tag = int(tags[k])
                table[tag] = k
                way_row[k] = tag
                if have_writes:
                    grp = groups[k]
                    dirty_row[k] = bool(lw_end[grp] >= lm_end[grp])
            cache._tag_to_way[si] = table
            cache._way_tag[si] = way_row
            cache._dirty[si] = dirty_row
            cache._free_ways[si] = list(range(A - 1, fc - 1, -1))
            orders[si] = [int(w) for w in np.argsort(last_occ, kind="stable")]


def make_engine(cache, trace, writes) -> Optional[ColumnarEngine]:
    """Build the run's engine, or ``None`` to use the scalar path.

    Assumes the caller already resolved the backend to ``"numpy"``
    (cache eligible, numpy importable); ``None`` here means the plan's
    own guards declined this particular trace/geometry.
    """
    plan = _plan_for(cache, trace, writes)
    if plan is None:
        return None
    return ColumnarEngine(cache, trace, writes, plan)
