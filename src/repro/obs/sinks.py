"""Concrete trace sinks: in-memory ring buffer and JSONL files.

:class:`RingBufferSink` keeps the last ``capacity`` events (or all of
them) for in-process analysis; :class:`JsonlSink` streams events to a
newline-delimited-JSON file that :func:`load_events` reads back into
typed events — the archival format the ``repro trace`` command writes.
"""

from __future__ import annotations

import atexit
import json
import warnings
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, TextIO, Tuple, Union

from repro.common.errors import ConfigError
from repro.obs.events import TraceEvent, event_from_dict


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything — convenient for tests and the
    inspection helpers; bound it for long traces.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, event: TraceEvent) -> None:
        """Append ``event``, dropping the oldest when full."""
        self._buffer.append(event)
        self.total_recorded += 1

    @property
    def dropped(self) -> int:
        """How many events fell off the ring."""
        return self.total_recorded - len(self._buffer)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all retained events (keeps ``total_recorded``)."""
        self._buffer.clear()


class JsonlSink:
    """Stream events to a JSON-lines file (one event dict per line).

    ``flush_every=N`` flushes the OS buffer every N events so a crashed
    run loses at most N events (plus, at worst, one truncated final
    line, which :func:`load_events` can be asked to tolerate); the
    default keeps normal Python buffering for throughput.

    Every open sink registers an ``atexit`` close, so a process that
    exits without unwinding (a pool worker hitting ``os._exit`` paths,
    a script that forgets the ``with`` block) still flushes its tail
    events; an explicit :meth:`close` unregisters it again.
    """

    def __init__(
        self, path: Union[str, Path], flush_every: int = 0
    ) -> None:
        if flush_every < 0:
            raise ConfigError(
                f"flush_every must be >= 0, got {flush_every}"
            )
        self.path = Path(path)
        self.flush_every = flush_every
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self.total_recorded = 0
        atexit.register(self.close)

    def record(self, event: TraceEvent) -> None:
        """Serialise one event as a JSON line."""
        if self._handle is None:
            raise ConfigError(f"JsonlSink {self.path} is closed")
        self._handle.write(json.dumps(event.as_dict()) + "\n")
        self.total_recorded += 1
        if self.flush_every and self.total_recorded % self.flush_every == 0:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            atexit.unregister(self.close)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_events(
    path: Union[str, Path], strict: bool = True
) -> List[TraceEvent]:
    """Read a JSONL event log back into typed events.

    With ``strict=False`` a malformed *final* line — the signature of a
    process killed mid-write — is tolerated: the intact prefix is
    returned and a :class:`UserWarning` reports the truncation.  A
    malformed line anywhere else is corruption, not a crash artefact,
    and always raises.
    """
    events, truncated_line = load_events_report(path, strict=strict)
    if truncated_line is not None:
        warnings.warn(
            f"{path}:{truncated_line}: truncated final event line "
            f"dropped ({len(events)} events recovered)",
            stacklevel=2,
        )
    return events


def load_events_report(
    path: Union[str, Path], strict: bool = True
) -> Tuple[List[TraceEvent], Optional[int]]:
    """Like :func:`load_events`, reporting a tolerated truncation.

    Returns ``(events, line_number_of_truncated_final_line_or_None)``.
    """
    events: List[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_content_line = 0
    for line_number, line in enumerate(lines, start=1):
        if line.strip():
            last_content_line = line_number
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if not strict and line_number == last_content_line:
                return events, line_number
            raise ConfigError(
                f"{path}:{line_number}: malformed event line"
            ) from exc
        events.append(event_from_dict(record))
    return events, None
