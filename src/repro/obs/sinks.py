"""Concrete trace sinks: in-memory ring buffer and JSONL files.

:class:`RingBufferSink` keeps the last ``capacity`` events (or all of
them) for in-process analysis; :class:`JsonlSink` streams events to a
newline-delimited-JSON file that :func:`load_events` reads back into
typed events — the archival format the ``repro trace`` command writes.
"""

from __future__ import annotations

import atexit
import json
import warnings
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, TextIO, Tuple, Union

from repro.common.errors import ConfigError
from repro.obs.events import TraceEvent, event_from_dict


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything — convenient for tests and the
    inspection helpers; bound it for long traces.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, event: TraceEvent) -> None:
        """Append ``event``, dropping the oldest when full."""
        self._buffer.append(event)
        self.total_recorded += 1

    @property
    def dropped(self) -> int:
        """How many events fell off the ring."""
        return self.total_recorded - len(self._buffer)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all retained events (keeps ``total_recorded``)."""
        self._buffer.clear()


class JsonlSink:
    """Stream events to a JSON-lines file (one event dict per line).

    ``flush_every=N`` flushes the OS buffer every N events so a crashed
    run loses at most N events (plus, at worst, one truncated final
    line, which :func:`load_events` can be asked to tolerate); the
    default keeps normal Python buffering for throughput.

    Every open sink registers an ``atexit`` close, so a process that
    exits without unwinding (a pool worker hitting ``os._exit`` paths,
    a script that forgets the ``with`` block) still flushes its tail
    events; an explicit :meth:`close` unregisters it again.
    """

    def __init__(
        self, path: Union[str, Path], flush_every: int = 0
    ) -> None:
        if flush_every < 0:
            raise ConfigError(
                f"flush_every must be >= 0, got {flush_every}"
            )
        self.path = Path(path)
        self.flush_every = flush_every
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self.total_recorded = 0
        atexit.register(self.close)

    def record(self, event: TraceEvent) -> None:
        """Serialise one event as a JSON line."""
        if self._handle is None:
            raise ConfigError(f"JsonlSink {self.path} is closed")
        self._handle.write(json.dumps(event.as_dict()) + "\n")
        self.total_recorded += 1
        if self.flush_every and self.total_recorded % self.flush_every == 0:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            atexit.unregister(self.close)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FilteredSink:
    """Forward only the named event kinds to a wrapped sink.

    The filter sits between the tracer and any concrete sink, so
    ``repro trace --kinds coupling,policy_swap`` records a focused log
    without changing emission: the cache still runs every tracepoint
    (tracing semantics, clocks and stats are untouched), only the
    persisted stream shrinks.  ``total_filtered`` counts what was
    dropped.
    """

    def __init__(self, sink, kinds) -> None:
        self.sink = sink
        self.kinds = frozenset(kinds)
        if not self.kinds:
            raise ConfigError("FilteredSink needs at least one event kind")
        self.total_filtered = 0

    def record(self, event: TraceEvent) -> None:
        if event.kind in self.kinds:
            self.sink.record(event)
        else:
            self.total_filtered += 1

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


def load_events(
    path: Union[str, Path], strict: bool = True
) -> List[TraceEvent]:
    """Read a JSONL event log back into typed events.

    With ``strict=False`` every unreadable line — malformed JSON (a
    process killed mid-write, or a crash-restart writer that tore a
    line mid-file) or a record no registered event type accepts (a log
    from a newer writer) — is skipped: the readable events are returned
    and a single :class:`UserWarning` reports which lines were dropped.
    Under ``strict=True`` (the default) the first bad line raises
    :class:`~repro.common.errors.ConfigError` naming it.
    """
    events, skipped = load_events_report(path, strict=strict)
    if skipped:
        listed = ", ".join(str(number) for number in skipped[:8])
        if len(skipped) > 8:
            listed += f", ... ({len(skipped)} total)"
        warnings.warn(
            f"{path}: skipped unreadable event line(s) {listed} "
            f"({len(events)} events recovered)",
            stacklevel=2,
        )
    return events


def load_events_report(
    path: Union[str, Path], strict: bool = True
) -> Tuple[List[TraceEvent], List[int]]:
    """Like :func:`load_events`, reporting which lines were skipped.

    Returns ``(events, skipped_line_numbers)``; the second element is
    empty for a clean log.  Under ``strict=True`` nothing is ever
    skipped — the first unreadable line raises instead — so the report
    form only adds information with ``strict=False``.
    """
    events: List[TraceEvent] = []
    skipped: List[int] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            events.append(event_from_dict(record))
        except (json.JSONDecodeError, ConfigError, TypeError) as exc:
            if not strict:
                skipped.append(line_number)
                continue
            raise ConfigError(
                f"{path}:{line_number}: malformed event line"
            ) from exc
    return events, skipped
