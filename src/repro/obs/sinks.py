"""Concrete trace sinks: in-memory ring buffer and JSONL files.

:class:`RingBufferSink` keeps the last ``capacity`` events (or all of
them) for in-process analysis; :class:`JsonlSink` streams events to a
newline-delimited-JSON file that :func:`load_events` reads back into
typed events — the archival format the ``repro trace`` command writes.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, TextIO, Union

from repro.common.errors import ConfigError
from repro.obs.events import TraceEvent, event_from_dict


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything — convenient for tests and the
    inspection helpers; bound it for long traces.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, event: TraceEvent) -> None:
        """Append ``event``, dropping the oldest when full."""
        self._buffer.append(event)
        self.total_recorded += 1

    @property
    def dropped(self) -> int:
        """How many events fell off the ring."""
        return self.total_recorded - len(self._buffer)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all retained events (keeps ``total_recorded``)."""
        self._buffer.clear()


class JsonlSink:
    """Stream events to a JSON-lines file (one event dict per line)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self.total_recorded = 0

    def record(self, event: TraceEvent) -> None:
        """Serialise one event as a JSON line."""
        if self._handle is None:
            raise ConfigError(f"JsonlSink {self.path} is closed")
        self._handle.write(json.dumps(event.as_dict()) + "\n")
        self.total_recorded += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_events(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSONL event log back into typed events."""
    events: List[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{line_number}: malformed event line"
                ) from exc
            events.append(event_from_dict(record))
    return events
