"""The run observatory: a stdlib HTTP read side over one run directory.

``repro serve DIR`` turns the artifacts a run directory accumulates —
save_run files, campaign journals, telemetry channels, the bench
ledger — into one always-on endpoint surface:

=====================  ==============================================
Endpoint               Body
=====================  ==============================================
``/healthz``           ``ok`` (liveness probe)
``/metrics``           Prometheus exposition: every indexed run's
                       series (``run``/``scheme``/``benchmark``
                       labels) plus time-stable fleet aggregates
``/api/status``        live :func:`~repro.obs.fleet.load_fleet`
                       state — byte-for-byte the ``status.json``
                       schema
``/api/runs``          the index's runs table, sorted JSON
``/api/runs/<hash>``   one run row (unique hash prefixes resolve)
``/api/campaigns``     the index's campaigns table
``/api/regressions``   :func:`~repro.obs.benchhistory.history_document`
                       over the indexed bench samples
``/``                  HTML front page (index stats + run links)
``/runs/<hash>``       the same byte-stable HTML page
                       ``repro report --out`` writes, rendered
                       from the saved artifact
``/fleet``             auto-refreshing fleet page driven by
                       ``/api/status``
=====================  ==============================================

Determinism contract
--------------------
For a *static* run directory every body above except ``/api/status``
and ``/fleet``'s live table is byte-identical across requests: JSON is
``sort_keys`` + two-space indent + trailing newline, ``/metrics``
renders runs in index order with sorted labels, and the HTML pages
come from the same pure renderers the CLI uses.  CI pins this with a
double-GET comparison.

Everything here is stdlib only (``http.server`` +
``ThreadingHTTPServer``); the shared :class:`~repro.obs.index
.ArtifactIndex` connection is lock-guarded, so concurrent requests are
safe.  Untrusted strings (scheme names, benchmark names, file paths)
are HTML-escaped at every interpolation point.
"""

from __future__ import annotations

import html
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import unquote, urlsplit

from repro.obs.benchhistory import history_document
from repro.obs.fleet import DEFAULT_STALL_AFTER, load_fleet
from repro.obs.htmlreport import _STYLE, render_run_html
from repro.obs.index import ArtifactIndex


def _json_body(document: Any) -> bytes:
    """The repo's canonical JSON bytes: sorted, indented, newline."""
    return (
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


class ObservatoryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one run dir + index."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        run_dir: Path,
        index: ArtifactIndex,
        stall_after: float = DEFAULT_STALL_AFTER,
    ) -> None:
        super().__init__(address, ObservatoryHandler)
        self.run_dir = run_dir
        self.index = index
        self.stall_after = stall_after

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return int(self.server_address[1])


def create_server(
    run_dir: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    index: Optional[ArtifactIndex] = None,
    stall_after: float = DEFAULT_STALL_AFTER,
) -> ObservatoryServer:
    """Bind an observatory over ``run_dir``.

    Without an explicit ``index`` an ephemeral in-memory one is built
    by ingesting ``run_dir`` — the zero-setup ``repro serve DIR`` path.
    ``port=0`` asks the OS for an ephemeral port; read it back from
    :attr:`ObservatoryServer.port`.
    """
    run_dir = Path(run_dir)
    if index is None:
        index = ArtifactIndex(":memory:")
        index.ingest(run_dir)
    return ObservatoryServer(
        (host, port), run_dir=run_dir, index=index, stall_after=stall_after
    )


class ObservatoryHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's run dir and index."""

    server: ObservatoryServer  # narrowed for the route helpers
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log; the CLI announces the
    # address once and the server is otherwise quiet.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = unquote(urlsplit(self.path).path)
        try:
            if path == "/healthz":
                self._send(200, "text/plain; charset=utf-8", b"ok\n")
            elif path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    self._metrics_body(),
                )
            elif path == "/api/status":
                self._send_json(200, self._status_document())
            elif path == "/api/runs":
                self._send_json(200, self.server.index.runs())
            elif path.startswith("/api/runs/"):
                record = self.server.index.run(path[len("/api/runs/"):])
                if record is None:
                    self._send_json(404, {"error": "unknown run hash"})
                else:
                    self._send_json(200, record)
            elif path == "/api/campaigns":
                self._send_json(200, self.server.index.campaigns())
            elif path == "/api/regressions":
                self._send_json(
                    200,
                    history_document(self.server.index.bench_history()),
                )
            elif path == "/":
                self._send_html(200, self._front_page())
            elif path.startswith("/runs/"):
                self._run_page(path[len("/runs/"):])
            elif path == "/fleet":
                self._send_html(200, _FLEET_PAGE)
            else:
                self._send(
                    404, "text/plain; charset=utf-8", b"not found\n"
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._send(
                500,
                "text/plain; charset=utf-8",
                f"internal error: {type(exc).__name__}\n".encode("utf-8"),
            )

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, document: Any) -> None:
        self._send(
            code, "application/json; charset=utf-8", _json_body(document)
        )

    def _send_html(self, code: int, page: str) -> None:
        self._send(
            code, "text/html; charset=utf-8", page.encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Bodies
    # ------------------------------------------------------------------

    def _status_document(self) -> Dict[str, Any]:
        status = load_fleet(
            self.server.run_dir, stall_after=self.server.stall_after
        )
        return status.as_dict()

    def _metrics_body(self) -> bytes:
        """Every indexed run's exposition plus fleet aggregates.

        Runs render in the index's sorted order, each labelled with its
        content-hash prefix; runs whose source artifact lost its series
        (or vanished) are skipped.  The fleet block reports only
        time-stable aggregates — per-state cell counts and remaining
        accesses — so a finished directory's body never changes between
        scrapes.
        """
        from repro.common.errors import ReproError
        from repro.sim.cache import load_run

        chunks = []
        for record in self.server.index.runs():
            try:
                result = load_run(record["source"])
            except (ReproError, OSError):
                continue
            if result.series is None:
                continue
            chunks.append(result.series.to_prometheus(
                extra_labels={"run": record["hash"][:12]}
            ))
        status = load_fleet(
            self.server.run_dir, stall_after=self.server.stall_after
        )
        if status.cells:
            counts = status.counts()
            lines = [
                "# HELP repro_fleet_cells Cells per fleet state in the "
                "served run directory.",
                "# TYPE repro_fleet_cells gauge",
            ]
            for state in sorted(counts):
                lines.append(
                    f'repro_fleet_cells{{state="{state}"}} '
                    f"{counts[state]}"
                )
            lines.extend([
                "# HELP repro_fleet_remaining_accesses Accesses not yet "
                "simulated across unfinished cells.",
                "# TYPE repro_fleet_remaining_accesses gauge",
                f"repro_fleet_remaining_accesses "
                f"{status.remaining_accesses()}",
            ])
            chunks.append("\n".join(lines) + "\n")
        return "".join(chunks).encode("utf-8")

    def _front_page(self) -> str:
        stats = self.server.index.stats()
        rows = []
        for record in self.server.index.runs():
            digest = record["hash"]
            rows.append(
                "<tr>"
                f'<td class="name"><a href="/runs/{html.escape(digest)}">'
                f"{html.escape(digest[:12])}</a></td>"
                f'<td class="name">{html.escape(record["scheme"])}</td>'
                f'<td class="name">{html.escape(record["benchmark"])}'
                "</td>"
                f'<td>{record["mpki"]:.4f}</td>'
                f'<td>{record["amat"]:.4f}</td>'
                f'<td>{record["miss_rate"]:.4f}</td>'
                "</tr>"
            )
        run_table = (
            "<table><tr><th>run</th><th>scheme</th><th>benchmark</th>"
            "<th>MPKI</th><th>AMAT</th><th>miss rate</th></tr>"
            + "".join(rows) + "</table>"
            if rows else "<p>No runs indexed yet.</p>"
        )
        return (
            "<!DOCTYPE html>\n<html><head>"
            '<meta charset="utf-8"><title>repro observatory</title>'
            f"<style>{_STYLE}</style></head><body>"
            "<h1>repro observatory</h1>"
            f"<p>serving <code>"
            f"{html.escape(str(self.server.run_dir))}</code> — "
            f"{stats['runs']} run(s), {stats['campaigns']} campaign(s), "
            f"{stats['bench_samples']} bench sample(s) indexed</p>"
            '<p><a href="/fleet">fleet</a> · '
            '<a href="/metrics">metrics</a> · '
            '<a href="/api/runs">api/runs</a> · '
            '<a href="/api/regressions">api/regressions</a></p>'
            "<h2>Runs</h2>" + run_table + "</body></html>\n"
        )

    def _run_page(self, digest: str) -> None:
        from repro.common.errors import ReproError
        from repro.sim.cache import load_run

        record = self.server.index.run(digest)
        if record is None:
            self._send_html(
                404,
                "<!DOCTYPE html>\n<html><body><h1>unknown run"
                "</h1></body></html>\n",
            )
            return
        try:
            result = load_run(record["source"])
        except (ReproError, OSError):
            self._send_html(
                404,
                "<!DOCTYPE html>\n<html><body><h1>run artifact "
                "missing</h1><p>"
                + html.escape(str(record["source"]))
                + "</p></body></html>\n",
            )
            return
        self._send_html(200, render_run_html(result))


#: The auto-refreshing fleet page: a static shell whose table is
#: filled client-side from ``/api/status`` — the page bytes themselves
#: never change, keeping the static-body determinism contract intact.
_FLEET_PAGE = (
    "<!DOCTYPE html>\n<html><head>"
    '<meta charset="utf-8"><title>repro fleet</title>'
    f"<style>{_STYLE}</style></head><body>"
    "<h1>Fleet</h1>"
    '<p id="summary">loading…</p>'
    '<table id="cells"><tr><th>cell</th><th>label</th>'
    "<th>workload</th><th>state</th><th>progress</th>"
    "<th>acc/s</th></tr></table>"
    "<script>\n"
    "function esc(s) { const d = document.createElement('div');"
    " d.textContent = String(s); return d.innerHTML; }\n"
    "async function tick() {\n"
    "  let status;\n"
    "  try { status = await (await fetch('/api/status')).json(); }\n"
    "  catch (err) {\n"
    "    document.getElementById('summary').textContent ="
    " 'observatory unreachable';\n"
    "    return;\n"
    "  }\n"
    "  const c = status.counts;\n"
    "  document.getElementById('summary').textContent =\n"
    "    status.total_cells + ' cells — ' + c.done + ' done, '"
    " + c.cached + ' cached, ' + c.running + ' running, '"
    " + c.stalled + ' stalled, ' + c.failed + ' failed, '"
    " + c.pending + ' pending — ' + status.aggregate_rate"
    " + ' acc/s';\n"
    "  const table = document.getElementById('cells');\n"
    "  while (table.rows.length > 1) table.deleteRow(1);\n"
    "  for (const cell of status.cells) {\n"
    "    const done = cell.total_accesses\n"
    "      ? Math.round(100 * cell.accesses_done / cell.total_accesses)"
    " : 0;\n"
    "    const row = table.insertRow();\n"
    "    row.innerHTML = '<td>' + esc(cell.index) + '</td>'"
    " + '<td class=\"name\">' + esc(cell.label) + '</td>'"
    " + '<td class=\"name\">' + esc(cell.workload) + '</td>'"
    " + '<td>' + esc(cell.state) + '</td>'"
    " + '<td>' + done + '%</td>'"
    " + '<td>' + esc(Math.round(cell.rate)) + '</td>';\n"
    "  }\n"
    "}\n"
    "tick();\n"
    "setInterval(tick, 2000);\n"
    "</script></body></html>\n"
)
