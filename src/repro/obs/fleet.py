"""Fleet aggregation: merge telemetry channels into one live status.

This is the *read side* of :mod:`repro.obs.telemetry`: it folds a run
directory's ``grid.jsonl`` plus every ``cells/cell-NNNNN.jsonl`` into a
:class:`FleetStatus` — per-cell state machines, worker resource
samples, an ETA estimate, and **stall verdicts** that distinguish a
slow cell (heartbeats still arriving) from a stalled worker (heartbeats
stopped) long before the in-worker
:class:`~repro.common.errors.WatchdogTimeout` deadline fires.

The aggregator only ever reads; it is safe to run concurrently with the
grid it observes (``repro top``), from another process, or after the
fact.  Torn final lines — live writers, crashed workers — are
tolerated, mirroring ``load_events(strict=False)``.

Cell states
-----------
``pending``  planned by the parent, no worker has started it
``cached``   served from the content-addressed run cache
``running``  cell span open, heartbeats arriving
``stalled``  cell span open but the newest event is older than
             ``stall_after`` — the verdict names the armed watchdog and
             when it will fire, so an operator (or CI) can act first
``done``     finished ``ok``
``failed``   finished ``failed`` (retries exhausted → RunFailure)
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.io import atomic_write_text
from repro.obs.telemetry import CELLS_DIR, read_status_lines

#: Heartbeat age (seconds) after which a running cell is called stalled.
DEFAULT_STALL_AFTER = 5.0


@dataclass
class CellFleetStatus:
    """Merged live view of one grid cell."""

    index: int
    label: str = "?"
    workload: str = "?"
    state: str = "pending"
    total_accesses: int = 0
    accesses_done: int = 0
    rate: float = 0.0
    phase: Optional[str] = None
    pid: Optional[int] = None
    seed: Optional[int] = None
    attempts_failed: int = 0
    error_type: Optional[str] = None
    rss_kb: Optional[int] = None
    cpu_seconds: Optional[float] = None
    gc_collections: Optional[int] = None
    watchdog_seconds: Optional[float] = None
    started_wall: Optional[float] = None
    finished_wall: Optional[float] = None
    last_event_wall: Optional[float] = None
    last_event_age: Optional[float] = None
    stall_verdict: Optional[str] = None

    @property
    def progress(self) -> float:
        """Fraction of the cell's accesses completed (0..1)."""
        if self.state in ("done", "cached"):
            return 1.0
        if self.total_accesses <= 0:
            return 0.0
        return min(1.0, self.accesses_done / self.total_accesses)

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (``status.json`` rows)."""
        return {
            "index": self.index,
            "label": self.label,
            "workload": self.workload,
            "state": self.state,
            "total_accesses": self.total_accesses,
            "accesses_done": self.accesses_done,
            "progress": round(self.progress, 4),
            "rate": self.rate,
            "phase": self.phase,
            "pid": self.pid,
            "attempts_failed": self.attempts_failed,
            "error_type": self.error_type,
            "rss_kb": self.rss_kb,
            "cpu_seconds": self.cpu_seconds,
            "gc_collections": self.gc_collections,
            "watchdog_seconds": self.watchdog_seconds,
            "last_event_age": (
                round(self.last_event_age, 3)
                if self.last_event_age is not None else None
            ),
            "stall_verdict": self.stall_verdict,
        }


@dataclass
class FleetStatus:
    """Aggregated status of one grid run directory."""

    run_dir: str
    grid_span: Optional[str] = None
    grid_started: Optional[float] = None
    grid_finished: Optional[float] = None
    total_cells: int = 0
    cells: List[CellFleetStatus] = field(default_factory=list)
    stall_after: float = DEFAULT_STALL_AFTER
    observed_at: float = 0.0
    truncated_files: int = 0

    def counts(self) -> Dict[str, int]:
        """Cells per state, every state always present."""
        counts = {
            state: 0
            for state in (
                "pending", "cached", "running", "stalled", "done", "failed"
            )
        }
        for cell in self.cells:
            counts[cell.state] = counts.get(cell.state, 0) + 1
        return counts

    @property
    def finished(self) -> bool:
        """True when no cell can still make progress."""
        return all(
            cell.state in ("cached", "done", "failed") for cell in self.cells
        ) and (self.grid_finished is not None or not self.cells)

    @property
    def stalled_cells(self) -> List[CellFleetStatus]:
        """Cells currently holding a stall verdict."""
        return [cell for cell in self.cells if cell.state == "stalled"]

    def aggregate_rate(self) -> float:
        """Accesses/sec across live cells, falling back to finished ones.

        The live sum is the honest instantaneous throughput; when
        nothing is mid-flight (startup, or between completions) the
        mean effective rate of finished cells keeps the ETA defined.
        """
        live = sum(
            cell.rate for cell in self.cells
            if cell.state in ("running", "stalled") and cell.rate > 0
        )
        if live > 0:
            return live
        finished_rates = []
        for cell in self.cells:
            if cell.state != "done":
                continue
            if (
                cell.started_wall is not None
                and cell.finished_wall is not None
                and cell.finished_wall > cell.started_wall
                and cell.total_accesses > 0
            ):
                finished_rates.append(
                    cell.total_accesses
                    / (cell.finished_wall - cell.started_wall)
                )
        if finished_rates:
            return sum(finished_rates) / len(finished_rates)
        return 0.0

    def remaining_accesses(self) -> int:
        """Accesses not yet simulated across pending/live cells."""
        return sum(
            max(0, cell.total_accesses - cell.accesses_done)
            for cell in self.cells
            if cell.state in ("pending", "running", "stalled")
        )

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, or None when unknowable."""
        if self.finished:
            return 0.0
        rate = self.aggregate_rate()
        if rate <= 0:
            return None
        return self.remaining_accesses() / rate

    def as_dict(self) -> Dict[str, Any]:
        """The machine-readable ``status.json`` document."""
        eta = self.eta_seconds()
        return {
            "run_dir": self.run_dir,
            "grid_span": self.grid_span,
            "observed_at": round(self.observed_at, 3),
            "finished": self.finished,
            "total_cells": self.total_cells,
            "counts": self.counts(),
            "remaining_accesses": self.remaining_accesses(),
            "aggregate_rate": round(self.aggregate_rate(), 1),
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "stall_after": self.stall_after,
            "truncated_files": self.truncated_files,
            "cells": [cell.as_dict() for cell in self.cells],
        }


def _apply_grid_records(
    status: FleetStatus, records: List[Dict[str, Any]],
    cells: Dict[int, CellFleetStatus],
) -> None:
    for record in records:
        kind = record.get("kind")
        if kind == "grid_start":
            status.grid_span = record.get("span_id")
            status.grid_started = record.get("t")
            status.total_cells = record.get("total_cells", 0)
        elif kind == "cell_plan":
            index = record.get("cell")
            if not isinstance(index, int):
                continue
            cell = cells.setdefault(index, CellFleetStatus(index=index))
            cell.label = record.get("label", cell.label)
            cell.workload = record.get("workload", cell.workload)
            cell.total_accesses = record.get(
                "total_accesses", cell.total_accesses
            )
            if record.get("watchdog_seconds") is not None:
                cell.watchdog_seconds = record["watchdog_seconds"]
        elif kind == "cell_cached":
            index = record.get("cell")
            if isinstance(index, int):
                cell = cells.setdefault(index, CellFleetStatus(index=index))
                cell.state = "cached"
        elif kind == "cell_done":
            # Authoritative only when the worker's own cell_end was lost
            # (torn tail): the parent saw the outcome either way.
            index = record.get("cell")
            if isinstance(index, int):
                cell = cells.setdefault(index, CellFleetStatus(index=index))
                if cell.state not in ("done", "failed", "cached"):
                    cell.state = (
                        "done" if record.get("status") == "ok" else "failed"
                    )
                    cell.finished_wall = record.get("t")
        elif kind == "grid_end":
            status.grid_finished = record.get("t")


def _apply_cell_records(
    cell: CellFleetStatus, records: List[Dict[str, Any]]
) -> None:
    for record in records:
        wall = record.get("t")
        if wall is not None:
            cell.last_event_wall = wall
        kind = record.get("kind")
        if kind == "cell_start":
            cell.state = "running"
            cell.started_wall = wall
            cell.label = record.get("label", cell.label)
            cell.workload = record.get("workload", cell.workload)
            cell.total_accesses = record.get(
                "total_accesses", cell.total_accesses
            )
            cell.pid = record.get("pid")
            cell.seed = record.get("seed")
            if record.get("watchdog_seconds") is not None:
                cell.watchdog_seconds = record["watchdog_seconds"]
            cell.accesses_done = 0
        elif kind == "phase_start":
            cell.phase = record.get("phase")
        elif kind == "phase_end":
            cell.phase = None
            if record.get("accesses") is not None:
                cell.accesses_done = record["accesses"]
        elif kind == "heartbeat":
            if record.get("accesses") is not None:
                cell.accesses_done = record["accesses"]
            cell.rate = record.get("rate", cell.rate) or 0.0
            cell.phase = record.get("phase", cell.phase)
            cell.rss_kb = record.get("rss_kb", cell.rss_kb)
            cell.cpu_seconds = record.get("cpu_seconds", cell.cpu_seconds)
            cell.gc_collections = record.get(
                "gc_collections", cell.gc_collections
            )
        elif kind == "attempt_failed":
            cell.attempts_failed += 1
        elif kind == "cell_end":
            cell.state = (
                "done" if record.get("status") == "ok" else "failed"
            )
            cell.error_type = record.get("error_type")
            cell.finished_wall = wall
            cell.rss_kb = record.get("rss_kb", cell.rss_kb)
            cell.cpu_seconds = record.get("cpu_seconds", cell.cpu_seconds)


def _stall_verdict(cell: CellFleetStatus, now_wall: float) -> str:
    """Human verdict for a heartbeat-silent cell.

    Names the existing watchdog machinery so the operator knows what
    happens next if nobody intervenes: either when the cooperative
    :class:`WatchdogTimeout` will convert the cell into a RunFailure,
    or that no deadline is armed and the stall can last forever.
    """
    age = now_wall - (cell.last_event_wall or now_wall)
    verdict = (
        f"no heartbeat for {age:.1f}s "
        f"(last at access {cell.accesses_done:,}/"
        f"{cell.total_accesses:,})"
    )
    if cell.watchdog_seconds is not None and cell.started_wall is not None:
        fires_in = cell.watchdog_seconds - (now_wall - cell.started_wall)
        if fires_in > 0:
            verdict += (
                f"; WatchdogTimeout fires in {fires_in:.1f}s"
            )
        else:
            verdict += "; WatchdogTimeout due — worker is wedged"
    else:
        verdict += "; no watchdog armed"
    return verdict


def load_fleet(
    run_dir: Union[str, Path],
    stall_after: float = DEFAULT_STALL_AFTER,
    now_wall: Optional[float] = None,
) -> FleetStatus:
    """Merge a run directory's telemetry channel into a FleetStatus.

    Works on a live directory (partial files, torn tails) as well as a
    finished one; a directory with no ``grid.jsonl`` — e.g. a single
    guarded run writing only its cell file — still aggregates from the
    cell files alone.
    """
    run_dir = Path(run_dir)
    now_wall = now_wall if now_wall is not None else time.time()
    status = FleetStatus(
        run_dir=str(run_dir), stall_after=stall_after, observed_at=now_wall
    )
    cells: Dict[int, CellFleetStatus] = {}
    grid_records, truncated = read_status_lines(run_dir / "grid.jsonl")
    status.truncated_files += int(truncated)
    _apply_grid_records(status, grid_records, cells)
    cached = {
        index for index, cell in cells.items() if cell.state == "cached"
    }
    for path in sorted((run_dir / CELLS_DIR).glob("cell-*.jsonl")):
        try:
            index = int(path.stem.split("-")[1])
        except (IndexError, ValueError):
            continue
        if index in cached:
            continue
        records, truncated = read_status_lines(path)
        status.truncated_files += int(truncated)
        cell = cells.setdefault(index, CellFleetStatus(index=index))
        _apply_cell_records(cell, records)
    for cell in cells.values():
        if cell.last_event_wall is not None:
            cell.last_event_age = max(0.0, now_wall - cell.last_event_wall)
        if (
            cell.state == "running"
            and cell.last_event_age is not None
            and cell.last_event_age > stall_after
        ):
            cell.state = "stalled"
            cell.stall_verdict = _stall_verdict(cell, now_wall)
    status.cells = [cells[index] for index in sorted(cells)]
    if status.total_cells == 0:
        status.total_cells = len(status.cells)
    return status


def write_status(
    run_dir: Union[str, Path], status: FleetStatus
) -> Path:
    """Atomically write the machine-readable ``status.json`` snapshot."""
    path = Path(run_dir) / "status.json"
    atomic_write_text(
        path,
        json.dumps(status.as_dict(), indent=2, sort_keys=True) + "\n",
    )
    return path


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _format_bar(progress: float, width: int = 20) -> str:
    filled = int(round(progress * width))
    return "#" * filled + "." * (width - filled)


def render_top(status: FleetStatus, max_rows: int = 40) -> str:
    """The ``repro top`` text view of one FleetStatus snapshot.

    Finished cells collapse into the summary line; live, stalled,
    failed and pending cells get rows (most interesting states first)
    so a thousand-cell sweep still fits a terminal.
    """
    counts = status.counts()
    eta = _format_eta(status.eta_seconds())
    lines = [
        f"fleet {status.grid_span or status.run_dir} — "
        f"{status.total_cells} cell(s): "
        f"{counts['done']} done, {counts['cached']} cached, "
        f"{counts['running']} running, {counts['stalled']} stalled, "
        f"{counts['failed']} failed, {counts['pending']} pending",
        f"throughput {status.aggregate_rate():,.0f} acc/s — "
        f"remaining {status.remaining_accesses():,} accesses — ETA {eta}",
    ]
    if status.truncated_files:
        lines.append(
            f"({status.truncated_files} status file(s) had torn final "
            f"lines — live writers or crashed workers)"
        )
    order = {"stalled": 0, "failed": 1, "running": 2, "pending": 3}
    rows = [cell for cell in status.cells if cell.state in order]
    rows.sort(key=lambda cell: (order[cell.state], cell.index))
    shown = rows[:max_rows]
    if shown:
        lines.append("")
        lines.append(
            f"{'cell':>6s} {'scheme':>12s} {'workload':>12s} "
            f"{'state':>8s} {'progress':>22s} {'acc/s':>10s} "
            f"{'rss':>8s} {'cpu':>7s}"
        )
    for cell in shown:
        rss = f"{cell.rss_kb // 1024}M" if cell.rss_kb else "-"
        cpu = (
            f"{cell.cpu_seconds:.1f}s" if cell.cpu_seconds is not None
            else "-"
        )
        bar = _format_bar(cell.progress)
        lines.append(
            f"{cell.index:>6d} {cell.label:>12s} {cell.workload:>12s} "
            f"{cell.state.upper() if cell.state == 'stalled' else cell.state:>8s} "
            f"[{bar}] {cell.rate:>10,.0f} {rss:>8s} {cpu:>7s}"
        )
    if len(rows) > len(shown):
        lines.append(f"... and {len(rows) - len(shown)} more")
    for cell in status.stalled_cells:
        lines.append(
            f"STALLED cell {cell.index} ({cell.label} on "
            f"{cell.workload}): {cell.stall_verdict}"
        )
    for cell in status.cells:
        if cell.state == "failed":
            lines.append(
                f"FAILED cell {cell.index} ({cell.label} on "
                f"{cell.workload}): {cell.error_type or 'error'}"
            )
    return "\n".join(lines) + "\n"
