"""Run provenance: a manifest describing exactly what was simulated.

Every :class:`~repro.sim.simulator.RunResult` carries a
:class:`RunManifest` recording the scheme's configuration, the trace's
metadata, the RNG seed, wall-clock phase timings, and the interpreter /
platform the run executed on.  The ``content_hash`` covers only the
*deterministic* inputs (scheme, geometry, config, trace metadata, seed,
package version) so two identical runs hash identically — benchmark
JSONs become reproducible and diffable — while wall-clock and host
details remain visible but outside the hash.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro._version import __version__
from repro.common.io import atomic_write_text

#: Scalar attribute types copied into a scheme description.
_SCALARS = (int, float, bool, str)

#: Cache attributes that are bookkeeping, not configuration.
_SKIPPED_ATTRS = frozenset({"name", "seed"})


def describe_scheme(cache: Any) -> Dict[str, Any]:
    """Deterministic configuration summary of any cache scheme object.

    Collects the class name, the geometry, any ``config`` dataclass
    (e.g. :class:`~repro.core.config.StemConfig`) and every public
    scalar attribute — which captures knobs such as SBC's
    ``saturation_limit`` or V-Way's ``tag_ratio`` without per-scheme
    special cases.
    """
    description: Dict[str, Any] = {
        "class": type(cache).__name__,
        "scheme": getattr(cache, "name", type(cache).__name__),
    }
    geometry = getattr(cache, "geometry", None)
    if geometry is not None:
        description["geometry"] = {
            "num_sets": geometry.num_sets,
            "associativity": geometry.associativity,
            "line_size": geometry.line_size,
        }
    config = getattr(cache, "config", None)
    if is_dataclass(config) and not isinstance(config, type):
        description["config"] = asdict(config)
    policy = getattr(cache, "policy", None)
    if policy is not None:
        description["policy"] = getattr(policy, "name", type(policy).__name__)
    for attr, value in sorted(vars(cache).items()):
        if attr.startswith("_") or attr in _SKIPPED_ATTRS:
            continue
        if isinstance(value, _SCALARS):
            description[attr] = value
    return description


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one (scheme, trace) simulation."""

    scheme: str
    trace_name: str
    seed: Optional[int]
    scheme_config: Dict[str, Any]
    trace_metadata: Dict[str, Any]
    package_version: str
    python_version: str
    platform: str
    warmup_seconds: float
    measured_seconds: float
    measured_accesses: int
    content_hash: str = field(default="", compare=False)

    @property
    def wall_clock_seconds(self) -> float:
        """Total simulation wall-clock (warm-up + measured)."""
        return self.warmup_seconds + self.measured_seconds

    @property
    def accesses_per_second(self) -> float:
        """Measured-phase simulation throughput."""
        if self.measured_seconds <= 0.0:
            return 0.0
        return self.measured_accesses / self.measured_seconds

    def hashed_payload(self) -> Dict[str, Any]:
        """The deterministic inputs covered by :attr:`content_hash`."""
        return {
            "scheme": self.scheme,
            "trace_name": self.trace_name,
            "seed": self.seed,
            "scheme_config": self.scheme_config,
            "trace_metadata": self.trace_metadata,
            "package_version": self.package_version,
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (derived throughput included)."""
        record = asdict(self)
        record["wall_clock_seconds"] = self.wall_clock_seconds
        record["accesses_per_second"] = self.accesses_per_second
        return record

    def save(self, path: Union[str, Path]) -> None:
        """Write the manifest as JSON, atomically (write-then-rename).

        A manifest is the provenance record other tooling trusts, so a
        crash mid-save must leave either the previous complete file or
        the new complete file — never a truncated one.
        """
        atomic_write_text(
            path,
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
        )


def _content_hash(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    cache: Any,
    trace: Any,
    warmup_seconds: float = 0.0,
    measured_seconds: float = 0.0,
    measured_accesses: int = 0,
    seed: Optional[int] = None,
) -> RunManifest:
    """Assemble the manifest for one finished run.

    ``seed`` defaults to the ``seed`` attribute
    :func:`~repro.sim.config.make_scheme` stamps on the caches it
    builds; hand-constructed caches may pass it explicitly.
    """
    if seed is None:
        seed = getattr(cache, "seed", None)
    metadata = getattr(trace, "metadata", None)
    if is_dataclass(metadata) and not isinstance(metadata, type):
        trace_metadata = asdict(metadata)
    else:
        trace_metadata = {"name": getattr(trace, "name", str(trace))}
    trace_metadata["accesses"] = len(trace)
    scheme_config = describe_scheme(cache)
    manifest = RunManifest(
        scheme=scheme_config["scheme"],
        trace_name=trace_metadata.get("name", ""),
        seed=seed,
        scheme_config=scheme_config,
        trace_metadata=trace_metadata,
        package_version=__version__,
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        warmup_seconds=warmup_seconds,
        measured_seconds=measured_seconds,
        measured_accesses=measured_accesses,
    )
    digest = _content_hash(manifest.hashed_payload())
    object.__setattr__(manifest, "content_hash", digest)
    return manifest
