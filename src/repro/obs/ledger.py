"""Capacity-flow ledger: a streaming reduction of the event stream.

STEM's story is told in its events — pairs couple, victims spill into
borrowed space, cooperative hits pay the rent, SC_T saturation swaps a
set's insertion policy — but the raw stream is per-decision and
unbounded.  :class:`LedgerSink` consumes that stream *online* and keeps
only bounded aggregates, so a billion-access run never retains the full
event log:

* **Coupling episodes** — one record per (taker, giver) pairing: start
  and end on the monotonic event clock, spills delivered, cooperative
  hits earned, and the decouple reason
  (:class:`~repro.obs.events.Decoupling` ``reason``).
* **Policy-swap episodes** — one record per swap with the hit rate in
  the window before and after it, computed from the ``(access, hits)``
  snapshots each :class:`~repro.obs.events.PolicySwap` carries.
* **A capacity-flow account** — per-set way·access-time lent (as a
  giver) and borrowed (as a taker), integrated from the cooperative
  block population of each episode.

:meth:`LedgerSink.seal` closes the books and checks conservation:
globally, capacity lent must equal capacity borrowed, and the spills
attributed to episodes plus the orphans (events that matched no open
episode — the signature of a corrupted stream) must equal the spill
events seen.  A violation raises
:class:`~repro.common.errors.InvariantViolation`.

The sink is an ordinary tracer sink, so it rides the existing
zero-overhead-when-disabled contract: a run without a ledger constructs
neither the sink nor a tracer, and pays nothing.  Everything the ledger
derives comes from deterministic events, so its serialised form is
byte-stable across repeated runs and across serial/parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, InvariantViolation
from repro.obs.events import TraceEvent
from repro.obs.inspect import event_clock

#: Retained-episode cap: aggregates keep counting past it, but the
#: per-episode records stop growing so memory stays bounded.
DEFAULT_EPISODE_CAP = 4096

#: Decouple reason recorded when seal() closes a still-open episode.
OPEN_AT_SEAL = "open_at_seal"

#: Decouple reason recorded when a new Coupling displaces a stale one
#: for the same endpoint without an intervening Decoupling.
SUPERSEDED = "superseded"


@dataclass
class CouplingEpisode:
    """One (taker, giver) pairing, from Coupling to Decoupling.

    ``start``/``end`` are on the monotonic event clock
    (:func:`~repro.obs.inspect.event_clock`).  ``area`` is the episode's
    way·access-time integral: cooperative blocks resident in the giver,
    integrated over the clock — the capacity the giver lent and the
    taker borrowed.  ``residual_blocks`` is the cooperative population
    still resident at close; it is zero for a drained pair and may be
    positive when safe mode dissolves a pairing without draining it.
    """

    taker: int
    giver: int
    start: int
    end: Optional[int] = None
    spills: int = 0
    coop_hits: int = 0
    area: int = 0
    residual_blocks: int = 0
    reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "taker": self.taker,
            "giver": self.giver,
            "start": self.start,
            "end": self.end,
            "spills": self.spills,
            "coop_hits": self.coop_hits,
            "area": self.area,
            "residual_blocks": self.residual_blocks,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CouplingEpisode":
        return cls(**payload)


@dataclass
class SwapEpisode:
    """One per-set policy swap with its surrounding hit-rate windows.

    ``access``/``hits`` are the ``stats`` snapshots the event carried;
    ``clock`` is the monotonic event clock.  The before window spans
    from the previous swap in the same set (or the stream start) to
    this swap; the after window spans to the next swap (or the end of
    the run).  A window is ``None`` when it is empty or when
    ``reset_stats()`` rewound the snapshots across it (warm-up), which
    would make the delta meaningless.
    """

    set_index: int
    clock: int
    access: int
    hits: int
    mode: str
    hit_rate_before: Optional[float] = None
    hit_rate_after: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "set_index": self.set_index,
            "clock": self.clock,
            "access": self.access,
            "hits": self.hits,
            "mode": self.mode,
            "hit_rate_before": self.hit_rate_before,
            "hit_rate_after": self.hit_rate_after,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SwapEpisode":
        return cls(**payload)


def _window_rate(
    accesses_before: int, hits_before: int,
    accesses_after: int, hits_after: int,
) -> Optional[float]:
    """Hit rate across a (access, hits) snapshot pair, or ``None``.

    Guards against ``reset_stats()`` rewinding the counters inside the
    window (warm-up boundary): a non-positive access delta or an
    impossible hit delta yields no rate rather than a wrong one.
    """
    delta_access = accesses_after - accesses_before
    delta_hits = hits_after - hits_before
    if delta_access <= 0 or not 0 <= delta_hits <= delta_access:
        return None
    return delta_hits / delta_access


@dataclass
class RunLedger:
    """The sealed books of one run — what :class:`LedgerSink` produces.

    ``flows`` maps set index → the capacity-flow account:
    ``lent``/``borrowed`` way·access-time, ``spills_out`` (victims this
    taker pushed), ``spills_in`` (victims this giver received) and
    ``coop_hits`` (hits this taker earned in borrowed space).  Only
    sets that participated appear, so the account is bounded by the
    geometry, not the run length.

    ``counters`` optionally carries the scheme's measured-window
    attribution counters (:meth:`ledger_counters` on the cache):
    per-set total hits, cooperative hits, and swapped-policy hits —
    the integers :mod:`repro.obs.explain` decomposes.
    """

    coupling_episodes: List[CouplingEpisode] = field(default_factory=list)
    swap_episodes: List[SwapEpisode] = field(default_factory=list)
    flows: Dict[int, Dict[str, int]] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)
    counters: Optional[Dict[str, List[int]]] = None
    final_accesses: int = 0
    final_hits: int = 0
    episodes_dropped: int = 0
    swaps_dropped: int = 0
    events_seen: int = 0

    def summary(self) -> Dict[str, Any]:
        """Compact scalar view for campaign ``summary.json`` cells."""
        return {
            "coupling_episodes": (
                len(self.coupling_episodes) + self.episodes_dropped
            ),
            "policy_swaps": len(self.swap_episodes) + self.swaps_dropped,
            "lent": self.totals.get("lent", 0),
            "borrowed": self.totals.get("borrowed", 0),
            "spill_events": self.totals.get("spill_events", 0),
            "coop_hit_events": self.totals.get("coop_hit_events", 0),
            "orphan_spills": self.totals.get("orphan_spills", 0),
            "orphan_coop_hits": self.totals.get("orphan_coop_hits", 0),
            "orphan_decouplings": self.totals.get("orphan_decouplings", 0),
        }

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return {
            "coupling_episodes": [
                episode.as_dict() for episode in self.coupling_episodes
            ],
            "swap_episodes": [
                episode.as_dict() for episode in self.swap_episodes
            ],
            # JSON object keys are strings; from_dict() re-ints them.
            "flows": {
                str(set_index): dict(flow)
                for set_index, flow in sorted(self.flows.items())
            },
            "totals": dict(self.totals),
            "counters": (
                {name: list(vals) for name, vals in self.counters.items()}
                if self.counters is not None else None
            ),
            "final_accesses": self.final_accesses,
            "final_hits": self.final_hits,
            "episodes_dropped": self.episodes_dropped,
            "swaps_dropped": self.swaps_dropped,
            "events_seen": self.events_seen,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunLedger":
        """Rebuild a ledger stored by :meth:`as_dict`."""
        try:
            counters = payload.get("counters")
            return cls(
                coupling_episodes=[
                    CouplingEpisode.from_dict(item)
                    for item in payload["coupling_episodes"]
                ],
                swap_episodes=[
                    SwapEpisode.from_dict(item)
                    for item in payload["swap_episodes"]
                ],
                flows={
                    int(set_index): {k: int(v) for k, v in flow.items()}
                    for set_index, flow in payload["flows"].items()
                },
                totals={k: int(v) for k, v in payload["totals"].items()},
                counters=(
                    {name: list(vals) for name, vals in counters.items()}
                    if counters is not None else None
                ),
                final_accesses=payload["final_accesses"],
                final_hits=payload["final_hits"],
                episodes_dropped=payload.get("episodes_dropped", 0),
                swaps_dropped=payload.get("swaps_dropped", 0),
                events_seen=payload.get("events_seen", 0),
            )
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise ConfigError(f"malformed ledger payload: {exc}") from exc


class LedgerSink:
    """Streaming tracer sink that aggregates the stream into a ledger.

    Attach it like any other sink, drive the run, then call
    :meth:`seal` once to close open episodes, compute swap windows,
    and verify conservation.  Memory is bounded: per-set accounts are
    capped by the geometry, episode records by ``episode_cap`` (the
    aggregates keep counting past the cap; only the per-episode detail
    stops growing).

    Events that match no open episode — a Spill naming an unknown
    (taker, giver) pair, a Decoupling for a pair that never coupled, a
    cooperative Eviction in a set that is not lending — are counted as
    *orphans* rather than mis-attributed.  An intact stream has none;
    fault campaigns that corrupt the association table produce a few,
    and the conservation checks account for them explicitly.
    """

    def __init__(self, episode_cap: int = DEFAULT_EPISODE_CAP) -> None:
        if episode_cap <= 0:
            raise ConfigError(
                f"episode_cap must be positive, got {episode_cap}"
            )
        self.episode_cap = episode_cap
        self.events_seen = 0
        self._sealed = False
        # Open episodes, indexed both ways for O(1) event dispatch.
        self._open_by_taker: Dict[int, CouplingEpisode] = {}
        self._open_by_giver: Dict[int, CouplingEpisode] = {}
        self._resident: Dict[int, int] = {}   # giver -> coop blocks now
        self._last_clock: Dict[int, int] = {}  # giver -> last integration
        self._closed: List[CouplingEpisode] = []
        self.episodes_dropped = 0
        # Swap records in arrival order; windows resolved at seal.
        self._swaps: List[SwapEpisode] = []
        self.swaps_dropped = 0
        self._flows: Dict[int, Dict[str, int]] = {}
        # lent integrates incrementally as giver-side clock advances;
        # borrowed is credited from episode totals at close.  The two
        # must agree at seal — a genuine cross-check of the episode
        # bookkeeping, not an identity.
        self._lent_total = 0
        self._borrowed_total = 0
        self._spill_events = 0
        self._coop_hit_events = 0
        self._coupling_events = 0
        self._decoupling_events = 0
        self._orphan_spills = 0
        self._orphan_coop_hits = 0
        self._orphan_decouplings = 0
        self._orphan_evictions = 0

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------

    def _flow(self, set_index: int) -> Dict[str, int]:
        flow = self._flows.get(set_index)
        if flow is None:
            flow = {
                "lent": 0, "borrowed": 0,
                "spills_out": 0, "spills_in": 0, "coop_hits": 0,
            }
            self._flows[set_index] = flow
        return flow

    def _advance(self, episode: CouplingEpisode, clock: int) -> None:
        """Integrate the episode's resident population up to ``clock``."""
        giver = episode.giver
        last = self._last_clock[giver]
        if clock > last:
            delta = (clock - last) * self._resident[giver]
            episode.area += delta
            self._lent_total += delta
            self._flow(giver)["lent"] += delta
            self._last_clock[giver] = clock

    def _open(self, taker: int, giver: int, clock: int) -> None:
        # A Coupling for an endpoint that is already paired means the
        # stream skipped a Decoupling (possible under fault injection);
        # force-close the stale episode rather than corrupt both.
        stale_taker = self._open_by_taker.get(taker)
        stale_giver = self._open_by_giver.get(giver)
        if stale_taker is not None:
            self._close(stale_taker, clock, SUPERSEDED)
        if stale_giver is not None and stale_giver is not stale_taker:
            # _close may already have evicted it via the taker map.
            if self._open_by_giver.get(giver) is stale_giver:
                self._close(stale_giver, clock, SUPERSEDED)
        episode = CouplingEpisode(taker=taker, giver=giver, start=clock)
        self._open_by_taker[taker] = episode
        self._open_by_giver[giver] = episode
        self._resident[giver] = 0
        self._last_clock[giver] = clock

    def _close(
        self, episode: CouplingEpisode, clock: int, reason: str
    ) -> None:
        self._advance(episode, clock)
        episode.end = clock
        episode.reason = reason
        episode.residual_blocks = self._resident.pop(episode.giver, 0)
        self._last_clock.pop(episode.giver, None)
        self._open_by_taker.pop(episode.taker, None)
        self._open_by_giver.pop(episode.giver, None)
        self._borrowed_total += episode.area
        self._flow(episode.taker)["borrowed"] += episode.area
        if len(self._closed) < self.episode_cap:
            self._closed.append(episode)
        else:
            self.episodes_dropped += 1

    def record(self, event: TraceEvent) -> None:
        """Consume one event (kinds the ledger ignores still count)."""
        if self._sealed:
            raise ConfigError("LedgerSink is sealed")
        self.events_seen += 1
        kind = event.kind
        if kind == "coupling":
            self._coupling_events += 1
            self._open(event.set_index, event.giver, event_clock(event))
        elif kind == "decoupling":
            self._decoupling_events += 1
            episode = self._open_by_taker.get(event.set_index)
            if episode is not None and episode.giver == event.giver:
                self._close(episode, event_clock(event), event.reason)
            else:
                self._orphan_decouplings += 1
        elif kind == "spill":
            self._spill_events += 1
            episode = self._open_by_taker.get(event.set_index)
            if episode is not None and episode.giver == event.giver:
                self._advance(episode, event_clock(event))
                episode.spills += 1
                self._resident[event.giver] += 1
                self._flow(event.set_index)["spills_out"] += 1
                self._flow(event.giver)["spills_in"] += 1
            else:
                self._orphan_spills += 1
        elif kind == "eviction":
            # Only cooperative evictions touch the account: a giver
            # dropping a block it cached on its taker's behalf.
            if event.cooperative:
                episode = self._open_by_giver.get(event.set_index)
                if episode is not None:
                    self._advance(episode, event_clock(event))
                    if self._resident[event.set_index] > 0:
                        self._resident[event.set_index] -= 1
                    else:
                        self._orphan_evictions += 1
                else:
                    self._orphan_evictions += 1
        elif kind == "coop_hit":
            self._coop_hit_events += 1
            episode = self._open_by_taker.get(event.set_index)
            if episode is not None and episode.giver == event.giver:
                self._advance(episode, event_clock(event))
                episode.coop_hits += 1
                self._flow(event.set_index)["coop_hits"] += 1
            else:
                self._orphan_coop_hits += 1
        elif kind == "policy_swap":
            if len(self._swaps) < self.episode_cap:
                self._swaps.append(SwapEpisode(
                    set_index=event.set_index,
                    clock=event_clock(event),
                    access=event.access,
                    hits=event.hits,
                    mode=event.mode,
                ))
            else:
                self.swaps_dropped += 1
        # Every other kind (shadow_hit, fault_injected, safe_mode,
        # spill_reject) is deliberately outside the account.

    # ------------------------------------------------------------------
    # Close side
    # ------------------------------------------------------------------

    def _resolve_swap_windows(
        self, final_accesses: int, final_hits: int
    ) -> List[SwapEpisode]:
        per_set: Dict[int, List[SwapEpisode]] = {}
        for swap in self._swaps:
            per_set.setdefault(swap.set_index, []).append(swap)
        for swaps in per_set.values():
            previous: Tuple[int, int] = (0, 0)
            for index, swap in enumerate(swaps):
                swap.hit_rate_before = _window_rate(
                    previous[0], previous[1], swap.access, swap.hits
                )
                following = swaps[index + 1] if index + 1 < len(swaps) \
                    else None
                if following is not None:
                    swap.hit_rate_after = _window_rate(
                        swap.access, swap.hits,
                        following.access, following.hits,
                    )
                else:
                    swap.hit_rate_after = _window_rate(
                        swap.access, swap.hits, final_accesses, final_hits
                    )
                previous = (swap.access, swap.hits)
        return self._swaps

    def _check_conservation(self) -> None:
        if self._lent_total != self._borrowed_total:
            raise InvariantViolation(
                "capacity-flow conservation violated: "
                f"lent {self._lent_total} way·accesses != "
                f"borrowed {self._borrowed_total}"
            )
        attributed = (
            sum(e.spills for e in self._closed)
            + sum(e.spills for e in self._open_by_taker.values())
        )
        # Episodes past the retention cap kept counting into the flow
        # account, so reconcile against that when detail was dropped.
        if self.episodes_dropped == 0:
            if attributed + self._orphan_spills != self._spill_events:
                raise InvariantViolation(
                    "spill conservation violated: "
                    f"{attributed} episode spills + "
                    f"{self._orphan_spills} orphans != "
                    f"{self._spill_events} spill events"
                )
        flow_spills = sum(
            flow["spills_out"] for flow in self._flows.values()
        )
        if flow_spills + self._orphan_spills != self._spill_events:
            raise InvariantViolation(
                "spill conservation violated: "
                f"{flow_spills} accounted spills + "
                f"{self._orphan_spills} orphans != "
                f"{self._spill_events} spill events"
            )

    def seal(
        self,
        final_accesses: int,
        final_hits: int,
        counters: Optional[Dict[str, List[int]]] = None,
        final_clock: Optional[int] = None,
    ) -> RunLedger:
        """Close the books and return the :class:`RunLedger`.

        ``final_accesses``/``final_hits`` are the run's closing
        ``stats`` values (they terminate the last swap window);
        ``final_clock`` defaults to the latest event clock seen.
        ``counters`` is the scheme's ``ledger_counters()`` snapshot,
        attached verbatim for :mod:`repro.obs.explain`.  Conservation
        violations raise
        :class:`~repro.common.errors.InvariantViolation`.
        """
        if self._sealed:
            raise ConfigError("LedgerSink is already sealed")
        self._sealed = True
        if final_clock is None:
            final_clock = max(
                [self._last_clock.get(e.giver, e.start)
                 for e in self._open_by_taker.values()]
                + [e.end or 0 for e in self._closed]
                + [s.clock for s in self._swaps]
                + [0]
            )
        for episode in list(self._open_by_taker.values()):
            self._close(episode, final_clock, OPEN_AT_SEAL)
        self._check_conservation()
        episodes = sorted(
            self._closed, key=lambda e: (e.start, e.taker, e.giver)
        )
        swaps = self._resolve_swap_windows(final_accesses, final_hits)
        totals = {
            "lent": self._lent_total,
            "borrowed": self._borrowed_total,
            "spill_events": self._spill_events,
            "coop_hit_events": self._coop_hit_events,
            "coupling_events": self._coupling_events,
            "decoupling_events": self._decoupling_events,
            "orphan_spills": self._orphan_spills,
            "orphan_coop_hits": self._orphan_coop_hits,
            "orphan_decouplings": self._orphan_decouplings,
            "orphan_evictions": self._orphan_evictions,
        }
        return RunLedger(
            coupling_episodes=episodes,
            swap_episodes=swaps,
            flows=self._flows,
            totals=totals,
            counters=counters,
            final_accesses=final_accesses,
            final_hits=final_hits,
            episodes_dropped=self.episodes_dropped,
            swaps_dropped=self.swaps_dropped,
            events_seen=self.events_seen,
        )
