"""Bench-history ledger: throughput trajectory across recordings.

``BENCH_throughput.json`` pins a single snapshot — the last recorded
accesses/sec per scheme — which the BENCH_GUARD CI step compares fresh
measurements against.  What it cannot answer is *trajectory*: did STEM
get slower three recordings ago and nobody noticed because each step
stayed inside the guard ratio?

The ledger fixes that.  Every ``BENCH_RECORD=1`` run **appends** one
entry to ``BENCH_HISTORY.jsonl`` — schemes with their accesses/sec and
run-manifest hashes (provenance: a rate is only comparable when the
workload hash matches), plus the machine parameters that make
cross-entry comparison honest (platform, Python version, CPU count,
package version).  The file is append-only JSONL, so history survives
re-records and merges cleanly.

On top of the ledger sit:

* :func:`detect_regressions` — per-scheme verdicts comparing the latest
  entry against the best of a trailing reference window, used by the
  BENCH_GUARD step to report trajectory next to its hard floor;
* :func:`render_history` — the ``repro bench --history`` trend view
  (per-scheme sparkline, best/latest, drift).
"""

from __future__ import annotations

import json
import platform
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro._version import __version__
from repro.common.errors import ConfigError

#: Trailing entries (excluding the latest) a regression check uses as
#: its reference window.
DEFAULT_REFERENCE_WINDOW = 5

#: Latest/reference ratio below which a scheme counts as regressed.
DEFAULT_REGRESSION_RATIO = 0.8

#: Unicode block sparkline alphabet, slowest to fastest.
_SPARK = "▁▂▃▄▅▆▇█"


def machine_params() -> Dict[str, Any]:
    """The environment fingerprint stamped on every ledger entry."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def make_entry(
    schemes: Dict[str, Dict[str, Any]],
    recorded_at: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ledger entry from per-scheme measurement dicts.

    ``schemes`` maps scheme key to (at least) ``accesses_per_sec`` and
    ``manifest_hash`` — the same shape ``BENCH_throughput.json``
    stores.
    """
    return {
        "recorded_at": (
            recorded_at
            if recorded_at is not None
            else datetime.now(timezone.utc).isoformat(timespec="seconds")
        ),
        "package_version": __version__,
        "machine": machine_params(),
        "schemes": {
            name: {
                "accesses_per_sec": values["accesses_per_sec"],
                "manifest_hash": values.get("manifest_hash"),
            }
            for name, values in sorted(schemes.items())
        },
    }


def append_history(
    path: Union[str, Path], entry: Dict[str, Any]
) -> Path:
    """Append one entry to the ledger (one JSON line, flushed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read the ledger, oldest first; a missing file is empty history.

    A malformed *final* line (a recorder killed mid-append) is dropped
    with the same tolerance the event-log reader applies; a malformed
    line anywhere else is corruption and raises.
    """
    path = Path(path)
    if not path.is_file():
        return []
    entries: List[Dict[str, Any]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    content = [
        (number, line) for number, line in enumerate(lines, start=1)
        if line.strip()
    ]
    for position, (number, line) in enumerate(content):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == len(content) - 1:
                break
            raise ConfigError(
                f"{path}:{number}: malformed ledger line"
            ) from exc
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def scheme_trajectories(
    history: List[Dict[str, Any]]
) -> Dict[str, List[float]]:
    """Per-scheme accesses/sec across entries (gaps skipped)."""
    trajectories: Dict[str, List[float]] = {}
    for entry in history:
        for name, values in entry.get("schemes", {}).items():
            rate = values.get("accesses_per_sec")
            if isinstance(rate, (int, float)):
                trajectories.setdefault(name, []).append(float(rate))
    return trajectories


@dataclass(frozen=True)
class TrajectoryVerdict:
    """Regression verdict for one scheme's throughput trajectory."""

    scheme: str
    latest: float
    reference: float
    ratio: float
    regressed: bool

    def __str__(self) -> str:
        direction = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.scheme}: {self.latest:,.0f} acc/s vs reference "
            f"{self.reference:,.0f} ({self.ratio:.2f}x) — {direction}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (``--history --json``, server)."""
        return {
            "scheme": self.scheme,
            "latest": self.latest,
            "reference": self.reference,
            "ratio": self.ratio,
            "regressed": self.regressed,
        }


def detect_regressions(
    history: List[Dict[str, Any]],
    ratio: float = DEFAULT_REGRESSION_RATIO,
    reference_window: int = DEFAULT_REFERENCE_WINDOW,
) -> List[TrajectoryVerdict]:
    """Compare each scheme's newest rate against its recent best.

    The reference is the **best** rate over the last
    ``reference_window`` entries preceding the newest one — best, not
    mean, so a sequence of small step-downs that never individually
    trips the guard still shows up as drift from the peak.  Schemes
    with fewer than two data points have no trajectory and are skipped.
    """
    if not 0 < ratio <= 1:
        raise ConfigError(f"ratio must lie in (0, 1], got {ratio}")
    if reference_window < 1:
        raise ConfigError(
            f"reference_window must be >= 1, got {reference_window}"
        )
    verdicts: List[TrajectoryVerdict] = []
    for scheme, rates in sorted(scheme_trajectories(history).items()):
        if len(rates) < 2:
            continue
        latest = rates[-1]
        reference = max(rates[-1 - reference_window:-1])
        achieved = latest / reference if reference > 0 else 1.0
        verdicts.append(TrajectoryVerdict(
            scheme=scheme,
            latest=latest,
            reference=reference,
            ratio=round(achieved, 4),
            regressed=achieved < ratio,
        ))
    return verdicts


def history_document(
    history: List[Dict[str, Any]],
    ratio: float = DEFAULT_REGRESSION_RATIO,
    reference_window: int = DEFAULT_REFERENCE_WINDOW,
) -> Dict[str, Any]:
    """The machine-readable trajectory document.

    This is what ``repro bench --history --json`` prints and the
    observatory serves at ``/api/regressions``: the ledger span, every
    per-scheme :class:`TrajectoryVerdict`, and the sorted list of
    regressed schemes — so CI can gate on trajectory (exit code 3)
    without parsing the human trend view.
    """
    verdicts = detect_regressions(
        history, ratio=ratio, reference_window=reference_window
    )
    return {
        "entries": len(history),
        "first_recorded_at": (
            history[0].get("recorded_at") if history else None
        ),
        "last_recorded_at": (
            history[-1].get("recorded_at") if history else None
        ),
        "ratio": ratio,
        "reference_window": reference_window,
        "verdicts": [verdict.as_dict() for verdict in verdicts],
        "regressed": sorted(
            verdict.scheme for verdict in verdicts if verdict.regressed
        ),
    }


def _sparkline(rates: List[float]) -> str:
    low, high = min(rates), max(rates)
    if high <= low:
        return _SPARK[-1] * len(rates)
    span = high - low
    return "".join(
        _SPARK[int((rate - low) / span * (len(_SPARK) - 1))]
        for rate in rates
    )


def render_history(
    history: List[Dict[str, Any]],
    ratio: float = DEFAULT_REGRESSION_RATIO,
) -> str:
    """The ``repro bench --history`` trend view."""
    if not history:
        return "bench history: no entries recorded yet\n"
    lines = [
        f"bench history: {len(history)} recording(s), "
        f"{history[0].get('recorded_at', '?')} → "
        f"{history[-1].get('recorded_at', '?')}",
    ]
    verdicts = {v.scheme: v for v in detect_regressions(history, ratio=ratio)}
    trajectories = scheme_trajectories(history)
    width = max(len(name) for name in trajectories) + 2
    for scheme, rates in sorted(trajectories.items()):
        verdict = verdicts.get(scheme)
        if verdict is None:
            note = "(single point)"
        elif verdict.regressed:
            note = f"REGRESSED {verdict.ratio:.2f}x of recent best"
        else:
            note = f"{verdict.ratio:.2f}x of recent best"
        lines.append(
            f"  {scheme.ljust(width)} {_sparkline(rates)}  "
            f"latest {rates[-1]:>12,.0f} acc/s  "
            f"best {max(rates):>12,.0f}  {note}"
        )
    regressed = [v for v in verdicts.values() if v.regressed]
    if regressed:
        lines.append(
            f"{len(regressed)} scheme(s) below {ratio:.2f}x of their "
            f"recent best: "
            + ", ".join(sorted(v.scheme for v in regressed))
        )
    return "\n".join(lines) + "\n"
