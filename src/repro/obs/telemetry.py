"""Live fleet telemetry: cross-process spans, heartbeats and samples.

A thousand-cell grid running under the
:class:`~repro.sim.parallel.ParallelRunner` used to be a black box until
the final matrix came back.  This module is the *write side* of the
control plane that fixes that: every run directory becomes a per-run
telemetry channel of append-only JSONL status files

* ``grid.jsonl`` — written by the **parent**: the grid span, one
  ``cell_plan`` record per cell (label, workload, expected accesses),
  cache hits, and completion records as workers report back;
* ``cells/cell-NNNNN.jsonl`` — written by the **worker** executing that
  cell: a cell span nested under the grid span, ``phase`` spans
  (warm-up / measured) nested under the cell, wall-clock-throttled
  heartbeats carrying a resource sample (RSS, CPU time, GC collections,
  accesses/sec), retry attempts, and the final status.

The read side — merging, stall verdicts, ETA, ``repro top`` — lives in
:mod:`repro.obs.fleet`.

Span hierarchy
--------------
``grid-<id>`` → ``grid-<id>/cell-NNNNN`` → phase (``warmup`` /
``measured``).  Cell span ids are a pure function of the grid span id
and the cell index, so the parent can describe a span (in
``cell_plan``) before any worker exists, and the worker derives the
same id from the :class:`TelemetrySpec` it was handed — no id handshake
crosses the process boundary.

Zero-overhead contract (extends DESIGN.md §10)
----------------------------------------------
Exactly like the :class:`~repro.obs.tracer.Tracer` and the metrics
registry, telemetry costs nothing unless armed: with
``telemetry=None`` (the default everywhere) the simulation loop is
byte-identical to the uninstrumented path.  When armed, the hot loop is
chunked on the same stride the watchdog already uses and the beat
callback throttles itself by wall clock, so writes happen a few times
per second regardless of simulation speed.  Telemetry never touches
scheme state, RNG draws, or statistics — results are byte-identical
with it on or off.

Crash behaviour: status files are appended line-by-line and flushed per
event, and writers register an ``atexit`` flush, so a dying worker
loses at most one truncated final line — which the reader tolerates,
mirroring ``load_events(strict=False)``.
"""

from __future__ import annotations

import atexit
import gc
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

try:  # resource is POSIX-only; telemetry degrades gracefully without it
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Subdirectory of the run dir holding per-cell status files.
CELLS_DIR = "cells"

#: Default wall-clock spacing between heartbeat lines.
DEFAULT_HEARTBEAT_SECONDS = 0.25


def new_grid_span_id() -> str:
    """A fresh, process-unique grid span id."""
    return f"grid-{uuid.uuid4().hex[:10]}"


def cell_span_id(grid_span: str, index: int) -> str:
    """The cell span id for ``index`` under ``grid_span``.

    Deterministic so parent (planning) and worker (executing) name the
    same span without coordination.
    """
    return f"{grid_span}/cell-{index:05d}"


def cell_status_path(run_dir: Union[str, Path], index: int) -> Path:
    """Where cell ``index`` writes its status file."""
    return Path(run_dir) / CELLS_DIR / f"cell-{index:05d}.jsonl"


def _rss_kb() -> Optional[int]:
    """Current resident set size in KiB, or None if unknowable.

    Prefers ``/proc/self/statm`` (instantaneous) and falls back to
    ``ru_maxrss`` (high-water mark) where /proc is unavailable.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    if resource is not None:
        try:
            return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except OSError:  # pragma: no cover - getrusage basically never fails
            pass
    return None


def _gc_collections() -> int:
    """Total collections across all generations since interpreter start."""
    return sum(stat["collections"] for stat in gc.get_stats())


def resource_sample() -> Dict[str, Any]:
    """One point-in-time worker resource sample."""
    return {
        "rss_kb": _rss_kb(),
        "cpu_seconds": round(time.process_time(), 6),
        "gc_collections": _gc_collections(),
    }


@dataclass(frozen=True)
class TelemetrySpec:
    """Picklable description of the telemetry channel for one grid.

    The :class:`~repro.sim.parallel.ParallelRunner` builds one of these
    per run and ships it alongside each :class:`CellSpec` into the pool
    workers; a worker combines it with the cell index to reconstruct
    its span id and status-file path.  ``None`` (everywhere it is
    accepted) means telemetry is disabled and costs nothing.
    """

    run_dir: str
    grid_span: str
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS


class _JsonlAppender:
    """Append-one-JSON-line-per-event file with per-event flush.

    Opened lazily in append mode so retries and parent/worker handoffs
    never truncate earlier records; registers an ``atexit`` close so a
    worker that exits without unwinding still flushes its tail.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None

    def _ensure_open(self) -> TextIO:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            atexit.register(self.close)
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        handle = self._ensure_open()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            atexit.unregister(self.close)

    def __enter__(self) -> "_JsonlAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CellTelemetry:
    """Worker-side status writer for one grid cell.

    Emits the cell span, nested phase spans, throttled heartbeats with
    resource samples, retry attempts and the final verdict into the
    cell's status file.  Handed down ``guarded_run`` → ``run_trace`` →
    the chunked simulation loop, whose per-chunk callback is
    :meth:`beat`.
    """

    def __init__(
        self,
        spec: TelemetrySpec,
        index: int,
        label: str,
        workload: str,
    ) -> None:
        self.spec = spec
        self.index = index
        self.label = label
        self.workload = workload
        self.span_id = cell_span_id(spec.grid_span, index)
        self._writer = _JsonlAppender(cell_status_path(spec.run_dir, index))
        self._phase: Optional[str] = None
        self._last_beat_time = 0.0
        self._last_beat_accesses = 0

    def _emit(self, kind: str, **fields: Any) -> None:
        record = {
            "kind": kind,
            "cell": self.index,
            "t": round(time.time(), 6),
        }
        record.update(fields)
        self._writer.append(record)

    def cell_start(
        self,
        total_accesses: int,
        seed: int,
        watchdog_seconds: Optional[float] = None,
        max_attempts: int = 1,
    ) -> None:
        """Open the cell span (one per guarded run, before attempt 1)."""
        now = time.monotonic()
        self._last_beat_time = now
        self._last_beat_accesses = 0
        self._emit(
            "cell_start",
            span_id=self.span_id,
            parent=self.spec.grid_span,
            label=self.label,
            workload=self.workload,
            pid=os.getpid(),
            total_accesses=total_accesses,
            seed=seed,
            watchdog_seconds=watchdog_seconds,
            max_attempts=max_attempts,
            **resource_sample(),
        )

    def phase_start(self, phase: str, at_access: int) -> None:
        """Open a phase span (``warmup`` / ``measured``) under the cell."""
        self._phase = phase
        self._emit("phase_start", phase=phase, accesses=at_access)

    def phase_end(self, phase: str, at_access: int) -> None:
        """Close the current phase span."""
        self._phase = None
        self._emit("phase_end", phase=phase, accesses=at_access)

    def beat(self, accesses_done: int) -> None:
        """Heartbeat from the simulation loop (called every chunk).

        Throttled by wall clock: a line is written at most every
        ``heartbeat_seconds``, carrying the absolute access position,
        the accesses/sec since the previous beat, and a resource
        sample.  The un-throttled path is one ``monotonic()`` call and
        a comparison — invisible next to a chunk of simulated accesses.
        """
        now = time.monotonic()
        elapsed = now - self._last_beat_time
        if elapsed < self.spec.heartbeat_seconds:
            return
        rate = (accesses_done - self._last_beat_accesses) / elapsed
        self._last_beat_time = now
        self._last_beat_accesses = accesses_done
        self._emit(
            "heartbeat",
            phase=self._phase,
            accesses=accesses_done,
            rate=round(rate, 1),
            **resource_sample(),
        )

    def attempt_failed(self, attempt: int, seed: int, error: str) -> None:
        """Record one failed attempt (the RetryPolicy will reseed)."""
        self._emit("attempt_failed", attempt=attempt, seed=seed, error=error)

    def cell_end(
        self, status: str, error_type: Optional[str] = None
    ) -> None:
        """Close the cell span with its final verdict (``ok``/``failed``)."""
        self._emit(
            "cell_end",
            status=status,
            error_type=error_type,
            **resource_sample(),
        )

    def close(self) -> None:
        """Flush and close the status file (idempotent)."""
        self._writer.close()

    def __enter__(self) -> "CellTelemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class GridTelemetry:
    """Parent-side writer for the grid span and per-cell bookkeeping.

    The :class:`~repro.sim.parallel.ParallelRunner` opens one of these
    when a run directory is supplied: it plans every cell up front (so
    ``repro top`` can show pending work before any worker starts),
    records run-cache hits, and appends a completion record as each
    worker reports back.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        (self.run_dir / CELLS_DIR).mkdir(exist_ok=True)
        self.grid_span = new_grid_span_id()
        self.spec = TelemetrySpec(
            run_dir=str(self.run_dir),
            grid_span=self.grid_span,
            heartbeat_seconds=heartbeat_seconds,
        )
        self._writer = _JsonlAppender(self.run_dir / "grid.jsonl")

    def _emit(self, kind: str, **fields: Any) -> None:
        record = {"kind": kind, "t": round(time.time(), 6)}
        record.update(fields)
        self._writer.append(record)

    def grid_start(self, total_cells: int) -> None:
        """Open the grid span."""
        self._emit(
            "grid_start",
            span_id=self.grid_span,
            pid=os.getpid(),
            total_cells=total_cells,
        )

    def cell_plan(
        self,
        index: int,
        label: str,
        workload: str,
        total_accesses: int,
        watchdog_seconds: Optional[float] = None,
    ) -> None:
        """Describe one cell before execution (pending state)."""
        self._emit(
            "cell_plan",
            cell=index,
            span_id=cell_span_id(self.grid_span, index),
            label=label,
            workload=workload,
            total_accesses=total_accesses,
            watchdog_seconds=watchdog_seconds,
        )

    def cell_cached(self, index: int) -> None:
        """Cell served from the content-addressed run cache."""
        self._emit("cell_cached", cell=index)

    def cell_done(self, index: int, status: str) -> None:
        """Parent-side completion record (``ok``/``failed``)."""
        self._emit("cell_done", cell=index, status=status)

    def grid_end(self) -> None:
        """Close the grid span."""
        self._emit("grid_end", span_id=self.grid_span)

    def close(self) -> None:
        """Flush and close the grid file (idempotent)."""
        self._writer.close()

    def __enter__(self) -> "GridTelemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_status_lines(
    path: Union[str, Path]
) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse one append-only status file, tolerating a torn tail.

    Returns ``(records, truncated)``.  A malformed **final** line is
    the signature of a process killed mid-write and is silently
    dropped (``truncated=True``); a malformed line anywhere else is
    skipped too — the aggregator must never crash on a live, half
    written channel.
    """
    records: List[Dict[str, Any]] = []
    truncated = False
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return records, truncated
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            truncated = True
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, truncated
