"""The event bus: a tracer object injected into every cache scheme.

Design goal: **zero overhead when disabled**.  Every cache holds a
:class:`Tracer` (defaulting to the shared :data:`NULL_TRACER`), and each
tracepoint is guarded::

    tracer = self.tracer
    if tracer.enabled:
        tracer.emit(Eviction(...))

so a disabled tracer costs one attribute read per *event site* (not per
access) and never constructs an event object.  Enabled tracers fan
events out to one or more sinks implementing :class:`TraceSink`.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive a stream of :class:`TraceEvent`."""

    def record(self, event: TraceEvent) -> None:
        """Consume one event."""
        ...


class Tracer:
    """Fan-out event bus; enabled iff it has at least one sink."""

    __slots__ = ("enabled", "events_emitted", "_sinks")

    def __init__(self, *sinks: TraceSink) -> None:
        self._sinks: List[TraceSink] = list(sinks)
        self.enabled: bool = bool(self._sinks)
        self.events_emitted: int = 0

    def add_sink(self, sink: TraceSink) -> None:
        """Attach another sink; enables the tracer."""
        self._sinks.append(sink)
        self.enabled = True

    def emit(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every sink (no-op without sinks)."""
        if not self._sinks:
            return
        self.events_emitted += 1
        for sink in self._sinks:
            sink.record(event)

    def close(self) -> None:
        """Close every sink that supports closing (e.g. JSONL files)."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()


#: Shared disabled tracer — the default for every cache scheme.  It is
#: intentionally a plain disabled :class:`Tracer` so the guarded hot
#: path is byte-for-byte the same whether a cache was built with no
#: tracer argument or with an explicit no-op.
NULL_TRACER = Tracer()
