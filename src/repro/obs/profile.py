"""Hot-loop profiling: wall-clock phase timers around simulation runs.

:func:`~repro.sim.simulator.run_trace` always times its warm-up and
measured loops with :func:`time.perf_counter` and records them in the
run manifest; this module aggregates those timings across runs:

* :class:`RunProfiler` — collect per-run phase timings from
  ``RunResult`` objects (the runner and CLI feed it), render a text
  report, and export a ``pytest-benchmark``-style JSON document
  (compatible with the ``BENCH_*.json`` artefacts the benchmark
  harness produces) so later optimisation PRs can diff throughput.
* :class:`PhaseTimer` — a context manager for timing arbitrary blocks
  (the ``figure --profile`` CLI path wraps whole figure regenerations).
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Union

from repro.common.io import atomic_write_text


@dataclass(frozen=True)
class ProfileRecord:
    """Phase timings of one (scheme, trace) run."""

    scheme: str
    trace_name: str
    warmup_seconds: float
    measured_seconds: float
    measured_accesses: int

    @property
    def wall_clock_seconds(self) -> float:
        """Warm-up plus measured wall-clock."""
        return self.warmup_seconds + self.measured_seconds

    @property
    def accesses_per_second(self) -> float:
        """Measured-phase simulation throughput."""
        if self.measured_seconds <= 0.0:
            return 0.0
        return self.measured_accesses / self.measured_seconds


class PhaseTimer:
    """Context manager timing one named phase with ``perf_counter``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.seconds = perf_counter() - self._start
            self._start = None


class RunProfiler:
    """Accumulates :class:`ProfileRecord` rows across a batch of runs.

    When grids run with a content-addressed run cache, the runner calls
    :meth:`note_run_cache` so the report can show how much simulation
    the cache avoided.
    """

    def __init__(self) -> None:
        self.records: List[ProfileRecord] = []
        self.run_cache_hits = 0
        self.run_cache_misses = 0
        self.run_cache_corrupt = 0

    def note_run_cache(
        self, hits: int, misses: int, corrupt: int = 0
    ) -> None:
        """Record run-cache traffic observed by a grid run.

        ``corrupt`` counts entries the cache quarantined (renamed to
        ``<key>.corrupt``) because they were unreadable — surfaced here
        so a damaged cache directory is visible in the profile report
        instead of hiding inside the miss count.
        """
        self.run_cache_hits += hits
        self.run_cache_misses += misses
        self.run_cache_corrupt += corrupt

    def add(self, result: Any) -> Optional[ProfileRecord]:
        """Ingest one ``RunResult`` (reads its attached manifest)."""
        manifest = getattr(result, "manifest", None)
        if manifest is None:
            return None
        record = ProfileRecord(
            scheme=result.scheme,
            trace_name=result.trace_name,
            warmup_seconds=manifest.warmup_seconds,
            measured_seconds=manifest.measured_seconds,
            measured_accesses=manifest.measured_accesses,
        )
        self.records.append(record)
        return record

    def per_scheme(self) -> Dict[str, Dict[str, float]]:
        """Aggregate totals per scheme: seconds, accesses, accesses/sec."""
        table: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            row = table.setdefault(
                record.scheme,
                {"runs": 0, "warmup_s": 0.0, "measured_s": 0.0,
                 "accesses": 0, "accesses_per_sec": 0.0},
            )
            row["runs"] += 1
            row["warmup_s"] += record.warmup_seconds
            row["measured_s"] += record.measured_seconds
            row["accesses"] += record.measured_accesses
        for row in table.values():
            if row["measured_s"] > 0.0:
                row["accesses_per_sec"] = row["accesses"] / row["measured_s"]
        return table

    def render(self) -> str:
        """Plain-text profile report (the ``--profile`` CLI output)."""
        lines = [
            f"{'scheme':>12s} {'runs':>5s} {'warmup_s':>9s} "
            f"{'measured_s':>11s} {'acc/sec':>12s}"
        ]
        for scheme, row in self.per_scheme().items():
            lines.append(
                f"{scheme:>12s} {int(row['runs']):>5d} "
                f"{row['warmup_s']:>9.3f} {row['measured_s']:>11.3f} "
                f"{row['accesses_per_sec']:>12,.0f}"
            )
        total_s = sum(r.wall_clock_seconds for r in self.records)
        lines.append(f"total simulation wall-clock: {total_s:.3f}s "
                     f"over {len(self.records)} run(s)")
        if self.run_cache_hits or self.run_cache_misses:
            line = (
                f"run cache: {self.run_cache_hits} hit(s), "
                f"{self.run_cache_misses} miss(es)"
            )
            if self.run_cache_corrupt:
                line += (
                    f", {self.run_cache_corrupt} corrupt "
                    f"entr{'y' if self.run_cache_corrupt == 1 else 'ies'} "
                    "quarantined"
                )
            lines.append(line)
        return "\n".join(lines)

    def to_bench_json(self) -> Dict[str, Any]:
        """A ``pytest-benchmark``-shaped document of the collected runs.

        Benchmarks are sorted by (group, name) so the JSON is
        byte-stable regardless of the order runs were collected —
        parallel grids complete cells in scheduling order, and
        ``--profile-json`` artefacts must still diff cleanly.
        """
        benchmarks = []
        for record in self.records:
            seconds = record.measured_seconds
            benchmarks.append({
                "name": f"{record.scheme}[{record.trace_name}]",
                "group": record.scheme,
                "params": {"trace": record.trace_name},
                "stats": {
                    "min": seconds,
                    "max": seconds,
                    "mean": seconds,
                    "stddev": 0.0,
                    "rounds": 1,
                    "ops": record.accesses_per_second,
                },
                "extra_info": {
                    "warmup_seconds": record.warmup_seconds,
                    "measured_accesses": record.measured_accesses,
                },
            })
        benchmarks.sort(key=lambda row: (row["group"], row["name"]))
        document: Dict[str, Any] = {
            "machine_info": {
                "python_version": sys.version.split()[0],
                "platform": platform.platform(),
            },
            "benchmarks": benchmarks,
        }
        if self.run_cache_hits or self.run_cache_misses:
            document["run_cache"] = {
                "hits": self.run_cache_hits,
                "misses": self.run_cache_misses,
            }
            if self.run_cache_corrupt:
                document["run_cache"]["corrupt"] = self.run_cache_corrupt
        return document

    def save_bench_json(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_bench_json` to ``path`` atomically."""
        atomic_write_text(
            path,
            json.dumps(self.to_bench_json(), indent=2, sort_keys=True),
        )
