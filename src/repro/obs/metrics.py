"""Windowed metrics: counters and gauges sampled on access windows.

The paper's dynamics (Figure 1, §3) are told in fixed-length sampling
intervals, not end-of-run totals.  :class:`MetricsRegistry` generalises
``sim/timeline.py`` into a first-class metrics surface: it is driven
*externally* at access-window boundaries and, at each boundary, records

* the per-window delta of every :class:`~repro.common.stats.CacheStats`
  counter (misses, spills, shadow hits, ... — derived from the
  dataclass, so new counters are tracked automatically);
* derived per-window rates (miss rate, shadow-hit rate, spill accept
  rate);
* instantaneous **gauges** published by the cache through an optional
  ``metrics_gauges()`` method (occupancy fraction, SC_S/SC_T
  saturation, giver-heap depth, coupling population, MSHR and
  write-buffer occupancy, ...);
* optional **per-set** rows from ``metrics_per_set()`` (the occupancy
  histogram behind the HTML report's heatmap).

Zero-overhead contract
----------------------
Like :class:`~repro.obs.tracer.Tracer`, metrics cost nothing unless
asked for: no cache ever calls into this module from its access path.
Sampling is driven by the harness (``run_trace(...,
metrics_window=N)`` or :func:`~repro.sim.timeline.run_timeline`), which
simply stops the simulation loop at window boundaries and calls
:meth:`MetricsRegistry.sample`.  With ``metrics_window=None`` (the
default) the hot loop is byte-identical to the uninstrumented path.
Because every ``access_batch`` fast path flushes its locally
accumulated statistics at chunk boundaries — and the harness aligns
chunks with windows — batch and scalar execution produce identical
series (DESIGN.md §10).

The finished series travels as a :class:`MetricsSeries` attached to
``RunResult.series``, round-trips through the run cache, and exports
as JSONL or Prometheus-style text via ``common/io.atomic_write``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.common.io import atomic_write
from repro.common.stats import counter_field_names

#: Derived per-window rates appended to every sample.
DERIVED_RATES = ("miss_rate", "shadow_hit_rate", "spill_accept_rate")


def _format_value(value: float) -> str:
    """Deterministic short decimal form for text exports.

    Non-finite samples use the spellings the Prometheus text format
    defines (``NaN``, ``+Inf``, ``-Inf``) rather than Python's.
    """
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help_text(value: str) -> str:
    """Escape ``# HELP`` text per the Prometheus exposition format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


#: Hand-written HELP text for the derived rates; counters and gauges
#: get uniform generated text.
_HELP_OVERRIDES = {
    "miss_rate": "Misses over accesses in the final sampled window.",
    "shadow_hit_rate": "Shadow-directory hits over misses in the final "
                       "sampled window.",
    "spill_accept_rate": "Accepted spills over offered spills in the "
                         "final sampled window.",
}


def _help_text(name: str, kind: str) -> str:
    """Deterministic one-line HELP text for one metric family."""
    override = _HELP_OVERRIDES.get(name)
    if override is not None:
        return override
    if kind == "counter":
        return (
            f"Sum of per-window deltas of the '{name}' counter over "
            "the measured phase."
        )
    return f"Final sampled value of the '{name}' gauge."


@dataclass
class MetricsSeries:
    """Per-window metric series for one (scheme, trace) run.

    ``series`` maps metric name to one value per completed window
    (counter deltas, derived rates and gauges share the namespace;
    gauge names are chosen not to collide with counter fields).
    ``set_series`` maps a per-set metric name (e.g. ``occupancy``) to
    one row per window, each row holding one value per cache set.
    """

    window_length: int
    scheme: str
    trace_name: str
    window_accesses: List[int] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    set_series: Dict[str, List[List[int]]] = field(default_factory=dict)

    @property
    def num_windows(self) -> int:
        """Number of completed windows recorded."""
        return len(self.window_accesses)

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return {
            "window_length": self.window_length,
            "scheme": self.scheme,
            "trace_name": self.trace_name,
            "window_accesses": list(self.window_accesses),
            "series": {name: list(vals) for name, vals in self.series.items()},
            "set_series": {
                name: [list(row) for row in rows]
                for name, rows in self.set_series.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsSeries":
        """Rebuild a series stored by :meth:`as_dict`."""
        try:
            return cls(
                window_length=payload["window_length"],
                scheme=payload["scheme"],
                trace_name=payload["trace_name"],
                window_accesses=list(payload["window_accesses"]),
                series={
                    name: list(vals)
                    for name, vals in payload["series"].items()
                },
                set_series={
                    name: [list(row) for row in rows]
                    for name, rows in payload.get("set_series", {}).items()
                },
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ConfigError(f"malformed metrics series payload: {exc}") from exc

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One header line plus one JSON object per window."""
        lines = [json.dumps(
            {
                "kind": "header",
                "scheme": self.scheme,
                "trace": self.trace_name,
                "window_length": self.window_length,
                "num_windows": self.num_windows,
            },
            sort_keys=True,
        )]
        names = sorted(self.series)
        for index in range(self.num_windows):
            lines.append(json.dumps(
                {
                    "kind": "window",
                    "index": index,
                    "accesses": self.window_accesses[index],
                    "values": {
                        name: self.series[name][index] for name in names
                    },
                },
                sort_keys=True,
            ))
        return "\n".join(lines) + "\n"

    def to_prometheus(
        self, extra_labels: Optional[Dict[str, str]] = None
    ) -> str:
        """Prometheus-style exposition text over the whole run.

        Counter metrics report the window-delta sum (the measured-phase
        total); everything else is a gauge reporting its final sample.
        Every metric family carries ``# HELP`` and ``# TYPE`` lines and
        ``scheme``/``benchmark`` labels (``extra_labels`` — e.g. the
        observatory's ``run`` hash — are merged in, rendered in sorted
        label order).  Label values are escaped per the exposition
        format, non-finite gauges render as ``NaN``/``+Inf``/``-Inf``,
        and a series with no recorded windows produces an empty
        (zero-byte) exposition.
        """
        counters = set(counter_field_names())
        label_items = {
            "scheme": self.scheme,
            "benchmark": self.trace_name,
        }
        if extra_labels:
            label_items.update(extra_labels)
        labels = "{" + ",".join(
            f'{name}="{_escape_label_value(str(value))}"'
            for name, value in sorted(label_items.items())
        ) + "}"
        lines: List[str] = []
        for name in sorted(self.series):
            values = self.series[name]
            if not values:
                continue
            if name in counters:
                kind, value = "counter", float(sum(values))
            else:
                kind, value = "gauge", float(values[-1])
            metric = f"repro_{name}"
            lines.append(
                f"# HELP {metric} {_escape_help_text(_help_text(name, kind))}"
            )
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric}{labels} {_format_value(value)}")
        if not lines:
            return ""
        return "\n".join(lines) + "\n"

    def save_jsonl(self, path: Union[str, Path]) -> None:
        """Atomically write :meth:`to_jsonl` output to ``path``."""
        with atomic_write(Path(path)) as handle:
            handle.write(self.to_jsonl())

    def save_prometheus(self, path: Union[str, Path]) -> None:
        """Atomically write :meth:`to_prometheus` output to ``path``."""
        with atomic_write(Path(path)) as handle:
            handle.write(self.to_prometheus())


class MetricsRegistry:
    """Samples a cache's counters/gauges at access-window boundaries.

    The registry never touches the cache between samples; the driving
    loop runs ``window_length`` accesses, then calls :meth:`sample`
    with the number of accesses the window actually held (the final
    window of a trace may be short).
    """

    def __init__(
        self, window_length: int = 10_000, include_per_set: bool = True
    ) -> None:
        if window_length <= 0:
            raise ConfigError(
                f"window_length must be positive, got {window_length}"
            )
        self.window_length = window_length
        self.include_per_set = include_per_set
        self._tracked = counter_field_names()
        self._previous: Dict[str, int] = {name: 0 for name in self._tracked}
        self.window_accesses: List[int] = []
        self.series: Dict[str, List[float]] = {
            name: [] for name in self._tracked
        }
        for name in DERIVED_RATES:
            self.series[name] = []
        self.set_series: Dict[str, List[List[int]]] = {}

    @property
    def num_windows(self) -> int:
        """Number of samples taken so far."""
        return len(self.window_accesses)

    def sample(self, cache: Any, window_accesses: int) -> None:
        """Close one window: record counter deltas, rates and gauges."""
        snapshot = cache.stats.counter_snapshot()
        series = self.series
        previous = self._previous
        deltas: Dict[str, int] = {}
        for name in self._tracked:
            current = snapshot[name]
            delta = current - previous[name]
            previous[name] = current
            deltas[name] = delta
            series[name].append(delta)
        misses = deltas["misses"]
        series["miss_rate"].append(misses / max(1, deltas["accesses"]))
        series["shadow_hit_rate"].append(
            deltas["shadow_hits"] / max(1, misses)
        )
        offered = deltas["spills"] + deltas["spill_rejects"]
        series["spill_accept_rate"].append(
            deltas["spills"] / max(1, offered)
        )
        gauges = getattr(cache, "metrics_gauges", None)
        if gauges is not None:
            for name, value in gauges().items():
                series.setdefault(name, []).append(value)
        if self.include_per_set:
            per_set = getattr(cache, "metrics_per_set", None)
            if per_set is not None:
                for name, row in per_set().items():
                    self.set_series.setdefault(name, []).append(list(row))
        self.window_accesses.append(window_accesses)

    def to_series(self, scheme: str, trace_name: str) -> MetricsSeries:
        """Freeze the recorded samples into a :class:`MetricsSeries`."""
        return MetricsSeries(
            window_length=self.window_length,
            scheme=scheme,
            trace_name=trace_name,
            window_accesses=list(self.window_accesses),
            series={name: list(vals) for name, vals in self.series.items()},
            set_series={
                name: [list(row) for row in rows]
                for name, rows in self.set_series.items()
            },
        )
