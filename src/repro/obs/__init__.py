"""Observability: events, metrics, provenance, diffing and reports.

The legs of the layer (see DESIGN.md's tracepoint note, DESIGN.md §10
and the README's *Observability* section):

* **events + tracer + sinks** — a zero-overhead-when-disabled event bus.
  Every cache scheme takes an injectable :class:`Tracer` (defaulting to
  the disabled :data:`NULL_TRACER`) and emits typed events — evictions,
  spills and rejects, couplings/decouplings, policy swaps, shadow hits —
  into ring-buffer or JSONL sinks.
* **manifest** — a :class:`RunManifest` attached to every
  ``RunResult``: scheme config, trace metadata, seed, wall-clock and
  platform info, plus a content hash over the deterministic inputs.
* **profile + inspect** — phase timers aggregated by
  :class:`RunProfiler` (``--profile`` CLI flags) and event-log
  aggregations (coupling lifetimes, spill fan-out, swap cadence) behind
  the ``repro trace`` command.
* **metrics** — a :class:`MetricsRegistry` of counter deltas, derived
  rates and scheme gauges sampled on fixed access-window boundaries
  (``run_trace(..., metrics_window=N)``); series export as JSONL or
  Prometheus text and ride along inside ``RunResult``.
* **diff + htmlreport** — :func:`diff_results` compares two runs into
  a byte-stable delta report; :func:`render_run_html` renders one run
  or an A/B pair as a self-contained single-file HTML dashboard.
* **ledger + explain** — :class:`LedgerSink` reduces the event stream
  online into a sealed :class:`RunLedger` of coupling episodes,
  policy-swap windows and a per-set capacity-flow account (with
  conservation invariants checked at seal); :func:`attribute`
  decomposes the hit delta between two runs into exact spatial /
  temporal / residual components (DESIGN.md §14), rendered by
  ``repro explain``.
* **telemetry + fleet** — live fleet telemetry (DESIGN.md §11): a
  per-run channel of append-only JSONL status files carrying grid →
  cell → phase spans, wall-clock-throttled heartbeats with worker
  resource samples, and retries; :func:`load_fleet` merges the channel
  into a :class:`FleetStatus` with ETA and stall verdicts, rendered by
  ``repro top`` and exported as ``status.json``.
* **benchhistory** — the append-only ``BENCH_HISTORY.jsonl`` ledger of
  throughput recordings plus :func:`detect_regressions`, the
  trajectory detector behind ``repro bench --history`` and the
  BENCH_GUARD report.
* **index + server** — the run observatory (DESIGN.md §15):
  :class:`ArtifactIndex` is an SQLite catalog that idempotently
  ingests save_run files, campaign directories and the bench ledger
  into queryable runs/campaigns/bench-sample tables, and
  :func:`create_server` serves it over stdlib HTTP — ``/healthz``,
  ``/metrics``, ``/api/status``, ``/api/runs``, ``/api/regressions``
  and the same byte-stable HTML dashboards the CLI writes.
"""

from repro.obs.events import (
    EVENT_TYPES,
    CoopHit,
    Coupling,
    Decoupling,
    Eviction,
    FaultInjected,
    PolicySwap,
    SafeModeEntry,
    ShadowHit,
    Spill,
    SpillReject,
    TraceEvent,
    event_from_dict,
)
from repro.obs.diff import MetricDelta, RunDiff, SetDivergence, diff_results
from repro.obs.explain import Attribution, SetAttribution, attribute
from repro.obs.htmlreport import (
    diff_to_html,
    explain_to_html,
    render_run_html,
)
from repro.obs.ledger import (
    CouplingEpisode,
    LedgerSink,
    RunLedger,
    SwapEpisode,
)
from repro.obs.inspect import (
    CouplingSpan,
    coupling_lifetimes,
    coupling_spans,
    event_clock,
    event_counts,
    per_set_counts,
    spill_fanout,
    summarize_events,
    swap_cadence,
)
from repro.obs.benchhistory import (
    TrajectoryVerdict,
    append_history,
    detect_regressions,
    history_document,
    load_history,
    make_entry,
    render_history,
    scheme_trajectories,
)
from repro.obs.index import (
    DEFAULT_INDEX_PATH,
    ArtifactIndex,
    IngestReport,
)
from repro.obs.server import ObservatoryServer, create_server
from repro.obs.fleet import (
    CellFleetStatus,
    FleetStatus,
    load_fleet,
    render_top,
    write_status,
)
from repro.obs.metrics import MetricsRegistry, MetricsSeries
from repro.obs.manifest import RunManifest, build_manifest, describe_scheme
from repro.obs.telemetry import (
    CellTelemetry,
    GridTelemetry,
    TelemetrySpec,
    cell_span_id,
    cell_status_path,
    read_status_lines,
    resource_sample,
)
from repro.obs.profile import PhaseTimer, ProfileRecord, RunProfiler
from repro.obs.sinks import (
    FilteredSink,
    JsonlSink,
    RingBufferSink,
    load_events,
    load_events_report,
)
from repro.obs.tracer import NULL_TRACER, Tracer, TraceSink

__all__ = [
    "DEFAULT_INDEX_PATH",
    "EVENT_TYPES",
    "ArtifactIndex",
    "Attribution",
    "CellFleetStatus",
    "CellTelemetry",
    "CoopHit",
    "Coupling",
    "CouplingEpisode",
    "CouplingSpan",
    "Decoupling",
    "Eviction",
    "FaultInjected",
    "FilteredSink",
    "FleetStatus",
    "GridTelemetry",
    "IngestReport",
    "JsonlSink",
    "LedgerSink",
    "MetricDelta",
    "MetricsRegistry",
    "MetricsSeries",
    "NULL_TRACER",
    "ObservatoryServer",
    "PhaseTimer",
    "PolicySwap",
    "ProfileRecord",
    "RingBufferSink",
    "RunDiff",
    "RunLedger",
    "RunManifest",
    "RunProfiler",
    "SafeModeEntry",
    "SetAttribution",
    "SetDivergence",
    "ShadowHit",
    "Spill",
    "SpillReject",
    "SwapEpisode",
    "TelemetrySpec",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "TrajectoryVerdict",
    "append_history",
    "build_manifest",
    "cell_span_id",
    "cell_status_path",
    "create_server",
    "detect_regressions",
    "history_document",
    "load_fleet",
    "load_history",
    "make_entry",
    "read_status_lines",
    "render_history",
    "render_top",
    "resource_sample",
    "scheme_trajectories",
    "write_status",
    "attribute",
    "coupling_lifetimes",
    "coupling_spans",
    "describe_scheme",
    "diff_results",
    "diff_to_html",
    "event_clock",
    "explain_to_html",
    "event_counts",
    "event_from_dict",
    "load_events",
    "load_events_report",
    "per_set_counts",
    "render_run_html",
    "spill_fanout",
    "summarize_events",
    "swap_cadence",
]
