"""Attribute a hit/miss delta to STEM's spatiotemporal decisions.

The paper's Figure 6 framing claims STEM's wins decompose along two
axes: spatial (capacity lent by givers to takers) and temporal
(insertion-policy swaps on thrashing sets).  :func:`attribute` makes
that decomposition exact for a pair of finished runs:

* **spatial** — the delta in cooperative hits, i.e. hits that landed
  in borrowed space.  ``stats.cooperative_hits`` counts exactly those,
  so the global component needs no ledger at all.
* **temporal** — the delta in hits earned while the home set's
  insertion policy was swapped away from the default (BIP windows).
  These come from the ledger's attribution counters
  (``swapped_policy_hits``), maintained per set under the tracer guard.
* **residual** — everything else: replacement-order interactions,
  second-order effects of spills on the giver's own blocks, plain
  noise.  Defined as ``total - spatial - temporal``, so the three
  components sum to the total hit delta *exactly*, by construction,
  globally and per set.

All inputs are integers derived from deterministic runs, so the
report — text, JSON, or HTML — is byte-stable across repeated runs and
across serial/parallel execution.  Runs without a ledger degrade
gracefully: missing components are taken as zero and a note says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.classification import GainClassification, classify_gains

if TYPE_CHECKING:  # pragma: no cover — type-only, avoids an import cycle
    from repro.sim.simulator import RunResult


def _label(result: "RunResult") -> str:
    return f"{result.scheme} on {result.trace_name}"


def _counter(result: RunResult, name: str) -> Optional[List[int]]:
    ledger = result.ledger
    if ledger is None or ledger.counters is None:
        return None
    values = ledger.counters.get(name)
    return list(values) if values is not None else None


@dataclass(frozen=True)
class SetAttribution:
    """One set's share of the decomposition (all exact integers)."""

    set_index: int
    delta_hits: int
    spatial: int
    temporal: int

    @property
    def residual(self) -> int:
        return self.delta_hits - self.spatial - self.temporal

    def as_dict(self) -> Dict[str, int]:
        return {
            "set_index": self.set_index,
            "delta_hits": self.delta_hits,
            "spatial": self.spatial,
            "temporal": self.temporal,
            "residual": self.residual,
        }


@dataclass(frozen=True)
class Attribution:
    """The full decomposition :func:`attribute` produces."""

    label_a: str
    label_b: str
    total_delta_hits: int
    spatial: int
    temporal: int
    accesses_a: int
    accesses_b: int
    classification: GainClassification
    sets: List[SetAttribution] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    ledger_summary_a: Optional[Dict[str, Any]] = None
    ledger_summary_b: Optional[Dict[str, Any]] = None

    @property
    def residual(self) -> int:
        return self.total_delta_hits - self.spatial - self.temporal

    def as_dict(self) -> Dict[str, Any]:
        """JSON view; per-set rows in set order for stable bytes."""
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "total_delta_hits": self.total_delta_hits,
            "spatial": self.spatial,
            "temporal": self.temporal,
            "residual": self.residual,
            "accesses_a": self.accesses_a,
            "accesses_b": self.accesses_b,
            "class_label": self.classification.label,
            "sets": [
                row.as_dict()
                for row in sorted(self.sets, key=lambda r: r.set_index)
            ],
            "notes": list(self.notes),
            "ledger_a": self.ledger_summary_a,
            "ledger_b": self.ledger_summary_b,
        }

    def render(self, top_k: int = 8) -> str:
        """Fixed-width text report (byte-stable for identical inputs)."""
        lines = [f"explain: A = {self.label_a} -> B = {self.label_b}"]
        lines.append(
            f"total hit delta (B - A): {self.total_delta_hits:+d} hits "
            f"over {self.accesses_b} measured accesses"
        )

        def share(component: int) -> str:
            scale = abs(self.total_delta_hits)
            if scale == 0:
                return ""
            return f"  ({100.0 * component / scale:.1f}% of total)"

        lines.append(
            f"  spatial   {self.spatial:+d}"
            f"  cooperative hits in borrowed space{share(self.spatial)}"
        )
        lines.append(
            f"  temporal  {self.temporal:+d}"
            f"  hits under a swapped insertion policy"
            f"{share(self.temporal)}"
        )
        lines.append(
            f"  residual  {self.residual:+d}"
            f"  replacement-order and interaction effects"
            f"{share(self.residual)}"
        )
        lines.append(f"observed class: {self.classification.label}")
        if self.sets:
            ranked = sorted(
                self.sets,
                key=lambda r: (-abs(r.delta_hits), r.set_index),
            )[:top_k]
            lines.append(f"top {len(ranked)} diverging sets:")
            for row in ranked:
                lines.append(
                    f"  set {row.set_index:>5}"
                    f"  dhits {row.delta_hits:+6d}"
                    f"  spatial {row.spatial:+6d}"
                    f"  temporal {row.temporal:+6d}"
                    f"  residual {row.residual:+6d}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"


def attribute(a: RunResult, b: RunResult) -> Attribution:
    """Decompose the hit delta between runs ``a`` (base) and ``b``.

    Both runs may carry ledgers (``run_trace(..., ledger=True)`` or
    saved-run files written from such runs); either may lack one, in
    which case the affected components fall back to stats-only or zero
    with an explanatory note.  The invariant
    ``spatial + temporal + residual == total_delta_hits`` holds in
    every case, globally and for each per-set row.
    """
    notes: List[str] = []
    if a.trace_name != b.trace_name:
        notes.append(
            f"runs are on different traces ({a.trace_name} vs "
            f"{b.trace_name}); the decomposition compares unlike runs"
        )
    if a.measured_accesses != b.measured_accesses:
        notes.append(
            f"measured access counts differ ({a.measured_accesses} vs "
            f"{b.measured_accesses}); compare rates, not counts"
        )

    total = b.stats.hits - a.stats.hits
    spatial = b.stats.cooperative_hits - a.stats.cooperative_hits

    bip_a = _counter(a, "swapped_policy_hits")
    bip_b = _counter(b, "swapped_policy_hits")
    if bip_a is None and a.stats.policy_swaps:
        notes.append(
            f"run A ({_label(a)}) swapped policies but carries no "
            "ledger counters; its temporal component is taken as 0"
        )
    if bip_b is None and b.stats.policy_swaps:
        notes.append(
            f"run B ({_label(b)}) swapped policies but carries no "
            "ledger counters; its temporal component is taken as 0"
        )
    temporal = (sum(bip_b) if bip_b else 0) - (sum(bip_a) if bip_a else 0)

    sets: List[SetAttribution] = []
    hits_a = _counter(a, "hits")
    hits_b = _counter(b, "hits")
    if hits_a is not None and hits_b is not None:
        if len(hits_a) != len(hits_b):
            notes.append(
                f"per-set counters cover different geometries "
                f"({len(hits_a)} vs {len(hits_b)} sets); "
                "per-set rows skipped"
            )
        else:
            coop_a = _counter(a, "cooperative_hits") or [0] * len(hits_a)
            coop_b = _counter(b, "cooperative_hits") or [0] * len(hits_b)
            set_bip_a = bip_a or [0] * len(hits_a)
            set_bip_b = bip_b or [0] * len(hits_b)
            for set_index in range(len(hits_a)):
                delta = hits_b[set_index] - hits_a[set_index]
                row = SetAttribution(
                    set_index=set_index,
                    delta_hits=delta,
                    spatial=coop_b[set_index] - coop_a[set_index],
                    temporal=(
                        set_bip_b[set_index] - set_bip_a[set_index]
                    ),
                )
                if (row.delta_hits or row.spatial or row.temporal):
                    sets.append(row)
    else:
        missing = [
            _label(r) for r, h in ((a, hits_a), (b, hits_b)) if h is None
        ]
        notes.append(
            "per-set rows need ledger counters on both runs; missing "
            "on " + " and ".join(missing)
        )

    return Attribution(
        label_a=_label(a),
        label_b=_label(b),
        total_delta_hits=total,
        spatial=spatial,
        temporal=temporal,
        accesses_a=a.measured_accesses,
        accesses_b=b.measured_accesses,
        classification=classify_gains(spatial, temporal, total),
        sets=sets,
        notes=notes,
        ledger_summary_a=(
            a.ledger.summary() if a.ledger is not None else None
        ),
        ledger_summary_b=(
            b.ledger.summary() if b.ledger is not None else None
        ),
    )
