"""Self-contained single-file HTML run report.

:func:`render_run_html` turns one :class:`~repro.sim.simulator.RunResult`
(or an A/B pair) into a complete HTML document: a scalar-metrics table,
one inline SVG sparkline per windowed metric (two overlaid polylines in
A/B mode) and a per-set occupancy heatmap rendered as an SVG rect grid.

Everything is inlined — one ``<style>`` block, SVG markup generated
here, colors computed in Python — so the file opens identically from
disk, a CI artifact store, or an air-gapped machine: **zero network
references** (no scripts, no stylesheets, no fonts, no images).

The output is deterministic: nothing wall-clock- or host-dependent is
rendered and every float goes through one fixed formatter, so the same
inputs always produce byte-identical HTML (asserted in CI).
"""

from __future__ import annotations

from html import escape
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.diff import _fmt, _mean, _scalar_metrics, diff_results

if TYPE_CHECKING:  # hint-only: sim imports obs, not vice versa
    from repro.sim.simulator import RunResult

#: Series colors: A is the STEM blue, B the comparison orange.
_COLOR_A = "#2166ac"
_COLOR_B = "#e08214"

#: Heatmap caps keep the SVG small for big geometries/long runs: sets
#: are averaged into at most this many rows, windows into columns.
_MAX_HEAT_ROWS = 64
_MAX_HEAT_COLS = 128

_STYLE = """
body { font-family: monospace; margin: 2em auto; max-width: 72em;
       color: #1a1a1a; background: #fcfcfc; }
h1 { font-size: 1.3em; border-bottom: 2px solid #2166ac; }
h2 { font-size: 1.05em; margin-top: 1.8em; }
table { border-collapse: collapse; }
th, td { padding: 0.2em 0.9em; text-align: right;
         border-bottom: 1px solid #ddd; }
th { border-bottom: 2px solid #888; }
td.name, th.name { text-align: left; }
.spark { display: flex; align-items: center; gap: 1em;
         margin: 0.25em 0; }
.spark .label { width: 18em; text-align: right; }
.legend { margin: 0.5em 0; }
.swatch { display: inline-block; width: 0.9em; height: 0.9em;
          vertical-align: middle; margin-right: 0.3em; }
.note { color: #666; font-style: italic; }
svg { background: #fff; border: 1px solid #ddd; }
"""


def _bucket(values: List[float], buckets: int) -> List[float]:
    """Average ``values`` down to at most ``buckets`` entries."""
    count = len(values)
    if count <= buckets:
        return list(values)
    result = []
    for index in range(buckets):
        start = index * count // buckets
        stop = max(start + 1, (index + 1) * count // buckets)
        chunk = values[start:stop]
        result.append(sum(chunk) / len(chunk))
    return result


def _heat_color(fraction: float) -> str:
    """White -> STEM blue ramp; input clamped to [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    # Endpoints: #ffffff (empty) to #08306b (full).
    red = round(255 + (8 - 255) * fraction)
    green = round(255 + (48 - 255) * fraction)
    blue = round(255 + (107 - 255) * fraction)
    return f"#{red:02x}{green:02x}{blue:02x}"


def _svg_sparkline(
    series_a: List[float],
    series_b: Optional[List[float]] = None,
    width: int = 420,
    height: int = 44,
) -> str:
    """Inline SVG with one polyline per series, shared y-scale."""
    pool = list(series_a) + (list(series_b) if series_b else [])
    low = min(pool) if pool else 0.0
    high = max(pool) if pool else 1.0
    span = high - low or 1.0
    pad = 3

    def points(values: List[float]) -> str:
        if len(values) == 1:
            values = values * 2
        last = len(values) - 1
        return " ".join(
            f"{pad + index * (width - 2 * pad) / last:.2f},"
            f"{height - pad - (value - low) / span * (height - 2 * pad):.2f}"
            for index, value in enumerate(values)
        )

    lines = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    lines.append(
        f'<polyline fill="none" stroke="{_COLOR_A}" stroke-width="1.5" '
        f'points="{points(series_a)}"/>'
    )
    if series_b:
        lines.append(
            f'<polyline fill="none" stroke="{_COLOR_B}" stroke-width="1.5" '
            f'points="{points(series_b)}"/>'
        )
    lines.append("</svg>")
    return "".join(lines)


def _svg_heatmap(
    rows: List[List[int]], max_value: float, cell: int = 7
) -> str:
    """Per-set occupancy grid: x = windows, y = sets (bucketed)."""
    if not rows:
        return ""
    num_sets = len(rows[0])
    # Transpose to per-set series, bucket both axes.
    per_set = [
        _bucket([float(row[index]) for row in rows], _MAX_HEAT_COLS)
        for index in range(num_sets)
    ]
    if num_sets > _MAX_HEAT_ROWS:
        grouped = []
        for index in range(_MAX_HEAT_ROWS):
            start = index * num_sets // _MAX_HEAT_ROWS
            stop = max(start + 1, (index + 1) * num_sets // _MAX_HEAT_ROWS)
            chunk = per_set[start:stop]
            grouped.append([
                sum(series[col] for series in chunk) / len(chunk)
                for col in range(len(chunk[0]))
            ])
        per_set = grouped
    height = len(per_set) * cell
    width = len(per_set[0]) * cell
    scale = max_value or 1.0
    rects = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    for row_index, series in enumerate(per_set):
        for col_index, value in enumerate(series):
            rects.append(
                f'<rect x="{col_index * cell}" y="{row_index * cell}" '
                f'width="{cell}" height="{cell}" '
                f'fill="{_heat_color(value / scale)}"/>'
            )
    rects.append("</svg>")
    return "".join(rects)


def _occupancy_ceiling(result: RunResult) -> float:
    """Heatmap scale: the run's peak per-set occupancy."""
    rows = (
        result.series.set_series.get("occupancy", [])
        if result.series is not None else []
    )
    return float(max((max(row) for row in rows if row), default=1))


def _scalar_table(
    a: RunResult, b: Optional[RunResult]
) -> str:
    metrics_a = _scalar_metrics(a)
    lines = ["<table>"]
    if b is None:
        lines.append(
            '<tr><th class="name">metric</th><th>value</th></tr>'
        )
        for name in sorted(metrics_a):
            lines.append(
                f'<tr><td class="name">{escape(name)}</td>'
                f"<td>{_fmt(metrics_a[name])}</td></tr>"
            )
    else:
        metrics_b = _scalar_metrics(b)
        lines.append(
            '<tr><th class="name">metric</th><th>A</th><th>B</th>'
            "<th>delta</th></tr>"
        )
        for name in sorted(set(metrics_a) | set(metrics_b)):
            value_a = metrics_a.get(name, 0.0)
            value_b = metrics_b.get(name, 0.0)
            lines.append(
                f'<tr><td class="name">{escape(name)}</td>'
                f"<td>{_fmt(value_a)}</td><td>{_fmt(value_b)}</td>"
                f"<td>{_fmt(value_b - value_a)}</td></tr>"
            )
    lines.append("</table>")
    return "\n".join(lines)


def _series_pairs(
    a: RunResult, b: Optional[RunResult]
) -> Tuple[Dict[str, Tuple[List[float], Optional[List[float]]]], Optional[str]]:
    """Window-aligned {metric: (A series, B series or None)}, or a note."""
    if a.series is None:
        return {}, (
            "no windowed series — re-run with metrics_window / --window"
        )
    if b is None or b.series is None:
        return (
            {name: (values, None) for name, values in a.series.series.items()},
            None,
        )
    if a.series.window_length != b.series.window_length:
        return {}, (
            f"window lengths differ (A={a.series.window_length}, "
            f"B={b.series.window_length}); series omitted"
        )
    shared = min(a.series.num_windows, b.series.num_windows)
    return (
        {
            name: (
                list(a.series.series[name][:shared]),
                list(b.series.series[name][:shared]),
            )
            for name in sorted(set(a.series.series) & set(b.series.series))
        },
        None,
    )


def render_run_html(
    a: RunResult,
    b: Optional[RunResult] = None,
    title: Optional[str] = None,
) -> str:
    """Render one run (or an A/B pair) as a self-contained HTML page."""
    label_a = f"{a.scheme} on {a.trace_name}"
    if title is None:
        title = (
            f"run report: {label_a}" if b is None
            else f"run diff: {label_a} vs {b.scheme} on {b.trace_name}"
        )
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
    ]
    if b is not None:
        parts.append(
            '<p class="legend">'
            f'<span class="swatch" style="background:{_COLOR_A}"></span>'
            f"A = {escape(label_a)} &nbsp; "
            f'<span class="swatch" style="background:{_COLOR_B}"></span>'
            f"B = {escape(b.scheme)} on {escape(b.trace_name)}</p>"
        )
    parts.append("<h2>Scalar metrics</h2>")
    parts.append(_scalar_table(a, b))

    parts.append("<h2>Windowed series</h2>")
    pairs, note = _series_pairs(a, b)
    if note is not None:
        parts.append(f'<p class="note">{escape(note)}</p>')
    elif not pairs:
        parts.append('<p class="note">no shared series</p>')
    else:
        window = a.series.window_length if a.series is not None else 0
        parts.append(
            f'<p class="note">windows of {window} accesses; sparkline '
            "scaled per metric; trailing mean shown</p>"
        )
        for name in sorted(pairs):
            series_a, series_b = pairs[name]
            mean_text = f"mean A {_fmt(_mean(series_a))}"
            if series_b is not None:
                mean_text += f" / B {_fmt(_mean(series_b))}"
            parts.append(
                '<div class="spark">'
                f'<span class="label">{escape(name)}</span>'
                f"{_svg_sparkline(series_a, series_b)}"
                f"<span>{mean_text}</span></div>"
            )

    runs = [("A", a)] + ([("B", b)] if b is not None else [])
    for tag, result in runs:
        rows = (
            result.series.set_series.get("occupancy", [])
            if result.series is not None else []
        )
        if not rows:
            continue
        heading = "Per-set occupancy"
        if b is not None:
            heading += f" — {tag}"
        parts.append(f"<h2>{escape(heading)}</h2>")
        parts.append(
            '<p class="note">rows = sets (top = set 0), columns = '
            "windows, darker = fuller; axes bucketed to "
            f"{_MAX_HEAT_ROWS}&times;{_MAX_HEAT_COLS}</p>"
        )
        parts.append(_svg_heatmap(rows, _occupancy_ceiling(result)))

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


#: Extra rules for campaign pages only (run pages stay byte-stable).
_BANNER_STYLE = """
.banner { border: 2px solid #b2182b; background: #fddbc7;
          padding: 0.6em 1em; margin: 1em 0; }
.banner h2 { margin: 0 0 0.4em 0; color: #b2182b; }
"""


def _metric_table_html(
    rows: Dict[str, Dict[str, float]], columns: List[str]
) -> str:
    """A {workload: {scheme: value}} grid as an HTML table.

    Missing cells (quarantined runs) render as ``-``, mirroring
    :func:`~repro.sim.results.format_table`.
    """
    lines = ["<table>", '<tr><th class="name">workload</th>']
    lines.extend(f"<th>{escape(column)}</th>" for column in columns)
    lines.append("</tr>")
    for name, values in rows.items():
        cells = [f'<tr><td class="name">{escape(str(name))}</td>']
        for column in columns:
            value = values.get(column)
            cells.append(
                "<td>-</td>" if value is None else f"<td>{_fmt(value)}</td>"
            )
        cells.append("</tr>")
        lines.append("".join(cells))
    lines.append("</table>")
    return "\n".join(lines)


def render_campaign_html(
    name: str,
    total_cells: int,
    mpki: Dict[str, Dict[str, float]],
    schemes: List[str],
    normalized: Optional[Dict[str, Dict[str, float]]] = None,
    quarantined: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Self-contained campaign report page (DESIGN.md §12).

    Same contract as :func:`render_run_html` — one inline ``<style>``
    block, zero network references, and byte-determinism (no wall-clock
    or host state is rendered, so an interrupted-and-resumed campaign
    emits exactly the bytes an uninterrupted one would).  When cells
    were quarantined, a graceful-degradation banner lists each one with
    its structured failure.
    """
    quarantined = quarantined or []
    completed = total_cells - len(quarantined)
    title = f"campaign report: {name}"
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}{_BANNER_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="note">{total_cells} cells, {completed} completed, '
        f"{len(quarantined)} quarantined</p>",
    ]
    if quarantined:
        parts.append('<div class="banner">')
        parts.append(
            f"<h2>degraded: {len(quarantined)} cell(s) quarantined</h2>"
        )
        parts.append(
            '<p class="note">each cell exhausted its retry budget; the '
            "rest of the campaign completed normally (see "
            "quarantine/ for the structured reports)</p>"
        )
        parts.append("<ul>")
        for entry in quarantined:
            parts.append(
                f"<li><code>{escape(str(entry.get('id', '?')))}</code> "
                f"&mdash; {escape(str(entry.get('error_type', '?')))}: "
                f"{escape(str(entry.get('message', '')))} "
                f"({escape(str(entry.get('attempts', '?')))} "
                "attempt(s))</li>"
            )
        parts.append("</ul></div>")
    parts.append("<h2>MPKI</h2>")
    parts.append(_metric_table_html(mpki, schemes))
    if normalized is not None:
        parts.append("<h2>MPKI normalized to LRU</h2>")
        parts.append(
            '<p class="note">per-workload normalisation; Geomean row '
            "summarises across workloads</p>"
        )
        parts.append(_metric_table_html(normalized, schemes))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def diff_to_html(a: RunResult, b: RunResult) -> str:
    """A/B page plus the plain-text diff in a ``<pre>`` appendix."""
    page = render_run_html(a, b)
    appendix = (
        "<h2>Text diff</h2><pre>"
        + escape(diff_results(a, b).render())
        + "</pre>\n</body></html>\n"
    )
    return page.replace("</body></html>\n", appendix)
